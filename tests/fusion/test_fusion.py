"""Merge-attention fusion block (paper Eq. 3)."""

from __future__ import annotations

import numpy as np

from repro.fusion import FusionConfig, MergeAttentionFusion
from repro.nn.tensor import Tensor

from ..conftest import check_grad


def test_fusion_output_shape(rng):
    fusion = MergeAttentionFusion(FusionConfig(dim=16, num_heads=2))
    text = Tensor(rng.normal(size=(3, 5, 16)))
    mask = np.ones((3, 5), dtype=bool)
    vision = Tensor(rng.normal(size=(3, 4, 16)))
    out = fusion(text, mask, vision)
    assert out.shape == (3, 16)


def test_fusion_ignores_masked_text(rng):
    fusion = MergeAttentionFusion(FusionConfig(dim=16, num_heads=2,
                                               dropout=0.0))
    fusion.eval()
    text = rng.normal(size=(1, 4, 16))
    vision = Tensor(rng.normal(size=(1, 4, 16)))
    mask = np.array([[True, True, False, False]])
    base = fusion(Tensor(text), mask, vision).data.copy()
    # Changing masked-out text positions must not affect the output.
    perturbed = text.copy()
    perturbed[0, 2:] += 100.0
    out = fusion(Tensor(perturbed), mask, vision).data
    np.testing.assert_allclose(out, base, atol=1e-9)


def test_fusion_uses_both_modalities(rng):
    fusion = MergeAttentionFusion(FusionConfig(dim=16, num_heads=2,
                                               dropout=0.0))
    fusion.eval()
    text = Tensor(rng.normal(size=(1, 3, 16)))
    mask = np.ones((1, 3), dtype=bool)
    vision = rng.normal(size=(1, 4, 16))
    base = fusion(text, mask, Tensor(vision)).data.copy()
    # A uniform shift would be erased by the pre-attention LayerNorm, so
    # perturb a single patch instead.
    perturbed = vision.copy()
    perturbed[0, 1] *= -2.0
    out = fusion(text, mask, Tensor(perturbed)).data
    assert not np.allclose(out, base)


def test_fusion_gradients_flow_to_both_streams(rng):
    fusion = MergeAttentionFusion(FusionConfig(dim=8, num_heads=2,
                                               dropout=0.0))
    fusion.eval()
    mask = np.ones((1, 2), dtype=bool)
    vision_np = rng.normal(size=(1, 2, 8))

    def loss_from_text(t):
        return (fusion(t, mask, Tensor(vision_np)) ** 2.0).sum()

    check_grad(loss_from_text, rng.normal(size=(1, 2, 8)), atol=1e-3,
               rtol=1e-3)
