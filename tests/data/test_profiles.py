"""Scale profiles and dataset sizing."""

from __future__ import annotations

import pytest

from repro.data import PROFILES, dataset_size, get_profile
from repro.data.catalog import downstream_names, source_names


def test_default_profile_is_paper(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert get_profile().name == "paper"


def test_env_variable_selects_profile(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "smoke")
    assert get_profile().name == "smoke"
    # Explicit argument beats the environment.
    assert get_profile("full").name == "full"


def test_unknown_profile_raises():
    with pytest.raises(KeyError):
        get_profile("gigantic")


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        dataset_size("netflix", PROFILES["paper"])


def test_all_datasets_have_sizes():
    for name in source_names() + downstream_names():
        users, items = dataset_size(name, PROFILES["paper"])
        assert users > 0 and items > 0


def test_profile_scaling_monotone():
    for name in source_names():
        smoke = dataset_size(name, PROFILES["smoke"])
        paper = dataset_size(name, PROFILES["paper"])
        full = dataset_size(name, PROFILES["full"])
        assert smoke[0] <= paper[0] <= full[0]
        assert smoke[1] <= paper[1] <= full[1]


def test_minimums_enforced():
    smoke = PROFILES["smoke"]
    for name in source_names() + downstream_names():
        users, items = dataset_size(name, smoke)
        assert users >= smoke.min_users
        assert items >= smoke.min_items


def test_sources_dominate_downstream_sizes():
    paper = PROFILES["paper"]
    smallest_source = min(dataset_size(n, paper)[0] for n in source_names())
    largest_downstream = max(dataset_size(n, paper)[0]
                             for n in downstream_names())
    assert smallest_source >= largest_downstream
