"""k-core filtering, remapping, truncation and statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (interaction_stats, k_core_filter, remap_item_ids,
                        truncate_sequences)


def _seqs(*lists):
    return [np.asarray(s, dtype=np.int64) for s in lists]


def test_k_core_drops_rare_items():
    # Item 9 appears once; users interacting mostly with it get filtered.
    seqs = _seqs([1, 2, 3, 1, 2], [1, 2, 3, 2, 1], [1, 2, 3, 3, 9],
                 [1, 2, 3, 1, 3], [2, 1, 3, 2, 3])
    filtered, kept = k_core_filter(seqs, min_user=4, min_item=5)
    assert 9 not in kept
    assert set(kept) == {1, 2, 3}
    for seq in filtered:
        assert len(seq) >= 4


def test_k_core_drops_short_users():
    seqs = _seqs([1, 2], [1, 2, 1, 2, 1], [2, 1, 2, 1, 2],
                 [1, 2, 1, 2, 2], [1, 1, 2, 2, 1], [2, 2, 1, 1, 2])
    filtered, kept = k_core_filter(seqs, min_user=5, min_item=5)
    assert len(filtered) == 5            # the 2-interaction user is gone
    assert set(kept) == {1, 2}


def test_k_core_iterates_to_fixpoint():
    # Dropping user 0 (too short after filtering) removes the only support
    # for item 7, which must then be dropped too.
    seqs = _seqs([7, 7, 7, 7, 1], [1, 2, 1, 2, 1], [2, 1, 2, 1, 2],
                 [1, 2, 2, 1, 1], [2, 1, 1, 2, 2])
    filtered, kept = k_core_filter(seqs, min_user=5, min_item=5)
    assert 7 not in kept


def test_k_core_empty_result():
    filtered, kept = k_core_filter(_seqs([1, 2, 3]), min_user=5, min_item=5)
    assert filtered == [] and len(kept) == 0


def test_remap_is_contiguous_from_one():
    seqs = _seqs([10, 20, 10], [20, 30, 30])
    remapped = remap_item_ids(seqs, np.array([10, 20, 30]))
    flat = np.concatenate(remapped)
    assert set(flat) == {1, 2, 3}
    np.testing.assert_array_equal(remapped[0], [1, 2, 1])


def test_remap_rejects_unknown_item():
    with pytest.raises(ValueError):
        remap_item_ids(_seqs([10, 99]), np.array([10]))


def test_truncate_keeps_most_recent():
    out = truncate_sequences(_seqs([1, 2, 3, 4, 5]), max_len=3)
    np.testing.assert_array_equal(out[0], [3, 4, 5])


def test_interaction_stats_basic():
    stats = interaction_stats(_seqs([1, 2, 3], [1, 2, 3]), num_items=3)
    assert stats["users"] == 2
    assert stats["actions"] == 6
    assert stats["avg_length"] == 3.0
    assert stats["sparsity"] == 0.0      # every user saw every item


def test_interaction_stats_repeats_do_not_break_sparsity():
    # A user interacting with one item many times must not push
    # sparsity negative (it counts unique pairs).
    stats = interaction_stats(_seqs([1] * 50), num_items=10)
    assert 0.0 <= stats["sparsity"] <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(st.integers(1, 8), min_size=1, max_size=12),
                min_size=1, max_size=15))
def test_k_core_postconditions_hypothesis(raw):
    seqs = [np.asarray(s, dtype=np.int64) for s in raw]
    filtered, kept = k_core_filter(seqs, min_user=3, min_item=3)
    counts: dict[int, int] = {}
    for seq in filtered:
        assert len(seq) >= 3
        for item in seq:
            assert item in kept
            counts[int(item)] = counts.get(int(item), 0) + 1
    for item, count in counts.items():
        assert count >= 3
