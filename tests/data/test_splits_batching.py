"""Leave-one-out splits, batching and cold-start extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (Batch, batch_iterator, cold_items,
                        cold_start_examples, leave_one_out, pad_sequences,
                        shift_targets)


def _seqs(*lists):
    return [np.asarray(s, dtype=np.int64) for s in lists]


def test_leave_one_out_assigns_last_two():
    split = leave_one_out(_seqs([1, 2, 3, 4, 5]))
    np.testing.assert_array_equal(split.train[0], [1, 2, 3])
    assert split.valid[0].target == 4
    np.testing.assert_array_equal(split.valid[0].history, [1, 2, 3])
    assert split.test[0].target == 5
    np.testing.assert_array_equal(split.test[0].history, [1, 2, 3, 4])


def test_leave_one_out_short_sequences_train_only():
    split = leave_one_out(_seqs([1, 2]), min_train_len=3)
    assert len(split.train) == 1
    assert split.valid == [] and split.test == []


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(st.integers(1, 50), min_size=3, max_size=20),
                min_size=1, max_size=10))
def test_leave_one_out_consistency_hypothesis(raw):
    seqs = [np.asarray(s, dtype=np.int64) for s in raw]
    split = leave_one_out(seqs)
    assert len(split.valid) == len(split.test) == len(seqs)
    for seq, val, test in zip(seqs, split.valid, split.test):
        assert test.target == seq[-1]
        assert val.target == seq[-2]
        assert len(test.history) == len(seq) - 1
        assert len(val.history) == len(seq) - 2


def test_pad_sequences_shapes_and_mask():
    batch = pad_sequences(_seqs([1, 2, 3], [4]))
    assert batch.item_ids.shape == (2, 3)
    np.testing.assert_array_equal(batch.item_ids[1], [4, 0, 0])
    np.testing.assert_array_equal(batch.mask[1], [True, False, False])
    assert batch.batch_size == 2 and batch.length == 3


def test_pad_sequences_truncates_to_max_len():
    batch = pad_sequences(_seqs([1, 2, 3, 4, 5]), max_len=3)
    np.testing.assert_array_equal(batch.item_ids[0], [3, 4, 5])


def test_pad_sequences_rejects_empty():
    with pytest.raises(ValueError):
        pad_sequences([])


def test_shift_targets():
    batch = pad_sequences(_seqs([1, 2, 3]))
    targets = shift_targets(batch)
    np.testing.assert_array_equal(targets[0], [2, 3, 0])


def test_batch_iterator_covers_all_users(rng):
    seqs = _seqs(*[[i, i + 1, i + 2] for i in range(1, 11)])
    seen = 0
    for batch in batch_iterator(seqs, batch_size=3, rng=rng):
        seen += batch.batch_size
    assert seen == 10


def test_batch_iterator_drop_last(rng):
    seqs = _seqs(*[[1, 2]] * 7)
    batches = list(batch_iterator(seqs, batch_size=3, rng=rng,
                                  drop_last=True))
    assert sum(b.batch_size for b in batches) == 6


def test_batch_iterator_shuffles(rng):
    seqs = _seqs(*[[i, i] for i in range(1, 40)])
    first = next(iter(batch_iterator(seqs, batch_size=39,
                                     rng=np.random.default_rng(0))))
    second = next(iter(batch_iterator(seqs, batch_size=39,
                                      rng=np.random.default_rng(1))))
    assert not np.array_equal(first.item_ids, second.item_ids)


def test_cold_items_threshold():
    train = _seqs([1, 1, 1, 2], [1, 2, 3])
    cold = cold_items(train, num_items=3, threshold=3)
    # item 1 occurs 4x (warm); item 2 occurs 2x, item 3 once (cold).
    assert set(cold) == {2, 3}


def test_cold_start_examples_end_at_cold_item():
    full = _seqs([1, 1, 2, 1, 3])
    train = _seqs([1, 1, 2, 1])
    examples = cold_start_examples(full, train, num_items=3, threshold=2)
    assert all(ex.target in (2, 3) for ex in examples)
    for ex in examples:
        assert len(ex.history) >= 2
    # the target at position 4 (item 3) yields history of length 4
    targets = sorted(ex.target for ex in examples)
    assert 3 in targets


def test_cold_start_requires_min_history():
    full = _seqs([9, 1, 1, 1])
    train = _seqs([1, 1, 1])
    examples = cold_start_examples(full, train, num_items=9, threshold=2,
                                   min_history=2)
    # item 9 is cold but sits at position 0 -> no example for it.
    assert all(ex.target != 9 for ex in examples)
