"""Properties of the shared transition dynamics — the transfer premise.

The paper's Figure 1 claim, encoded by the world: platforms share the
*dynamics* even though their content differs. These tests verify the
mechanism directly, because every transfer result in the benchmark suite
depends on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import LatentWorld, WorldConfig, build_dataset, get_world


@pytest.fixture(scope="module")
def world():
    return get_world()


def _transition_log_likelihood(dataset, transition: np.ndarray,
                               momentum: float) -> float:
    """Mean log-probability of observed next items under an operator."""
    world = get_world()
    total, count = 0.0, 0
    for seq in dataset.sequences[:60]:
        state = dataset.item_latents[seq[0]].copy()
        for prev, nxt in zip(seq[:-1], seq[1:]):
            target = transition @ state
            scores = dataset.item_latents[1:] @ target
            scores = scores / world.config.choice_temperature
            scores -= scores.max()
            probs = np.exp(scores) / np.exp(scores).sum()
            total += np.log(probs[nxt - 1] + 1e-12)
            count += 1
            state = (momentum * (transition @ state)
                     + (1 - momentum) * dataset.item_latents[nxt])
    return total / count


def test_true_operator_beats_random_operator(world):
    """Observed sequences are far more likely under the world's operator."""
    rng = np.random.default_rng(0)
    ds = build_dataset("bili_food", profile="smoke")
    random_q, _ = np.linalg.qr(rng.normal(size=world.transition.shape))
    truth = _transition_log_likelihood(ds, world.transition,
                                       world.config.transition_momentum)
    noise = _transition_log_likelihood(ds, random_q,
                                       world.config.transition_momentum)
    assert truth > noise + 0.1


def test_same_operator_explains_both_platforms(world):
    """One operator explains Bili AND HM sequences — the transfer premise."""
    momentum = world.config.transition_momentum
    for name in ("bili_food", "hm_shoes"):
        ds = build_dataset(name, profile="smoke")
        truth = _transition_log_likelihood(ds, world.transition, momentum)
        identity = _transition_log_likelihood(ds, np.eye(len(world.transition)),
                                              momentum)
        assert truth > identity, name


def test_interaction_noise_degrades_predictability(world):
    """Noisy platforms' sequences fit the operator worse than clean ones.

    This is what gives the denoising objectives (NID/RCL) their role.
    """
    rng = np.random.default_rng(3)
    items = world.sample_items(np.zeros(60, dtype=int), rng)
    pref = items[0]

    def fit(noise):
        gen = np.random.default_rng(11)
        ll, n = 0.0, 0
        for _ in range(30):
            seq = world.generate_sequence(pref, items, 10, gen,
                                          noise_prob=noise)
            state = items[seq[0]].copy()
            for prev, nxt in zip(seq[:-1], seq[1:]):
                target = world.transition @ state
                scores = items @ target / world.config.choice_temperature
                scores -= scores.max()
                probs = np.exp(scores) / np.exp(scores).sum()
                ll += np.log(probs[nxt] + 1e-12)
                n += 1
                state = (world.config.transition_momentum * target
                         + (1 - world.config.transition_momentum) * items[nxt])
        return ll / n

    assert fit(0.0) > fit(0.4) + 0.1


def test_world_config_views_cover_space():
    config = WorldConfig()
    world = LatentWorld(config)
    union = world.text_view + world.vision_view
    assert (union > 0).all()
    overlap = (world.text_view * world.vision_view).sum()
    assert 0 < overlap < config.semantic_dim   # overlapping partial views


def test_sequences_respect_candidate_locality(world):
    """Items are sampled from candidate pools, so no id out of range."""
    rng = np.random.default_rng(5)
    items = world.sample_items(np.zeros(10, dtype=int), rng)
    seq = world.generate_sequence(items[0], items, 50, rng, noise_prob=0.5)
    assert seq.min() >= 0 and seq.max() < 10
