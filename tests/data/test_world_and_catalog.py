"""The latent world, platform rendering and the dataset catalogue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (MAX_SEQ_LEN, MAX_TEXT_LEN, TOPICS, LatentWorld,
                        WorldConfig, build_dataset, downstream_names,
                        fuse_datasets, get_world, platform_for, source_names,
                        text_vocab_size)


def test_world_is_deterministic():
    a, b = LatentWorld(WorldConfig()), LatentWorld(WorldConfig())
    np.testing.assert_array_equal(a.transition, b.transition)
    np.testing.assert_array_equal(a.token_latents, b.token_latents)


def test_modality_views_overlap_but_differ():
    world = get_world()
    text, vision = world.text_view, world.vision_view
    assert text.sum() == world.config.text_view_dims
    assert vision.sum() == world.config.vision_view_dims
    # Union covers the full latent; neither view alone does.
    assert np.all((text + vision) > 0)
    assert not np.array_equal(text, vision)


def test_generate_sequence_items_in_range(rng):
    world = get_world()
    latents = world.sample_items(np.zeros(30, dtype=int), rng)
    seq = world.generate_sequence(latents[0], latents, length=12, rng=rng)
    assert seq.shape == (12,)
    assert seq.min() >= 0 and seq.max() < 30


def test_render_text_respects_length_and_style(rng):
    world = get_world()
    latent = world.sample_items(np.array([0]), rng)[0]
    tokens = world.render_text(latent, 0, length=10, rng=rng,
                               style_offset=8, style_count=8,
                               noise_tokens=2)
    assert len(tokens) == 10
    style = tokens[0]
    assert world.config.vocab_size + 8 <= style < world.config.vocab_size + 16


def test_render_image_clutter_changes_image(rng):
    world = get_world()
    latent = world.sample_items(np.array([1]), rng)[0]
    clean = world.render_image(latent, np.random.default_rng(0), clutter=0.0)
    noisy = world.render_image(latent, np.random.default_rng(0), clutter=1.0)
    assert clean.shape == (16, 16, 3)
    assert np.abs(clean - noisy).mean() > 0.05


def test_platform_specs_cover_all_datasets():
    for name in source_names() + downstream_names():
        spec = platform_for(name)
        assert spec.name == name.split("_")[0]
    with pytest.raises(KeyError):
        platform_for("netflix_movies")


@pytest.mark.parametrize("name", source_names() + downstream_names())
def test_build_dataset_invariants(name):
    ds = build_dataset(name, profile="smoke")
    assert ds.num_items > 0 and ds.num_users > 0
    # Row 0 is the padding item everywhere.
    assert np.all(ds.text_tokens[0] == 0)
    assert np.all(ds.images[0] == 0.0)
    assert ds.item_topics[0] == -1
    # Sequences reference valid item ids and respect the length cap.
    for seq in ds.sequences:
        assert seq.min() >= 1 and seq.max() <= ds.num_items
        assert len(seq) <= MAX_SEQ_LEN
    # Text token ids stay inside the declared vocabulary.
    assert ds.text_tokens.max() < text_vocab_size()
    assert ds.text_tokens.shape[1] == MAX_TEXT_LEN


def test_build_dataset_is_cached_and_deterministic():
    a = build_dataset("kwai_food", profile="smoke")
    b = build_dataset("kwai_food", profile="smoke")
    assert a is b                                 # lru cache
    c = build_dataset("kwai_food", profile="smoke", seed=1)
    assert a is not c


def test_downstream_sets_are_single_topic():
    ds = build_dataset("bili_food", profile="smoke")
    topics = set(ds.item_topics[1:].tolist())
    assert topics == {TOPICS.index("food")}


def test_fuse_datasets_offsets_ids():
    sources = [build_dataset(n, profile="smoke") for n in ("bili", "kwai")]
    fused = fuse_datasets(sources)
    assert fused.num_items == sources[0].num_items + sources[1].num_items
    assert len(fused.sequences) == sum(s.num_users for s in sources)
    # Second dataset's items must be offset beyond the first's range.
    second_block = fused.sequences[sources[0].num_users]
    assert second_block.min() > sources[0].num_items
    # Feature tables align: fused row of an offset item equals the original.
    item = int(second_block[0])
    orig = item - sources[0].num_items
    np.testing.assert_array_equal(fused.text_tokens[item],
                                  sources[1].text_tokens[orig])
    np.testing.assert_array_equal(fused.images[item], sources[1].images[orig])


def test_fuse_requires_nonempty():
    with pytest.raises(ValueError):
        fuse_datasets([])


def test_sources_have_higher_clutter_on_video_platforms():
    from repro.data import PLATFORMS
    assert PLATFORMS["bili"].clutter > PLATFORMS["hm"].clutter
    assert PLATFORMS["kwai"].clutter > PLATFORMS["amazon"].clutter
