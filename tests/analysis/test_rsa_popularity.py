"""RSA / probe diagnostics and popularity-bias measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (coverage_at_k, item_frequencies, latent_probe_r2,
                            mean_recommended_popularity,
                            popularity_correlation, rsa_correlation)


def test_rsa_correlation_identity(rng):
    feats = rng.normal(size=(30, 8))
    assert rsa_correlation(feats, feats) == pytest.approx(1.0)


def test_rsa_correlation_rotation_invariant(rng):
    feats = rng.normal(size=(30, 8))
    q, _ = np.linalg.qr(rng.normal(size=(8, 8)))
    assert rsa_correlation(feats, feats @ q) == pytest.approx(1.0, abs=1e-9)


def test_rsa_correlation_unrelated(rng):
    a = rng.normal(size=(40, 8))
    b = rng.normal(size=(40, 8))
    assert abs(rsa_correlation(a, b)) < 0.3


def test_rsa_degenerate_returns_zero():
    const = np.ones((10, 4))
    assert rsa_correlation(const, const) == 0.0


def test_latent_probe_recovers_linear_map(rng):
    latents = rng.normal(size=(80, 6))
    mix = rng.normal(size=(6, 12))
    feats = latents @ mix + 0.01 * rng.normal(size=(80, 12))
    assert latent_probe_r2(feats, latents) > 0.95


def test_latent_probe_fails_on_noise(rng):
    feats = rng.normal(size=(200, 12))
    latents = rng.normal(size=(200, 6))
    assert latent_probe_r2(feats, latents) < 0.35


def test_item_frequencies():
    seqs = [np.array([1, 1, 2]), np.array([2, 3])]
    freq = item_frequencies(seqs, num_items=3)
    np.testing.assert_array_equal(freq, [0, 2, 2, 1])


def test_popularity_correlation_popularity_ranker():
    freq = np.array([0.0, 1, 5, 10, 50])
    scores = np.tile(freq, (7, 1))         # model scores = popularity
    assert popularity_correlation(scores, freq) == pytest.approx(1.0)


def test_popularity_correlation_zero_variance():
    scores = np.ones((5, 6))
    freq = np.arange(6.0)
    assert popularity_correlation(scores, freq) == 0.0


def test_coverage_at_k_extremes(rng):
    # Every user gets identical top-k -> coverage = k / num_items.
    scores = np.tile(np.arange(21.0), (10, 1))
    assert coverage_at_k(scores, k=10) == pytest.approx(0.5)
    # Personalized scores -> higher coverage.
    assert coverage_at_k(rng.normal(size=(50, 21)), k=10) > 0.8


def test_mean_recommended_popularity(rng):
    freq = np.concatenate([[0], np.arange(20.0)])
    pop_scores = np.tile(freq, (6, 1))
    anti = np.tile(-freq, (6, 1))
    assert mean_recommended_popularity(pop_scores, freq, k=5) > 0.8
    assert mean_recommended_popularity(anti, freq, k=5) < 0.2
