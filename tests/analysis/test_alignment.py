"""Cross-modal alignment diagnostics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import (alignment_score, anisotropy, modality_gap,
                            uniformity)


def test_alignment_score_perfect_match(rng):
    feats = rng.normal(size=(10, 8))
    out = alignment_score(feats, feats)
    assert out["matched"] == pytest.approx(1.0)
    assert out["margin"] > 0.5


def test_alignment_score_random_pairs(rng):
    t = rng.normal(size=(50, 16))
    v = rng.normal(size=(50, 16))
    out = alignment_score(t, v)
    assert abs(out["matched"]) < 0.35
    assert abs(out["margin"]) < 0.35


def test_alignment_score_scale_invariant(rng):
    t = rng.normal(size=(10, 8))
    v = rng.normal(size=(10, 8))
    a = alignment_score(t, v)
    b = alignment_score(10.0 * t, 0.1 * v)
    assert a["matched"] == pytest.approx(b["matched"])


def test_modality_gap_zero_for_same_cloud(rng):
    feats = rng.normal(size=(30, 8))
    assert modality_gap(feats, feats) == pytest.approx(0.0)


def test_modality_gap_detects_offset(rng):
    t = rng.normal(size=(30, 8))
    v = rng.normal(size=(30, 8)) + 5.0     # shifted cone
    assert modality_gap(t, v) > modality_gap(t, t + 0.01)


def test_anisotropy_extremes(rng):
    line = np.outer(rng.normal(size=40), rng.normal(size=8))
    assert anisotropy(line) > 0.99
    iso = rng.normal(size=(500, 8))
    assert anisotropy(iso) < 0.3


def test_anisotropy_constant_features():
    assert anisotropy(np.ones((10, 4))) == 0.0


def test_uniformity_orders_spread(rng):
    spread = rng.normal(size=(60, 8))
    clumped = rng.normal(size=(60, 8)) * 0.01 + np.ones(8)
    assert uniformity(spread) < uniformity(clumped)


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float64, (6, 4),
                  elements=st.floats(-3, 3, allow_nan=False)))
def test_alignment_score_bounded(feats):
    # Guard against zero rows which normalize to zero vectors.
    feats = feats + 0.1
    out = alignment_score(feats, feats[::-1].copy())
    for value in out.values():
        assert -2.0 <= value <= 2.0
