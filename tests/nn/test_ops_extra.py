"""Additional edge-coverage for autograd ops and helper paths."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.tensor import Tensor, as_tensor

from ..conftest import check_grad


def test_log_softmax_grad(rng):
    x = rng.normal(size=(3, 5))
    weights = rng.normal(size=(3, 5))
    check_grad(lambda t: (nn.log_softmax(t) * Tensor(weights)).sum(), x,
               atol=1e-4)


def test_softmax_extreme_logits_stable():
    x = Tensor(np.array([[1000.0, 0.0, -1000.0]]))
    out = nn.softmax(x).data
    assert np.isfinite(out).all()
    assert out[0, 0] == pytest.approx(1.0)


def test_cross_entropy_all_ignored_is_zero(rng):
    logits = Tensor(rng.normal(size=(2, 3)))
    loss = nn.cross_entropy(logits, np.array([-1, -1]), ignore_index=-1)
    assert loss.item() == 0.0


def test_take_rows_matches_embedding(rng):
    matrix = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
    idx = np.array([[0, 5], [2, 2]])
    np.testing.assert_array_equal(nn.take_rows(matrix, idx).data,
                                  matrix.data[idx])


def test_as_tensor_passthrough():
    t = Tensor(np.ones(3))
    assert as_tensor(t) is t
    assert isinstance(as_tensor(2.0), Tensor)


def test_tensor_repr_and_protocol(rng):
    t = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    assert "requires_grad=True" in repr(t)
    assert len(t) == 2 and t.ndim == 2 and t.size == 6
    assert t.detach().requires_grad is False


def test_scalar_item_and_zero_grad():
    t = Tensor(np.array(3.5), requires_grad=True)
    assert t.item() == 3.5
    t.grad = np.array(1.0)
    t.zero_grad()
    assert t.grad is None


def test_backward_accepts_explicit_grad(rng):
    t = Tensor(rng.normal(size=(3,)), requires_grad=True)
    out = t * 2.0
    out.backward(np.array([1.0, 0.0, -1.0]))
    np.testing.assert_allclose(t.grad, [2.0, 0.0, -2.0])


def test_pow_rejects_tensor_exponent():
    t = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(TypeError):
        t ** Tensor(np.ones(3))


def test_rsub_and_rdiv(rng):
    x = rng.normal(size=(4,)) + 3.0
    check_grad(lambda t: (5.0 - t).sum(), x)
    check_grad(lambda t: (5.0 / t).sum(), x)


def test_mean_multi_axis(rng):
    x = rng.normal(size=(2, 3, 4))
    out = Tensor(x).mean(axis=(0, 2))
    np.testing.assert_allclose(out.data, x.mean(axis=(0, 2)))


def test_max_keepdims(rng):
    x = rng.normal(size=(2, 5))
    out = Tensor(x).max(axis=1, keepdims=True)
    assert out.shape == (2, 1)


def test_max_with_ties_splits_gradient():
    x = np.array([[1.0, 1.0, 0.0]])
    t = Tensor(x, requires_grad=True)
    t.max(axis=1).sum().backward()
    np.testing.assert_allclose(t.grad, [[0.5, 0.5, 0.0]])


def test_info_nce_all_rows_empty_returns_zero(rng):
    scores = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
    loss = nn.info_nce(scores, np.zeros((2, 3), dtype=bool))
    assert loss.item() == 0.0
