"""Scatter-free embedding backward: sort+reduceat vs np.add.at and FD.

The embedding gradient used to be the engine's last ``np.add.at`` hot
spot; it is now accumulated by sorting the indices and summing runs with
one ``np.add.reduceat`` (see ``repro.nn.tensor.scatter_add_rows``).
These tests pin (a) exact parity with the ``np.add.at`` oracle across
repeated/negative/empty index patterns, (b) finite-difference
correctness through ``ops.embedding`` and ``Tensor.__getitem__``, and
(c) that non-row-gather keys still take the general fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.ops import embedding
from repro.nn.tensor import Tensor, scatter_add_rows

from ..conftest import check_grad


@pytest.mark.parametrize("num_rows,num_draws,dim", [
    (10, 50, 4),     # heavy repeats: every row hit ~5x
    (5, 1, 3),       # single draw
    (7, 200, 1),     # width-1 rows
    (64, 3, 8),      # mostly-unique indices
])
def test_scatter_add_rows_matches_add_at(num_rows, num_draws, dim, rng):
    indices = rng.integers(-num_rows, num_rows, size=num_draws)
    rows = rng.normal(size=(num_draws, dim))
    oracle = np.zeros((num_rows, dim))
    np.add.at(oracle, indices, rows)
    ours = scatter_add_rows(np.zeros((num_rows, dim)), indices, rows)
    np.testing.assert_allclose(ours, oracle, atol=1e-12)


def test_scatter_add_rows_empty_and_accumulating(rng):
    out = rng.normal(size=(4, 3))
    before = out.copy()
    scatter_add_rows(out, np.array([], dtype=np.int64), np.zeros((0, 3)))
    np.testing.assert_array_equal(out, before)
    # Accumulates on top of existing content, like np.add.at.
    scatter_add_rows(out, np.array([2, 2]), np.ones((2, 3)))
    np.testing.assert_allclose(out[2], before[2] + 2.0)


def test_embedding_grad_fd_with_repeats(rng):
    indices = rng.integers(0, 6, size=(3, 7))       # many repeated ids
    weight0 = rng.normal(size=(6, 4))
    check_grad(lambda w: (embedding(w, indices) ** 2.0).sum(), weight0)


def test_getitem_int_array_grad_fd(rng):
    x0 = rng.normal(size=(8, 3))
    key_1d = rng.integers(0, 8, size=11)
    key_2d = rng.integers(0, 8, size=(4, 5))
    key_neg = np.array([-1, 2, -1, -8, 5])
    for key in (key_1d, key_2d, key_neg):
        check_grad(lambda t, k=key: (t[k] ** 2.0).sum(), x0)


def test_getitem_int_array_grad_on_1d_tensor(rng):
    x0 = rng.normal(size=(9,))
    key = rng.integers(0, 9, size=13)
    check_grad(lambda t: (t[key] ** 2.0).sum(), x0)


def test_getitem_fallback_keys_still_correct(rng):
    x0 = rng.normal(size=(5, 4))
    mask = rng.random(5) > 0.4
    check_grad(lambda t: (t[mask] ** 2.0).sum(), x0)        # bool mask
    check_grad(lambda t: (t[1:4] ** 2.0).sum(), x0)          # slice
    check_grad(lambda t: (t[2, 1:] ** 2.0).sum(), x0)        # tuple
    rows = np.array([0, 0, 3])
    cols = np.array([1, 1, 2])
    check_grad(lambda t: (t[rows, cols] ** 2.0).sum(), x0)   # paired fancy


def test_embedding_grad_bitwise_matches_add_at_float64(rng):
    """In float64 the run-summed gradient equals the oracle to ~1 ulp."""
    weight = Tensor(rng.normal(size=(12, 5)), requires_grad=True)
    indices = rng.integers(0, 12, size=(6, 9))
    out = embedding(weight, indices)
    upstream = rng.normal(size=out.shape)
    out.backward(upstream)
    oracle = np.zeros((12, 5))
    np.add.at(oracle, indices.reshape(-1), upstream.reshape(-1, 5))
    np.testing.assert_allclose(weight.grad, oracle, rtol=1e-12, atol=1e-12)
