"""Module system, core layers, attention, recurrent and conv blocks."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.tensor import Tensor

from ..conftest import check_grad


class _Toy(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8)
        self.fc2 = nn.Linear(8, 2)
        self.drop = nn.Dropout(0.5)

    def forward(self, x):
        return self.fc2(self.drop(self.fc1(x).relu()))


def test_named_parameters_recursive():
    model = _Toy()
    names = dict(model.named_parameters())
    assert "fc1.weight" in names and "fc2.bias" in names
    assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


def test_train_eval_propagates():
    model = _Toy()
    model.eval()
    assert not model.drop.training
    model.train()
    assert model.drop.training


def test_state_dict_roundtrip(rng):
    a, b = _Toy(), _Toy()
    b.fc1.weight.data = rng.normal(size=b.fc1.weight.shape)
    b.load_state_dict(a.state_dict())
    np.testing.assert_array_equal(a.fc1.weight.data, b.fc1.weight.data)


def test_load_state_dict_strict_mismatch():
    model = _Toy()
    with pytest.raises(KeyError):
        model.load_state_dict({"nope": np.zeros(3)})


def test_load_state_dict_shape_mismatch():
    model = _Toy()
    state = model.state_dict()
    state["fc1.weight"] = np.zeros((2, 2))
    with pytest.raises(ValueError):
        model.load_state_dict(state)


def test_load_state_dict_non_strict_partial():
    model = _Toy()
    before = model.fc2.weight.data.copy()
    state = {"fc1.weight": np.zeros((4, 8))}
    model.load_state_dict(state, strict=False)
    np.testing.assert_array_equal(model.fc1.weight.data, 0.0)
    np.testing.assert_array_equal(model.fc2.weight.data, before)


def test_sequential_and_identity(rng):
    seq = nn.Sequential(nn.Linear(3, 3), nn.Identity())
    x = Tensor(rng.normal(size=(2, 3)))
    out = seq(x)
    assert out.shape == (2, 3)


def test_linear_no_bias():
    layer = nn.Linear(3, 2, bias=False)
    assert layer.bias is None
    assert dict(layer.named_parameters()).keys() == {"weight"}


def test_embedding_lookup_and_padding():
    emb = nn.Embedding(10, 4, padding_idx=0)
    np.testing.assert_array_equal(emb.weight.data[0], 0.0)
    out = emb(np.array([[1, 0], [2, 3]]))
    assert out.shape == (2, 2, 4)
    np.testing.assert_array_equal(out.data[0, 1], 0.0)


def test_layernorm_statistics(rng):
    norm = nn.LayerNorm(16)
    x = Tensor(rng.normal(size=(4, 16)) * 5 + 3)
    out = norm(x).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
    np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)


def test_layernorm_grad(rng):
    norm = nn.LayerNorm(5)
    x = rng.normal(size=(2, 5))
    check_grad(lambda t: (norm(t) ** 2.0).sum(), x, atol=1e-4)


def test_feedforward_shapes(rng):
    ffn = nn.FeedForward(8, 16)
    out = ffn(Tensor(rng.normal(size=(2, 3, 8))))
    assert out.shape == (2, 3, 8)


def test_mha_shapes_and_grad(rng):
    attn = nn.MultiHeadAttention(8, 2)
    x = rng.normal(size=(2, 4, 8))
    out = attn(Tensor(x))
    assert out.shape == (2, 4, 8)
    check_grad(lambda t: (attn(t) ** 2.0).sum(), x, atol=1e-4)


def test_mha_rejects_indivisible_heads():
    with pytest.raises(ValueError):
        nn.MultiHeadAttention(7, 2)


def test_causal_mask_blocks_future(rng):
    """With a causal mask, output at t must not depend on inputs after t."""
    attn = nn.MultiHeadAttention(8, 2)
    attn.eval()
    x = rng.normal(size=(1, 5, 8))
    mask = nn.causal_mask(5)
    base = attn(Tensor(x), mask=mask).data.copy()
    perturbed = x.copy()
    perturbed[0, 4] += 10.0  # change the last position only
    out = attn(Tensor(perturbed), mask=mask).data
    np.testing.assert_allclose(out[0, :4], base[0, :4], atol=1e-10)
    assert not np.allclose(out[0, 4], base[0, 4])


def test_padding_mask_shape():
    valid = np.array([[1, 1, 0], [1, 0, 0]], dtype=bool)
    mask = nn.padding_mask(valid)
    assert mask.shape == (2, 1, 1, 3)
    assert mask[0, 0, 0, 2] and not mask[0, 0, 0, 0]


def test_transformer_block_grad(rng):
    block = nn.TransformerBlock(8, 2, ffn_dim=16)
    block.eval()
    x = rng.normal(size=(1, 3, 8))
    check_grad(lambda t: (block(t) ** 2.0).sum(), x, atol=1e-3, rtol=1e-3)


def test_gru_shapes_and_causality(rng):
    gru = nn.GRU(6, 8)
    x = rng.normal(size=(2, 5, 6))
    out = gru(Tensor(x)).data
    assert out.shape == (2, 5, 8)
    perturbed = x.copy()
    perturbed[:, 4] += 5.0
    out2 = gru(Tensor(perturbed)).data
    np.testing.assert_allclose(out2[:, :4], out[:, :4], atol=1e-12)


def test_gru_grad(rng):
    gru = nn.GRU(3, 4)
    x = rng.normal(size=(1, 3, 3))
    check_grad(lambda t: (gru(t) ** 2.0).sum(), x, atol=1e-4)


def test_causal_conv_shapes_and_causality(rng):
    conv = nn.CausalConv1d(4, 6, kernel_size=3, dilation=2)
    x = rng.normal(size=(2, 7, 4))
    out = conv(Tensor(x)).data
    assert out.shape == (2, 7, 6)
    perturbed = x.copy()
    perturbed[:, 6] += 5.0
    out2 = conv(Tensor(perturbed)).data
    np.testing.assert_allclose(out2[:, :6], out[:, :6], atol=1e-12)


def test_causal_conv_grad(rng):
    conv = nn.CausalConv1d(2, 3, kernel_size=2)
    x = rng.normal(size=(1, 4, 2))
    check_grad(lambda t: (conv(t) ** 2.0).sum(), x, atol=1e-4)


def test_nextitnet_block_residual(rng):
    block = nn.NextItNetResidualBlock(8, dilation=1)
    x = rng.normal(size=(1, 6, 8))
    out = block(Tensor(x))
    assert out.shape == (1, 6, 8)
