"""Checkpoint save/load and component-wise state filtering."""

from __future__ import annotations

import numpy as np

import repro.nn as nn


class _Net(nn.Module):
    def __init__(self):
        super().__init__()
        self.encoder = nn.Linear(4, 4)
        self.head = nn.Linear(4, 2)

    def forward(self, x):
        return self.head(self.encoder(x).relu())


def test_checkpoint_roundtrip(tmp_path, rng):
    model = _Net()
    model.encoder.weight.data = rng.normal(size=(4, 4))
    path = str(tmp_path / "ckpt.npz")
    nn.save_checkpoint(model, path)
    state = nn.load_checkpoint(path)
    fresh = _Net()
    fresh.load_state_dict(state)
    np.testing.assert_array_equal(fresh.encoder.weight.data,
                                  model.encoder.weight.data)


def test_load_checkpoint_adds_extension(tmp_path):
    model = _Net()
    path = str(tmp_path / "ckpt.npz")
    nn.save_checkpoint(model, path)
    state = nn.load_checkpoint(str(tmp_path / "ckpt"))
    assert "encoder.weight" in state


def test_filter_and_strip_prefix(tmp_path):
    model = _Net()
    state = model.state_dict()
    enc = nn.filter_state(state, ("encoder.",))
    assert set(enc) == {"encoder.weight", "encoder.bias"}
    stripped = nn.strip_prefix(enc, "encoder.")
    assert set(stripped) == {"weight", "bias"}
    # Loading the stripped state into a bare Linear must work.
    layer = nn.Linear(4, 4)
    layer.load_state_dict(stripped)
    np.testing.assert_array_equal(layer.weight.data, model.encoder.weight.data)


def test_partial_transfer_between_models():
    """Transferring only the encoder leaves the head untouched (Sec. III-E)."""
    source, target = _Net(), _Net()
    head_before = target.head.weight.data.copy()
    enc_state = nn.filter_state(source.state_dict(), ("encoder.",))
    target.load_state_dict(enc_state, strict=False)
    np.testing.assert_array_equal(target.encoder.weight.data,
                                  source.encoder.weight.data)
    np.testing.assert_array_equal(target.head.weight.data, head_before)
