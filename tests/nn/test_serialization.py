"""Checkpoint save/load, metadata, strict-mode hardening, state filtering."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.serialization import META_KEY


class _Net(nn.Module):
    def __init__(self):
        super().__init__()
        self.encoder = nn.Linear(4, 4)
        self.head = nn.Linear(4, 2)

    def forward(self, x):
        return self.head(self.encoder(x).relu())


def test_checkpoint_roundtrip(tmp_path, rng):
    model = _Net()
    model.encoder.weight.data = rng.normal(size=(4, 4))
    path = str(tmp_path / "ckpt.npz")
    nn.save_checkpoint(model, path)
    state = nn.load_checkpoint(path)
    fresh = _Net()
    fresh.load_state_dict(state)
    np.testing.assert_array_equal(fresh.encoder.weight.data,
                                  model.encoder.weight.data)


def test_load_checkpoint_adds_extension(tmp_path):
    model = _Net()
    path = str(tmp_path / "ckpt.npz")
    nn.save_checkpoint(model, path)
    state = nn.load_checkpoint(str(tmp_path / "ckpt"))
    assert "encoder.weight" in state


def test_filter_and_strip_prefix(tmp_path):
    model = _Net()
    state = model.state_dict()
    enc = nn.filter_state(state, ("encoder.",))
    assert set(enc) == {"encoder.weight", "encoder.bias"}
    stripped = nn.strip_prefix(enc, "encoder.")
    assert set(stripped) == {"weight", "bias"}
    # Loading the stripped state into a bare Linear must work.
    layer = nn.Linear(4, 4)
    layer.load_state_dict(stripped)
    np.testing.assert_array_equal(layer.weight.data, model.encoder.weight.data)


@pytest.mark.parametrize("fused", [False, True])
@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_roundtrip_under_both_kernel_paths(tmp_path, rng, fused, dtype):
    """Save/load round-trips bit-for-bit under REPRO_FUSED=0 and =1.

    The streaming hot-swap saves from one process configuration and may
    load under another; the fused/unfused kernel gate must not leak into
    checkpoint contents or the load path.
    """
    with nn.use_fused(fused):
        model = _Net().to_dtype(dtype)
        model.encoder.weight.data = rng.normal(size=(4, 4)).astype(dtype)
        path = str(tmp_path / f"ckpt-{int(fused)}-{dtype}.npz")
        nn.save_checkpoint(model, path, meta={"swap_version": 3})
        state, meta = nn.load_checkpoint(path, with_meta=True)
        fresh = _Net().to_dtype(dtype)
        fresh.load_state_dict(state)
    for name, value in model.state_dict().items():
        np.testing.assert_array_equal(fresh.state_dict()[name], value)
        assert fresh.state_dict()[name].dtype == np.dtype(dtype)
    assert meta["swap_version"] == 3
    assert meta["dtype"] == dtype
    assert meta["params"] == len(state)


def test_checkpoint_meta_and_format_guard(tmp_path):
    model = _Net()
    path = str(tmp_path / "ckpt.npz")
    nn.save_checkpoint(model, path)
    meta = nn.checkpoint_meta(path)
    assert meta["format"] == nn.CHECKPOINT_FORMAT
    assert meta["module"] == "_Net"
    # A future-format checkpoint is refused, not half-loaded.
    import json
    state = model.state_dict()
    record = {"format": nn.CHECKPOINT_FORMAT + 1, "params": len(state)}
    np.savez(str(tmp_path / "future.npz"), **state,
             **{META_KEY: np.array(json.dumps(record))})
    with pytest.raises(ValueError, match="archive format"):
        nn.load_checkpoint(str(tmp_path / "future.npz"))


def test_corrupt_param_count_detected(tmp_path):
    model = _Net()
    path = str(tmp_path / "ckpt.npz")
    nn.save_checkpoint(model, path)
    state, meta = nn.load_checkpoint(path, with_meta=True)
    import json
    dropped = dict(state)
    dropped.pop("head.bias")
    np.savez(str(tmp_path / "corrupt.npz"), **dropped,
             **{META_KEY: np.array(json.dumps(
                 {"format": 1, "params": meta["params"]}))})
    with pytest.raises(ValueError, match="corrupt"):
        nn.load_checkpoint(str(tmp_path / "corrupt.npz"))


def test_meta_key_collision_rejected(tmp_path):
    with pytest.raises(ValueError, match="collide"):
        nn.save_checkpoint(_Net(), str(tmp_path / "x.npz"),
                           meta={"format": 99})


def test_premetadata_checkpoint_still_loads(tmp_path):
    """Archives written before metadata existed load with empty meta."""
    model = _Net()
    np.savez(str(tmp_path / "old.npz"), **model.state_dict())
    state, meta = nn.load_checkpoint(str(tmp_path / "old.npz"),
                                     with_meta=True)
    assert meta == {}
    fresh = _Net()
    fresh.load_state_dict(state)


def test_strict_load_raises_on_missing_and_unexpected():
    model = _Net()
    state = model.state_dict()
    state.pop("head.bias")
    state["ghost.weight"] = np.zeros((2, 2))
    with pytest.raises(KeyError, match="missing=.*head.bias"):
        _Net().load_state_dict(state)


def test_shape_mismatch_raises_listing_all_and_mutates_nothing():
    """A bad checkpoint reports every offending key and is fully atomic."""
    model = _Net()
    state = model.state_dict()
    state["encoder.weight"] = np.zeros((3, 3))
    state["head.weight"] = np.zeros((5, 5))
    # Put a recognizable value in a *valid* slot: it must NOT be applied.
    state["encoder.bias"] = np.full(4, 7.25)
    target = _Net()
    before = {k: v.copy() for k, v in target.state_dict().items()}
    with pytest.raises(ValueError) as excinfo:
        target.load_state_dict(state)
    message = str(excinfo.value)
    assert "encoder.weight" in message and "head.weight" in message
    assert "2 parameter(s)" in message
    for name, value in target.state_dict().items():
        np.testing.assert_array_equal(value, before[name])


def test_nonstrict_still_raises_on_shape_mismatch():
    """Non-strict mode skips absent names but never shape mismatches."""
    model = _Net()
    state = {"encoder.weight": np.zeros((9, 9))}
    with pytest.raises(ValueError, match="shape mismatch"):
        model.load_state_dict(state, strict=False)


def test_partial_transfer_between_models():
    """Transferring only the encoder leaves the head untouched (Sec. III-E)."""
    source, target = _Net(), _Net()
    head_before = target.head.weight.data.copy()
    enc_state = nn.filter_state(source.state_dict(), ("encoder.",))
    target.load_state_dict(enc_state, strict=False)
    np.testing.assert_array_equal(target.encoder.weight.data,
                                  source.encoder.weight.data)
    np.testing.assert_array_equal(target.head.weight.data, head_before)
