"""Optimizers, clipping and schedules: convergence and semantics."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.tensor import Parameter, Tensor


def _quadratic_loss(param: Parameter, target: np.ndarray):
    diff = param - Tensor(target)
    return (diff * diff).sum()


@pytest.mark.parametrize("make_opt", [
    lambda ps: nn.SGD(ps, lr=0.1),
    lambda ps: nn.SGD(ps, lr=0.05, momentum=0.9),
    lambda ps: nn.Adam(ps, lr=0.2),
    lambda ps: nn.AdamW(ps, lr=0.2, weight_decay=0.0),
])
def test_optimizers_minimize_quadratic(make_opt):
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))
    opt = make_opt([param])
    for _ in range(200):
        opt.zero_grad()
        loss = _quadratic_loss(param, target)
        loss.backward()
        opt.step()
    np.testing.assert_allclose(param.data, target, atol=1e-2)


def test_adamw_decay_shrinks_weights():
    param = Parameter(np.full(4, 10.0))
    opt = nn.AdamW([param], lr=0.1, weight_decay=0.5)
    for _ in range(20):
        opt.zero_grad()
        (param * 0.0).sum().backward()
        opt.step()
    assert np.all(np.abs(param.data) < 10.0)


def test_adam_coupled_vs_adamw_decoupled_differ():
    p1 = Parameter(np.full(3, 5.0))
    p2 = Parameter(np.full(3, 5.0))
    a = nn.Adam([p1], lr=0.1, weight_decay=0.1)
    w = nn.AdamW([p2], lr=0.1, weight_decay=0.1)
    for opt, p in ((a, p1), (w, p2)):
        opt.zero_grad()
        (p * Tensor(np.array([1.0, 2.0, 3.0]))).sum().backward()
        opt.step()
    assert not np.allclose(p1.data, p2.data)


def test_empty_parameter_list_raises():
    with pytest.raises(ValueError):
        nn.SGD([], lr=0.1)


def test_clip_grad_norm_scales():
    p = Parameter(np.zeros(4))
    p.grad = np.full(4, 3.0)
    norm = nn.clip_grad_norm([p], max_norm=1.0)
    assert norm == pytest.approx(6.0)
    assert np.linalg.norm(p.grad) == pytest.approx(1.0, abs=1e-9)


def test_clip_grad_norm_noop_below_threshold():
    p = Parameter(np.zeros(4))
    p.grad = np.full(4, 0.1)
    before = p.grad.copy()
    nn.clip_grad_norm([p], max_norm=10.0)
    np.testing.assert_array_equal(p.grad, before)


def test_warmup_cosine_schedule_shape():
    p = Parameter(np.zeros(1))
    opt = nn.Adam([p], lr=1.0)
    sched = nn.WarmupCosineSchedule(opt, warmup_steps=10, total_steps=100)
    lrs = []
    for _ in range(100):
        sched.step()
        lrs.append(opt.lr)
    assert lrs[4] == pytest.approx(0.5)     # mid-warmup
    assert lrs[9] == pytest.approx(1.0)     # warmup end
    assert lrs[-1] == pytest.approx(0.0, abs=1e-6)  # decayed to min
    assert max(lrs) <= 1.0 + 1e-9


def test_warmup_cosine_rejects_bad_total():
    p = Parameter(np.zeros(1))
    opt = nn.Adam([p], lr=1.0)
    with pytest.raises(ValueError):
        nn.WarmupCosineSchedule(opt, warmup_steps=0, total_steps=0)
