"""Gradient correctness of every autograd primitive vs finite differences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro.nn as nn
from repro.nn.tensor import Tensor, concat, stack, where

from ..conftest import check_grad

SHAPES = [(3,), (2, 4), (2, 3, 2)]


def _arrays(shape, low=-2.0, high=2.0):
    return hnp.arrays(np.float64, shape,
                      elements=st.floats(low, high, allow_nan=False))


def test_no_grad_is_thread_local():
    """A thread inside no_grad must not disable other threads' graphs.

    This is load-bearing for repro.stream: serving threads score under
    no_grad while the fine-tune worker builds training graphs
    concurrently. With a process-global gate the worker's backward would
    randomly see no graph at all.
    """
    import threading
    entered = threading.Event()
    release = threading.Event()

    def server():
        with nn.no_grad():
            entered.set()
            release.wait(timeout=30)

    thread = threading.Thread(target=server, daemon=True)
    thread.start()
    assert entered.wait(timeout=30)
    try:
        # The other thread is parked inside its inference block right
        # now; this thread's graph construction must be unaffected.
        assert nn.is_grad_enabled()
        w = Tensor(np.ones((3, 3)), requires_grad=True)
        out = (w @ w).sum()
        assert out.requires_grad
        out.backward()
        assert w.grad is not None
    finally:
        release.set()
        thread.join(timeout=30)


def test_use_fused_is_thread_local():
    import threading
    entered = threading.Event()
    release = threading.Event()
    ambient = nn.fusion_enabled()

    def pinner():
        with nn.use_fused(not ambient):
            entered.set()
            release.wait(timeout=30)

    thread = threading.Thread(target=pinner, daemon=True)
    thread.start()
    assert entered.wait(timeout=30)
    try:
        assert nn.fusion_enabled() == ambient
    finally:
        release.set()
        thread.join(timeout=30)


@pytest.mark.parametrize("shape", SHAPES)
def test_add_grad(shape, rng):
    x = rng.normal(size=shape)
    other = rng.normal(size=shape)
    check_grad(lambda t: (t + Tensor(other)).sum(), x)


def test_add_broadcast_grad(rng):
    x = rng.normal(size=(2, 1, 4))
    other = rng.normal(size=(3, 4))
    check_grad(lambda t: ((t + Tensor(other)) ** 2.0).sum(), x)


def test_mul_broadcast_grad(rng):
    x = rng.normal(size=(3, 1))
    other = rng.normal(size=(3, 4))
    check_grad(lambda t: (t * Tensor(other)).sum(), x)


def test_div_grad(rng):
    x = rng.normal(size=(4,)) + 3.0
    other = rng.normal(size=(4,)) + 3.0
    check_grad(lambda t: (Tensor(other) / t).sum(), x)


def test_pow_grad(rng):
    x = np.abs(rng.normal(size=(5,))) + 0.5
    check_grad(lambda t: (t ** 3.0).sum(), x)


def test_matmul_2d_grad(rng):
    x = rng.normal(size=(3, 4))
    w = rng.normal(size=(4, 2))
    check_grad(lambda t: (t @ Tensor(w)).sum(), x)
    check_grad(lambda t: (Tensor(x) @ t).sum(), w)


def test_matmul_batched_grad(rng):
    x = rng.normal(size=(2, 3, 4))
    w = rng.normal(size=(2, 4, 2))
    check_grad(lambda t: ((t @ Tensor(w)) ** 2.0).sum(), x)
    check_grad(lambda t: ((Tensor(x) @ t) ** 2.0).sum(), w)


def test_matmul_broadcast_batch_grad(rng):
    x = rng.normal(size=(2, 3, 4))
    w = rng.normal(size=(4, 5))
    check_grad(lambda t: ((Tensor(x) @ t) ** 2.0).sum(), w)


def test_matmul_vector_grad(rng):
    x = rng.normal(size=(3, 4))
    v = rng.normal(size=(4,))
    check_grad(lambda t: (t @ Tensor(v)).sum(), x)
    check_grad(lambda t: (Tensor(x) @ t).sum(), v)


@pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid",
                                "relu", "abs"])
def test_unary_grads(op, rng):
    x = np.abs(rng.normal(size=(6,))) + 0.5  # positive domain for log/sqrt
    if op in ("tanh", "sigmoid"):
        x = rng.normal(size=(6,))
    check_grad(lambda t: getattr(t, op)().sum(), x)


def test_clip_grad(rng):
    x = rng.normal(size=(8,)) * 2.0
    # Stay away from the clip boundaries where the subgradient is ambiguous.
    x = x[np.abs(np.abs(x) - 1.0) > 0.05]
    check_grad(lambda t: t.clip(-1.0, 1.0).sum(), x)


@pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False),
                                           (1, True), ((0, 1), False)])
def test_sum_grad(axis, keepdims, rng):
    x = rng.normal(size=(3, 4))
    check_grad(lambda t: (t.sum(axis=axis, keepdims=keepdims) ** 2.0).sum(), x)


def test_mean_grad(rng):
    x = rng.normal(size=(3, 4))
    check_grad(lambda t: (t.mean(axis=1) ** 2.0).sum(), x)


def test_max_grad_no_ties(rng):
    x = np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]])
    check_grad(lambda t: t.max(axis=1).sum(), x)


def test_reshape_transpose_grad(rng):
    x = rng.normal(size=(2, 3, 4))
    check_grad(lambda t: (t.reshape(6, 4).transpose(1, 0) ** 2.0).sum(), x)


def test_swapaxes_grad(rng):
    x = rng.normal(size=(2, 3, 4))
    check_grad(lambda t: (t.swapaxes(1, 2) ** 2.0).sum(), x)


def test_getitem_slice_grad(rng):
    x = rng.normal(size=(4, 5))
    check_grad(lambda t: (t[1:3, ::2] ** 2.0).sum(), x)


def test_getitem_fancy_repeated_grad(rng):
    x = rng.normal(size=(5, 3))
    idx = np.array([0, 2, 2, 4])
    check_grad(lambda t: (t[idx] ** 2.0).sum(), x)


def test_concat_grad(rng):
    x = rng.normal(size=(2, 3))
    other = rng.normal(size=(2, 2))
    check_grad(lambda t: (concat([t, Tensor(other)], axis=1) ** 2.0).sum(), x)


def test_stack_grad(rng):
    x = rng.normal(size=(2, 3))
    other = rng.normal(size=(2, 3))
    check_grad(lambda t: (stack([t, Tensor(other)], axis=0) ** 2.0).sum(), x)


def test_where_grad(rng):
    x = rng.normal(size=(3, 4))
    cond = rng.random((3, 4)) > 0.5
    other = rng.normal(size=(3, 4))
    check_grad(lambda t: (where(cond, t, Tensor(other)) ** 2.0).sum(), x)


def test_l2_normalize_grad(rng):
    x = rng.normal(size=(3, 4)) + 0.1
    check_grad(lambda t: (t.l2_normalize() ** 2.0).sum(), x, atol=1e-4)


def test_reuse_accumulates_grad(rng):
    x = rng.normal(size=(3,))
    check_grad(lambda t: (t * t).sum() + t.sum() * 2.0, x)


def test_diamond_graph_grad(rng):
    x = rng.normal(size=(4,))

    def loss(t):
        a = t * 2.0
        b = t + 1.0
        return (a * b).sum()

    check_grad(loss, x)


def test_backward_requires_grad_flag():
    t = Tensor(np.ones(3), requires_grad=False)
    with pytest.raises(RuntimeError):
        (t.sum() if t.requires_grad else t).backward()


def test_no_grad_blocks_graph():
    t = Tensor(np.ones(3), requires_grad=True)
    with nn.no_grad():
        out = (t * 2.0).sum()
    assert not out.requires_grad


@settings(max_examples=25, deadline=None)
@given(_arrays((3, 4)))
def test_softmax_rows_sum_to_one(arr):
    out = nn.softmax(Tensor(arr), axis=-1).data
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)
    assert (out >= 0).all()


@settings(max_examples=25, deadline=None)
@given(_arrays((2, 5)))
def test_log_softmax_matches_log_of_softmax(arr):
    a = nn.log_softmax(Tensor(arr)).data
    b = np.log(nn.softmax(Tensor(arr)).data + 1e-300)
    np.testing.assert_allclose(a, b, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(_arrays((4, 3), low=-3.0, high=3.0))
def test_softmax_grad_hypothesis(arr):
    weights = np.arange(12, dtype=np.float64).reshape(4, 3)
    check_grad(lambda t: (nn.softmax(t, axis=-1) * Tensor(weights)).sum(),
               arr, atol=1e-4)


def test_cross_entropy_matches_manual(rng):
    logits = rng.normal(size=(5, 7))
    targets = rng.integers(0, 7, size=5)
    loss = nn.cross_entropy(Tensor(logits), targets).item()
    probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
    manual = -np.log(probs[np.arange(5), targets]).mean()
    assert abs(loss - manual) < 1e-8


def test_cross_entropy_ignore_index(rng):
    logits = rng.normal(size=(4, 3))
    targets = np.array([0, 1, -1, 2])
    loss = nn.cross_entropy(Tensor(logits), targets, ignore_index=-1).item()
    probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
    kept = [0, 1, 3]
    manual = -np.log(probs[kept, targets[kept]]).mean()
    assert abs(loss - manual) < 1e-8


def test_cross_entropy_grad(rng):
    logits = rng.normal(size=(4, 5))
    targets = rng.integers(0, 5, size=4)
    check_grad(lambda t: nn.cross_entropy(t, targets), logits)


def test_embedding_grad_scatter(rng):
    table = rng.normal(size=(6, 3))
    idx = np.array([[0, 1, 1], [5, 0, 2]])
    check_grad(lambda t: (nn.embedding(t, idx) ** 2.0).sum(), table)


def test_gelu_grad(rng):
    x = rng.normal(size=(7,))
    check_grad(lambda t: nn.gelu(t).sum(), x)


def test_gelu_known_values():
    x = Tensor(np.array([0.0, 100.0, -100.0]))
    out = nn.gelu(x).data
    np.testing.assert_allclose(out, [0.0, 100.0, 0.0], atol=1e-6)


def test_masked_fill():
    x = Tensor(np.ones((2, 2)))
    mask = np.array([[True, False], [False, True]])
    out = nn.masked_fill(x, mask).data
    assert out[0, 0] < -1e8 and out[0, 1] == 1.0


def test_info_nce_matches_manual(rng):
    scores = rng.normal(size=(3, 4))
    pos = np.zeros((3, 4), dtype=bool)
    pos[np.arange(3), [0, 1, 2]] = True
    loss = nn.info_nce(Tensor(scores), pos).item()
    exp = np.exp(scores)
    manual = -np.log(exp[np.arange(3), [0, 1, 2]] / exp.sum(axis=1)).mean()
    assert abs(loss - manual) < 1e-8


def test_info_nce_multiple_positives(rng):
    scores = rng.normal(size=(2, 4))
    pos = np.array([[True, True, False, False], [False, False, True, True]])
    loss = nn.info_nce(Tensor(scores), pos).item()
    exp = np.exp(scores)
    manual = -np.log((exp * pos).sum(axis=1) / exp.sum(axis=1)).mean()
    assert abs(loss - manual) < 1e-8


def test_info_nce_candidate_mask(rng):
    scores = rng.normal(size=(2, 4))
    pos = np.array([[True, False, False, False], [False, True, False, False]])
    cand = np.array([[True, True, True, False], [True, True, False, True]])
    loss = nn.info_nce(Tensor(scores), pos, cand).item()
    exp = np.exp(scores)
    manual = -np.log((exp * pos).sum(axis=1) / (exp * cand).sum(axis=1)).mean()
    assert abs(loss - manual) < 1e-8


def test_info_nce_skips_rows_without_positives(rng):
    scores = rng.normal(size=(3, 4))
    pos = np.zeros((3, 4), dtype=bool)
    pos[0, 1] = True
    loss = nn.info_nce(Tensor(scores), pos).item()
    assert np.isfinite(loss)


def test_info_nce_grad(rng):
    scores = rng.normal(size=(3, 5))
    pos = np.zeros((3, 5), dtype=bool)
    pos[np.arange(3), [0, 2, 4]] = True
    cand = np.ones((3, 5), dtype=bool)
    cand[0, 1] = False
    check_grad(lambda t: nn.info_nce(t, pos, cand), scores)


def test_dropout_zero_rate_is_identity(rng):
    x = Tensor(rng.normal(size=(4, 4)))
    out = nn.dropout(x, 0.0, rng, training=True)
    np.testing.assert_array_equal(out.data, x.data)


def test_dropout_eval_is_identity(rng):
    x = Tensor(rng.normal(size=(4, 4)))
    out = nn.dropout(x, 0.5, rng, training=False)
    np.testing.assert_array_equal(out.data, x.data)


def test_dropout_scales_kept_units():
    rng = np.random.default_rng(0)
    x = Tensor(np.ones((100, 100)))
    out = nn.dropout(x, 0.5, rng, training=True).data
    kept = out[out != 0]
    np.testing.assert_allclose(kept, 2.0)
    assert abs((out == 0).mean() - 0.5) < 0.05
