"""Finite-difference gradient checks for every primitive, in both dtypes.

Complements ``test_autograd.py`` (float64-only) with a single parameterized
sweep: each autograd primitive — including the ones that file leaves
uncovered (neg, sub/rsub, scalar-operand paths, truediv numerator, mean
over all axes, max with keepdims/ties, astype, take_rows, masked_fill,
cosine_similarity) — is checked against central finite differences under
float64 *and* float32, with dtype-appropriate tolerances.

The analytic gradient is computed in the target dtype; the numeric
reference is always evaluated in float64 so the comparison measures the
op's precision loss, not the reference's.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.tensor import Tensor, concat, stack, where

from ..conftest import numeric_grad

DTYPE_TOLS = {
    "float64": dict(atol=1e-5, rtol=1e-4),
    "float32": dict(atol=5e-3, rtol=5e-3),
}


def check_grad_dtype(build_loss, x0: np.ndarray, dtype: str) -> None:
    """Analytic grad in ``dtype`` vs float64 finite differences.

    ``build_loss(tensor) -> Tensor`` must be dtype-polymorphic: constants
    it introduces must follow its argument's dtype (the repo's ops do).
    """
    np_dtype = np.dtype(dtype)
    leaf = Tensor(x0.astype(np_dtype), requires_grad=True)
    loss = build_loss(leaf)
    assert loss.data.dtype == np_dtype, \
        f"loss dtype {loss.data.dtype} leaked away from {np_dtype}"
    loss.backward()
    analytic = leaf.grad
    assert analytic is not None and analytic.dtype == np_dtype

    def scalar_fn(arr):
        with nn.no_grad():
            return float(build_loss(Tensor(arr)).data)

    numeric = numeric_grad(scalar_fn, x0.astype(np.float64))
    np.testing.assert_allclose(analytic.astype(np.float64), numeric,
                               **DTYPE_TOLS[dtype])


def _rng():
    return np.random.default_rng(20240726)


def _const(t: Tensor, arr: np.ndarray) -> Tensor:
    """A constant cast to the dtype of the tensor under test."""
    return Tensor(arr, dtype=t.data.dtype)


R = _rng()
OTHER = R.normal(size=(3, 4))
POSITIVE = np.abs(R.normal(size=(3, 4))) + 0.5
MAT = R.normal(size=(4, 2))
VEC = R.normal(size=(4,))
IDX = np.array([[0, 2, 2], [4, 0, 1]])
TARGETS = np.array([0, 3, 1])
POS_MASK = np.eye(3, 4, dtype=bool)
BOOL_MASK = R.random((3, 4)) > 0.5

CASES = {
    "neg": (lambda t: (-t).sum(), OTHER),
    "sub": (lambda t: (t - _const(t, OTHER)).sum(), OTHER),
    "sub_const_side": (lambda t: (_const(t, OTHER) - t).sum(), OTHER),
    "rsub_scalar": (lambda t: ((1.5 - t) ** 2.0).sum(), OTHER),
    "add_scalar": (lambda t: (t + 2.5).sum(), OTHER),
    "radd_scalar": (lambda t: (2.5 + t).sum(), OTHER),
    "mul_scalar": (lambda t: (3.0 * t).sum(), OTHER),
    "div_numerator": (lambda t: (t / _const(t, POSITIVE)).sum(), OTHER),
    "div_denominator": (lambda t: (_const(t, OTHER) / t).sum(), POSITIVE),
    "rtruediv_scalar": (lambda t: (2.0 / t).sum(), POSITIVE),
    "pow": (lambda t: (t ** 3.0).sum(), POSITIVE),
    "matmul": (lambda t: ((t.reshape(3, 4) @ _const(t, MAT)) ** 2.0).sum(),
               OTHER),
    "matmul_vec": (lambda t: (t.reshape(3, 4) @ _const(t, VEC)).sum(), OTHER),
    "exp": (lambda t: t.exp().sum(), OTHER),
    "log": (lambda t: t.log().sum(), POSITIVE),
    "sqrt": (lambda t: t.sqrt().sum(), POSITIVE),
    "tanh": (lambda t: t.tanh().sum(), OTHER),
    "sigmoid": (lambda t: t.sigmoid().sum(), OTHER),
    "relu": (lambda t: t.relu().sum(), OTHER),
    "abs": (lambda t: t.abs().sum(), POSITIVE),
    "clip": (lambda t: t.clip(-0.75, 0.75).sum(),
             OTHER[np.abs(np.abs(OTHER) - 0.75) > 0.05]),
    "sum_all": (lambda t: (t.sum() ** 2.0), OTHER),
    "sum_keepdims": (lambda t: (t.sum(axis=1, keepdims=True) ** 2.0).sum(),
                     OTHER),
    "mean_all": (lambda t: (t.mean() ** 2.0), OTHER),
    "mean_tuple_axes": (lambda t: (t.mean(axis=(0, 1)) ** 2.0), OTHER),
    "max_all": (lambda t: t.max() * 2.0, OTHER),
    "max_keepdims": (lambda t: t.max(axis=0, keepdims=True).sum(), OTHER),
    "reshape": (lambda t: (t.reshape(4, 3) ** 2.0).sum(), OTHER),
    "transpose": (lambda t: (t.transpose(1, 0) ** 2.0).sum(), OTHER),
    "swapaxes": (lambda t: (t.swapaxes(0, 1) ** 2.0).sum(), OTHER),
    "getitem": (lambda t: (t[1:, ::2] ** 2.0).sum(), OTHER),
    "l2_normalize": (lambda t: (t.l2_normalize() ** 2.0).sum(),
                     OTHER + 0.1),
    "concat": (lambda t: (concat([t, _const(t, OTHER)], axis=1) ** 2.0).sum(),
               OTHER),
    "stack_axis1": (lambda t: (stack([t, _const(t, OTHER)], axis=1)
                               ** 2.0).sum(), OTHER),
    "where_true_side": (lambda t: (where(BOOL_MASK, t, _const(t, OTHER))
                                   ** 2.0).sum(), OTHER),
    "where_false_side": (lambda t: (where(BOOL_MASK, _const(t, OTHER), t)
                                    ** 2.0).sum(), OTHER),
    "softmax": (lambda t: (nn.softmax(t, axis=-1)
                           * _const(t, OTHER)).sum(), OTHER),
    "log_softmax": (lambda t: (nn.log_softmax(t)
                               * _const(t, OTHER)).sum(), OTHER),
    "cross_entropy": (lambda t: nn.cross_entropy(t, TARGETS), OTHER),
    "cross_entropy_ignore": (
        lambda t: nn.cross_entropy(t, np.array([0, -1, 2]), ignore_index=-1),
        OTHER),
    "embedding": (lambda t: (nn.embedding(t.reshape(5, 3), IDX) ** 2.0).sum(),
                  R.normal(size=(5, 3))),
    "take_rows": (lambda t: (nn.take_rows(t.reshape(5, 3),
                                          np.array([4, 1, 1])) ** 2.0).sum(),
                  R.normal(size=(5, 3))),
    "gelu": (lambda t: nn.gelu(t).sum(), OTHER),
    "masked_fill": (lambda t: nn.masked_fill(t, BOOL_MASK, -2.0).sum(), OTHER),
    "cosine_similarity": (
        lambda t: nn.cosine_similarity(t, _const(t, OTHER + 0.2)).sum(),
        OTHER + 0.1),
    "info_nce": (lambda t: nn.info_nce(t, POS_MASK), OTHER),
    "info_nce_candidates": (
        lambda t: nn.info_nce(t, POS_MASK, BOOL_MASK | POS_MASK), OTHER),
    "reuse_accumulation": (lambda t: (t * t).sum() + t.sum() * 2.0, OTHER),
    "diamond": (lambda t: ((t * 2.0) * (t + 1.0)).sum(), OTHER),
}


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("name", sorted(CASES))
def test_primitive_grad(name, dtype):
    build_loss, x0 = CASES[name]
    check_grad_dtype(build_loss, np.asarray(x0, dtype=np.float64), dtype)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_max_tie_subgradient_splits_evenly(dtype):
    """Ties split the gradient — a convention FD cannot see, so assert it
    directly instead of against finite differences."""
    x = Tensor(np.array([[1.0, 1.0, 0.0], [2.0, 2.0, 2.0]], dtype=dtype),
               requires_grad=True)
    x.max(axis=1).sum().backward()
    expected = np.array([[0.5, 0.5, 0.0], [1 / 3, 1 / 3, 1 / 3]])
    np.testing.assert_allclose(x.grad, expected, rtol=1e-6)
    assert x.grad.dtype == np.dtype(dtype)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_astype_grad_chain(dtype):
    """An up-cast in the middle of the graph routes grads back down-cast.

    (FD can't check casts that quantize, so assert the exact chain rule.)
    """
    other = np.dtype(np.float64 if np.dtype(dtype) == np.float32
                     else np.float32)
    x = Tensor(np.arange(1.0, 4.0, dtype=dtype), requires_grad=True)
    (x.astype(other) * 3.0).sum().backward()
    assert x.grad.dtype == np.dtype(dtype)
    np.testing.assert_allclose(x.grad, 3.0)
