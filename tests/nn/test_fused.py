"""Parity suite for the fused autograd kernels (``repro.nn.fused``).

Every fused composite node is pinned against the unfused multi-node
composition it replaced (the ``REPRO_FUSED=0`` escape hatch) from three
directions:

* **forward** — bit-for-bit identical output (the fused kernels mirror
  the unfused floating-point operation order exactly), in float64 and
  float32, masked and unmasked, eval and training-mode dropout;
* **backward** — gradients agree within dtype rounding, for the input
  and for every parameter;
* **finite differences** — the fused backward closures are additionally
  checked against central finite differences directly, so the parity
  does not rest on the unfused path alone.

Also locks down the supporting refactors: the lazy-unbroadcast engine,
the dropout passthrough, the cached masks, and the ``REPRO_FUSED`` /
``use_fused`` gate semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import fused
from repro.nn.tensor import Tensor

from ..conftest import check_grad
from .test_autograd_dtypes import check_grad_dtype

DTYPES = ["float64", "float32"]
GRAD_TOLS = {"float64": dict(rtol=1e-9, atol=1e-11),
             "float32": dict(rtol=2e-3, atol=1e-4)}


def _mask_cases(batch: int, length: int, rng):
    """None, causal+padding, and a fully-masked-row attention mask."""
    valid = rng.random((batch, length)) > 0.3
    valid[:, 0] = True
    causal = nn.causal_mask(length)[None, None] | nn.padding_mask(valid)
    fully_masked = causal.copy()
    fully_masked[0, :, 1, :] = True          # one row attends to nothing
    return {"none": None, "causal+padding": causal,
            "fully-masked-row": fully_masked}


# -- gate semantics ------------------------------------------------------------


def test_fusion_enabled_defaults_on(monkeypatch):
    monkeypatch.delenv("REPRO_FUSED", raising=False)
    assert nn.fusion_enabled()


def test_repro_fused_env_disables(monkeypatch):
    monkeypatch.setenv("REPRO_FUSED", "0")
    assert not nn.fusion_enabled()
    monkeypatch.setenv("REPRO_FUSED", "1")
    assert nn.fusion_enabled()


def test_use_fused_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_FUSED", "0")
    with nn.use_fused(True):
        assert nn.fusion_enabled()
        with nn.use_fused(False):
            assert not nn.fusion_enabled()
        assert nn.fusion_enabled()
    assert not nn.fusion_enabled()


def test_transformer_block_op_honors_escape_hatch(rng):
    """Calling the whole-layer op directly must respect use_fused(False)."""
    blk = nn.TransformerBlock(8, 2, rng=np.random.default_rng(2))
    blk.eval()
    x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
    params = {"ln1_g": blk.norm1.gamma, "ln1_b": blk.norm1.beta,
              "wq": blk.attn.q_proj.weight, "bq": blk.attn.q_proj.bias,
              "wk": blk.attn.k_proj.weight, "bk": blk.attn.k_proj.bias,
              "wv": blk.attn.v_proj.weight, "bv": blk.attn.v_proj.bias,
              "wo": blk.attn.out_proj.weight, "bo": blk.attn.out_proj.bias,
              "ln2_g": blk.norm2.gamma, "ln2_b": blk.norm2.beta,
              "w1": blk.ffn.fc1.weight, "b1": blk.ffn.fc1.bias,
              "w2": blk.ffn.fc2.weight, "b2": blk.ffn.fc2.bias}
    with nn.use_fused(True):
        fused_out = nn.transformer_block(x, params, num_heads=2, eps=1e-5)
        assert len(fused_out._parents) == 17      # the one-node form
    with nn.use_fused(False):
        composed = nn.transformer_block(x, params, num_heads=2, eps=1e-5)
        assert len(composed._parents) != 17       # multi-node composition
    np.testing.assert_array_equal(fused_out.data, composed.data)


def test_unfused_builds_composition_nodes(rng):
    """The escape hatch really is the multi-node graph, not a re-label."""
    x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
    gamma, beta = nn.Parameter(np.ones(8)), nn.Parameter(np.zeros(8))
    with nn.use_fused(True):
        one = nn.layer_norm(x, gamma, beta)
        assert one._parents == (x, gamma, beta)
    with nn.use_fused(False):
        many = nn.layer_norm(x, gamma, beta)
        assert x not in many._parents      # composed through intermediates


# -- forward/backward parity, all fused ops ------------------------------------


def _block_run(dtype, fused_on, train, mask, dropout):
    with nn.use_fused(fused_on):
        rng = np.random.default_rng(7)
        with nn.default_dtype(dtype):
            blk = nn.TransformerBlock(16, 4, dropout=dropout, rng=rng)
        blk.train(train)
        x = np.random.default_rng(1).normal(size=(4, 6, 16)).astype(dtype)
        t = Tensor(x, requires_grad=True)
        out = blk(t, mask=mask)
        (out ** 2.0).sum().backward()
        return (out.data, t.grad,
                {name: p.grad for name, p in blk.named_parameters()})


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("train", [False, True])
def test_transformer_block_parity(dtype, train, rng):
    for name, mask in _mask_cases(4, 6, rng).items():
        out1, gx1, pg1 = _block_run(dtype, True, train, mask, dropout=0.25)
        out0, gx0, pg0 = _block_run(dtype, False, train, mask, dropout=0.25)
        np.testing.assert_array_equal(out1, out0, err_msg=f"mask={name}")
        tols = GRAD_TOLS[dtype]
        np.testing.assert_allclose(gx1, gx0, **tols, err_msg=f"mask={name}")
        assert pg1.keys() == pg0.keys()
        for pname in pg1:
            np.testing.assert_allclose(pg1[pname], pg0[pname], **tols,
                                       err_msg=f"{pname} mask={name}")


@pytest.mark.parametrize("dtype", DTYPES)
def test_mha_op_parity(dtype, rng):
    """The standalone one-node MHA (cross-attention module path uses it)."""
    with nn.default_dtype(dtype):
        attn = nn.MultiHeadAttention(16, 4, rng=np.random.default_rng(3))
    x = rng.normal(size=(3, 5, 16)).astype(dtype)
    mask = _mask_cases(3, 5, rng)["causal+padding"]

    def run(fused_on):
        with nn.use_fused(fused_on):
            t = Tensor(x, requires_grad=True)
            out = attn(t, mask=mask)
            (out ** 2.0).sum().backward()
            return out.data, t.grad
    out1, g1 = run(True)
    out0, g0 = run(False)
    np.testing.assert_array_equal(out1, out0)
    np.testing.assert_allclose(g1, g0, **GRAD_TOLS[dtype])


@pytest.mark.parametrize("dtype", DTYPES)
def test_sdpa_parity_cross_attention(dtype, rng):
    q = rng.normal(size=(2, 2, 4, 8)).astype(dtype)
    k = rng.normal(size=(2, 2, 6, 8)).astype(dtype)
    v = rng.normal(size=(2, 2, 6, 8)).astype(dtype)
    mask = rng.random((2, 1, 4, 6)) > 0.6

    def run(fused_on):
        with nn.use_fused(fused_on):
            tq, tk, tv = (Tensor(a, requires_grad=True) for a in (q, k, v))
            out = nn.scaled_dot_product_attention(tq, tk, tv, mask=mask)
            (out ** 2.0).sum().backward()
            return out.data, tq.grad, tk.grad, tv.grad
    r1, r0 = run(True), run(False)
    np.testing.assert_array_equal(r1[0], r0[0])
    for a, b in zip(r1[1:], r0[1:]):
        np.testing.assert_allclose(a, b, **GRAD_TOLS[dtype])


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("ignore", [None, -1])
def test_softmax_cross_entropy_parity(dtype, ignore, rng):
    logits = rng.normal(size=(4, 5, 7)).astype(dtype)
    targets = rng.integers(0, 7, size=(4, 5))
    if ignore is not None:
        targets[0, :3] = ignore

    def run(fused_on):
        with nn.use_fused(fused_on):
            t = Tensor(logits, requires_grad=True)
            loss = nn.softmax_cross_entropy(t, targets, ignore_index=ignore)
            loss.backward()
            return float(loss.data), t.grad
    (l1, g1), (l0, g0) = run(True), run(False)
    assert l1 == l0
    np.testing.assert_allclose(g1, g0, **GRAD_TOLS[dtype])


def test_softmax_cross_entropy_all_ignored_is_constant_zero():
    logits = Tensor(np.ones((2, 3)), requires_grad=True)
    loss = nn.softmax_cross_entropy(logits, np.array([-1, -1]),
                                    ignore_index=-1)
    assert float(loss.data) == 0.0 and loss._backward is None


@pytest.mark.parametrize("dtype", DTYPES)
def test_info_nce_parity(dtype, rng):
    scores = rng.normal(size=(10, 14)).astype(dtype)
    positive = rng.random((10, 14)) < 0.2
    positive[3] = False                       # a row with no positives
    candidate = rng.random((10, 14)) < 0.6
    for cand in (None, candidate):
        def run(fused_on):
            with nn.use_fused(fused_on):
                t = Tensor(scores, requires_grad=True)
                loss = nn.info_nce(t, positive, cand)
                loss.backward()
                return float(loss.data), t.grad
        (l1, g1), (l0, g0) = run(True), run(False)
        assert l1 == l0
        np.testing.assert_allclose(g1, g0, **GRAD_TOLS[dtype])


@pytest.mark.parametrize("dtype", DTYPES)
def test_layer_norm_and_linear_and_ffn_parity(dtype, rng):
    x = rng.normal(size=(3, 4, 8)).astype(dtype)
    with nn.default_dtype(dtype):
        norm = nn.LayerNorm(8)
        lin = nn.Linear(8, 6, rng=np.random.default_rng(0))
        ffn = nn.FeedForward(8, 16, rng=np.random.default_rng(1))
    for module in (norm, lin, ffn):
        def run(fused_on):
            with nn.use_fused(fused_on):
                t = Tensor(x, requires_grad=True)
                (module(t) ** 2.0).sum().backward()
                grads = [p.grad.copy() for p in module.parameters()]
                for p in module.parameters():
                    p.zero_grad()
                return module(t.detach()).data, t.grad, grads
        out1, g1, pg1 = run(True)
        out0, g0, pg0 = run(False)
        np.testing.assert_array_equal(out1, out0)
        for a, b in zip([g1] + pg1, [g0] + pg0):
            np.testing.assert_allclose(a, b, **GRAD_TOLS[dtype])


# -- finite-difference checks of the fused backward closures -------------------


@pytest.mark.parametrize("dtype", DTYPES)
def test_fused_sdpa_fd(dtype, rng):
    k = rng.normal(size=(2, 3, 8))
    v = rng.normal(size=(2, 3, 8))
    mask = np.triu(np.ones((3, 3), dtype=bool), k=1)
    with nn.use_fused(True):
        check_grad_dtype(
            lambda t: (nn.scaled_dot_product_attention(
                t, Tensor(k, dtype=t.data.dtype),
                Tensor(v, dtype=t.data.dtype), mask=mask) ** 2.0).sum(),
            rng.normal(size=(2, 3, 8)), dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_fused_block_fd_wrt_input(dtype, rng):
    with nn.default_dtype(dtype):
        blk = nn.TransformerBlock(8, 2, rng=np.random.default_rng(5))
    blk.eval()
    mask = nn.causal_mask(4)[None, None]
    with nn.use_fused(True):
        check_grad_dtype(lambda t: (blk(t, mask=mask) ** 2.0).sum(),
                         rng.normal(size=(2, 4, 8)), dtype)


def test_fused_block_fd_wrt_parameters(rng):
    """FD through every parameter of the one-node layer (float64)."""
    from ..conftest import numeric_grad

    blk = nn.TransformerBlock(8, 2, rng=np.random.default_rng(5))
    blk.eval()
    x = rng.normal(size=(2, 4, 8))
    mask = nn.causal_mask(4)[None, None]
    with nn.use_fused(True):
        for name, param in blk.named_parameters():
            blk.zero_grad()
            loss = (blk(Tensor(x), mask=mask) ** 2.0).sum()
            loss.backward()
            analytic = param.grad.copy()
            base = param.data.copy()

            def scalar_fn(arr, param=param):
                param.data = arr
                with nn.no_grad():
                    return float(
                        ((blk(Tensor(x), mask=mask) ** 2.0).sum()).data)

            try:
                numeric = numeric_grad(scalar_fn, base.copy())
            finally:
                param.data = base
            np.testing.assert_allclose(analytic, numeric, atol=1e-4,
                                       rtol=1e-4, err_msg=name)


@pytest.mark.parametrize("dtype", DTYPES)
def test_fused_cross_entropy_fd(dtype, rng):
    targets = np.array([0, 2, 1, -1])
    with nn.use_fused(True):
        check_grad_dtype(
            lambda t: nn.softmax_cross_entropy(t, targets, ignore_index=-1),
            rng.normal(size=(4, 5)), dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_fused_layer_norm_fd(dtype, rng):
    gamma = rng.normal(size=(6,)) + 1.0
    beta = rng.normal(size=(6,))
    with nn.use_fused(True):
        check_grad_dtype(
            lambda t: (nn.layer_norm(
                t, Tensor(gamma, dtype=t.data.dtype),
                Tensor(beta, dtype=t.data.dtype)) ** 2.0).sum(),
            rng.normal(size=(3, 6)), dtype)
        x_const = rng.normal(size=(3, 6))
        check_grad_dtype(
            lambda t: (nn.layer_norm(
                Tensor(x_const, dtype=t.data.dtype), t,
                Tensor(beta, dtype=t.data.dtype)) ** 2.0).sum(),
            gamma, dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_fused_linear_fd(dtype, rng):
    w = rng.normal(size=(5, 4))
    b = rng.normal(size=(4,))
    with nn.use_fused(True):
        check_grad_dtype(
            lambda t: (nn.linear(t, Tensor(w, dtype=t.data.dtype),
                                 Tensor(b, dtype=t.data.dtype)) ** 2.0).sum(),
            rng.normal(size=(2, 3, 5)), dtype)
        check_grad_dtype(
            lambda t: (nn.linear(Tensor(np.ones((2, 5)), dtype=t.data.dtype),
                                 t, None) ** 2.0).sum(),
            w, dtype)


@pytest.mark.parametrize("dtype", DTYPES)
def test_fused_info_nce_fd(dtype, rng):
    positive = np.eye(4, 6, dtype=bool)
    candidate = rng.random((4, 6)) > 0.2
    candidate |= positive
    with nn.use_fused(True):
        check_grad_dtype(lambda t: nn.info_nce(t, positive, candidate),
                         rng.normal(size=(4, 6)), dtype)


# -- lazy unbroadcast ----------------------------------------------------------


def test_lazy_unbroadcast_grad_shapes(rng):
    """Broadcast operands still receive reduced, writable gradients."""
    a = Tensor(rng.normal(size=(4,)), requires_grad=True)
    b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    ((a + b) * a).sum().backward()
    assert a.grad.shape == (4,) and b.grad.shape == (3, 4)
    assert a.grad.flags.writeable and b.grad.flags.writeable


def test_lazy_unbroadcast_fd_mixed_shapes(rng):
    other = rng.normal(size=(3, 4))
    check_grad(lambda t: ((t + Tensor(other)) * (t * 2.0)).sum(),
               rng.normal(size=(4,)))
    check_grad(lambda t: ((Tensor(other) - t) / (t ** 2.0 + 2.0)).sum(),
               np.abs(rng.normal(size=(1, 4))) + 1.0)


def test_lazy_unbroadcast_multiple_contributions(rng):
    """Two different broadcast uses of one leaf accumulate correctly."""
    x0 = rng.normal(size=(1, 4))
    other = rng.normal(size=(5, 4))

    def loss(t):
        first = (t * Tensor(other)).sum()        # (5, 4) contribution
        second = (t + 1.0).sum()                 # (1, 4) contribution
        return first + second

    check_grad(loss, x0)


def test_sum_backward_broadcast_view_is_safe(rng):
    """sum() returns a broadcast view; leaves must still get fresh grads."""
    x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    x.sum().backward()
    first = x.grad
    assert first.flags.writeable
    x.sum().backward()                           # accumulate a second pass
    np.testing.assert_allclose(x.grad, 2.0)


# -- dropout passthrough & mask caching ----------------------------------------


def test_dropout_zero_rate_is_identity():
    drop = nn.Dropout(0.0)
    x = Tensor(np.ones((3, 3)))
    assert drop(x) is x


def test_eval_dropout_is_identity_and_draws_nothing():
    drop = nn.Dropout(0.5)
    drop.eval()
    probe = nn.Dropout(0.5)      # same seed: a reference stream
    x = Tensor(np.ones((3, 3)))
    assert drop(x) is x
    assert drop.mask_for((3, 3), np.float64) is None
    # The stream is untouched: the next draw equals a fresh generator's.
    assert drop._rng.random() == probe._rng.random()


def test_dropout_mask_for_matches_forward_stream():
    """mask_for consumes the exact draws forward would have consumed."""
    a, b = nn.Dropout(0.4, seed=9), nn.Dropout(0.4, seed=9)
    a.train(); b.train()
    x = np.ones((5, 7))
    out = a(Tensor(x)).data
    mask = b.mask_for((5, 7), np.float64)
    np.testing.assert_array_equal(out, x * mask)


def test_causal_mask_cached_and_readonly():
    m1, m2 = nn.causal_mask(9), nn.causal_mask(9)
    assert m1 is m2
    assert not m1.flags.writeable
    assert m1[0, 1] and not m1[1, 0]


def test_padding_mask_full_valid_cached():
    valid = np.ones((3, 5), dtype=bool)
    m1, m2 = nn.padding_mask(valid), nn.padding_mask(valid)
    assert m1 is m2 and m1.shape == (3, 1, 1, 5) and not m1.any()
    assert not m1.flags.writeable
    ragged = valid.copy()
    ragged[1, 3:] = False
    m3 = nn.padding_mask(ragged)
    assert m3[1, 0, 0, 3] and not m3[0].any()


# -- fused ops under no_grad ---------------------------------------------------


def test_fused_ops_take_no_grad_fast_path(rng):
    blk = nn.TransformerBlock(8, 2, rng=np.random.default_rng(0))
    blk.eval()
    x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
    with nn.use_fused(True), nn.no_grad():
        out = blk(x)
    assert out._backward is None and out._parents == ()
    assert not out.requires_grad
