"""Dtype semantics of the tensor engine: defaults, casts, stability."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.tensor import Tensor, concat, stack, where


def test_default_dtype_is_float64():
    assert nn.get_default_dtype() == np.float64
    assert Tensor([1, 2, 3]).data.dtype == np.float64


def test_default_dtype_context_scopes_new_tensors():
    with nn.default_dtype(np.float32):
        assert nn.get_default_dtype() == np.float32
        assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert Tensor(5).data.dtype == np.float32
    assert nn.get_default_dtype() == np.float64


def test_default_dtype_context_nests():
    with nn.default_dtype(np.float32):
        with nn.default_dtype(np.float64):
            assert Tensor([1]).data.dtype == np.float64
        assert Tensor([1]).data.dtype == np.float32


def test_set_default_dtype_rejects_non_float():
    with pytest.raises(TypeError):
        nn.set_default_dtype(np.int64)
    with pytest.raises(TypeError):
        with nn.default_dtype(np.int32):
            pass


def test_set_default_dtype_survives_enclosing_context():
    try:
        with nn.default_dtype(np.float64):
            nn.set_default_dtype(np.float32)
            # Context still overrides while active...
            assert nn.get_default_dtype() == np.float64
        # ...but the process-wide base reflects the explicit set afterwards.
        assert nn.get_default_dtype() == np.float32
    finally:
        nn.set_default_dtype(np.float64)


def test_where_stack_concat_scalar_operands_do_not_promote():
    t = Tensor(np.ones((3,), dtype=np.float32), requires_grad=True)
    cond = np.array([True, False, True])
    assert where(cond, t, 0.0).data.dtype == np.float32
    assert where(cond, -1.0, t).data.dtype == np.float32
    assert stack([t, [1.0, 2.0, 3.0]]).data.dtype == np.float32
    assert concat([[1.0], t]).data.dtype == np.float32


def test_float_arrays_keep_their_dtype():
    arr32 = np.ones(3, dtype=np.float32)
    arr64 = np.ones(3, dtype=np.float64)
    assert Tensor(arr32).data.dtype == np.float32
    assert Tensor(arr64).data.dtype == np.float64
    # Non-float payloads adopt the default.
    assert Tensor(np.ones(3, dtype=np.int32)).data.dtype == np.float64


def test_explicit_dtype_overrides():
    arr = np.ones(3, dtype=np.float64)
    assert Tensor(arr, dtype=np.float32).data.dtype == np.float32


def test_parameter_adopts_default_dtype():
    arr64 = np.ones(4)
    assert nn.Parameter(arr64).data.dtype == np.float64
    with nn.default_dtype(np.float32):
        assert nn.Parameter(arr64).data.dtype == np.float32
    assert nn.Parameter(arr64, dtype=np.float32).data.dtype == np.float32


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_scalar_operands_do_not_promote(dtype):
    t = Tensor(np.ones((2, 3), dtype=dtype), requires_grad=True)
    for out in (t + 1.0, 1.0 + t, t * 2.0, 2.0 * t, t - 1.0, 1.0 - t,
                t / 2.0, 2.0 / t, -t, t ** 2.0):
        assert out.data.dtype == dtype, out


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_elementwise_and_reductions_preserve_dtype(dtype):
    t = Tensor(np.full((2, 3), 0.5, dtype=dtype), requires_grad=True)
    for out in (t.exp(), t.log(), t.sqrt(), t.tanh(), t.sigmoid(), t.relu(),
                t.abs(), t.clip(0.0, 1.0), t.sum(), t.mean(axis=1),
                t.max(axis=0), t.reshape(3, 2), t.transpose(),
                t.swapaxes(0, 1), t[0], t.l2_normalize(),
                nn.softmax(t), nn.log_softmax(t), nn.gelu(t)):
        assert out.data.dtype == dtype, out


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_composite_ops_preserve_dtype(dtype):
    rng = np.random.default_rng(0)
    t = Tensor(rng.normal(size=(3, 4)).astype(dtype), requires_grad=True)
    mask = np.array([[True, False, True, False]] * 3)
    assert nn.masked_fill(t, mask).data.dtype == dtype
    assert nn.dropout(t, 0.5, rng, training=True).data.dtype == dtype
    assert nn.cross_entropy(t, np.array([0, 1, 2])).data.dtype == dtype
    pos = np.eye(3, 4, dtype=bool)
    assert nn.info_nce(t, pos).data.dtype == dtype
    assert concat([t, t], axis=0).data.dtype == dtype
    assert stack([t, t]).data.dtype == dtype
    assert where(mask, t, t * 2.0).data.dtype == dtype
    table = nn.Parameter(rng.normal(size=(5, 4)), dtype=dtype)
    assert nn.embedding(table, np.array([0, 2])).data.dtype == dtype


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_backward_grad_matches_leaf_dtype(dtype):
    t = Tensor(np.ones((2, 3), dtype=dtype), requires_grad=True)
    ((t * 3.0) ** 2.0).sum().backward()
    assert t.grad is not None and t.grad.dtype == dtype


def test_backward_casts_mixed_dtype_grads_to_leaf_dtype():
    a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    b = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
    (a * b).sum().backward()
    assert a.grad.dtype == np.float32
    assert b.grad.dtype == np.float64


def test_grad_accumulates_across_backward_calls_dtype_stable():
    t = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
    (t * 2.0).sum().backward()
    (t * 3.0).sum().backward()
    assert t.grad.dtype == np.float32
    np.testing.assert_allclose(t.grad, np.full(4, 5.0, dtype=np.float32))


def test_astype_is_differentiable_and_casts_grad_back():
    t = Tensor(np.ones(3, dtype=np.float64), requires_grad=True)
    out = t.astype(np.float32)
    assert out.data.dtype == np.float32
    (out * 2.0).sum().backward()
    assert t.grad.dtype == np.float64
    np.testing.assert_allclose(t.grad, 2.0)


def test_astype_same_dtype_is_identity():
    t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    assert t.astype(np.float32) is t
    assert t.to(np.float32) is t


def test_module_to_dtype_round_trip():
    layer = nn.Linear(4, 3)
    assert layer.param_dtype == np.float64
    layer.to_dtype(np.float32)
    assert layer.param_dtype == np.float32
    assert all(p.data.dtype == np.float32 for p in layer.parameters())
    out = layer(Tensor(np.ones((2, 4), dtype=np.float32)))
    assert out.data.dtype == np.float32
    layer.to_dtype(np.float64)
    assert layer.param_dtype == np.float64


def test_module_built_under_float32_context():
    with nn.default_dtype(np.float32):
        block = nn.TransformerBlock(8, 2)
    assert all(p.data.dtype == np.float32 for p in block.parameters())
    out = block(Tensor(np.ones((1, 4, 8), dtype=np.float32)))
    assert out.data.dtype == np.float32


def test_float32_module_init_matches_float64_values():
    """Same seed => same parameter values regardless of precision."""
    rng64 = np.random.default_rng(7)
    rng32 = np.random.default_rng(7)
    layer64 = nn.Linear(6, 5, rng=rng64)
    with nn.default_dtype(np.float32):
        layer32 = nn.Linear(6, 5, rng=rng32)
    np.testing.assert_allclose(layer32.weight.data,
                               layer64.weight.data.astype(np.float32))


def test_load_state_dict_casts_to_param_dtype():
    src = nn.Linear(3, 2)
    dst = nn.Linear(3, 2)
    dst.to_dtype(np.float32)
    dst.load_state_dict(src.state_dict())
    assert dst.weight.data.dtype == np.float32
    np.testing.assert_allclose(dst.weight.data,
                               src.weight.data.astype(np.float32))


def test_checkpoint_round_trips_dtype(tmp_path):
    with nn.default_dtype(np.float32):
        layer = nn.Linear(4, 4)
    path = str(tmp_path / "ckpt.npz")
    nn.save_checkpoint(layer, path)
    state = nn.load_checkpoint(path)
    assert all(v.dtype == np.float32 for v in state.values())
    with nn.default_dtype(np.float32):
        reloaded = nn.Linear(4, 4)
    reloaded.load_state_dict(state)
    np.testing.assert_array_equal(reloaded.weight.data, layer.weight.data)


def test_optimizer_state_follows_param_dtype():
    with nn.default_dtype(np.float32):
        layer = nn.Linear(3, 3)
    opt = nn.AdamW(layer.parameters(), lr=1e-2)
    out = (layer(Tensor(np.ones((2, 3), dtype=np.float32))) ** 2.0).sum()
    out.backward()
    opt.step()
    assert all(m.dtype == np.float32 for m in opt._m)
    assert all(v.dtype == np.float32 for v in opt._v)
    assert layer.weight.data.dtype == np.float32


def test_no_grad_fast_path_builds_no_graph():
    t = Tensor(np.ones((3, 3)), requires_grad=True)
    with nn.no_grad():
        out = ((t @ t) + t).relu().sum()
    assert out._backward is None
    assert out._parents == ()
    assert not out.requires_grad


def test_constant_inputs_build_no_graph():
    a = Tensor(np.ones((3, 3)))
    b = Tensor(np.ones((3, 3)))
    out = (a @ b + a * b).sum()
    assert out._backward is None and out._parents == ()


def test_in_place_accumulation_matches_functional_semantics():
    """Shared parents accumulate via += without corrupting shared buffers."""
    x = Tensor(np.arange(4, dtype=np.float64), requires_grad=True)
    y = x + x  # both backward outputs alias the same upstream array
    z = (y * y).sum() + y.sum()
    z.backward()
    expected = 4.0 * np.arange(4) * 2.0 + 2.0  # d/dx [(2x)^2 + 2x]
    np.testing.assert_allclose(x.grad, expected)


def test_user_supplied_seed_grad_is_not_mutated():
    t = Tensor(np.ones(3), requires_grad=True)
    out = t * 2.0
    seed = np.ones(3)
    out.backward(seed)
    out2 = t * 2.0
    out2.backward(seed)
    np.testing.assert_array_equal(seed, np.ones(3))
    np.testing.assert_allclose(t.grad, 4.0)
