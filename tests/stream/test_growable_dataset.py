"""Copy-on-write catalogue growth and snapshot immutability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dataset
from repro.stream import GrowableDataset


@pytest.fixture()
def base():
    return build_dataset("kwai_food", profile="smoke")


def test_from_base_shares_arrays_until_growth(base):
    grown = GrowableDataset.from_base(base)
    assert grown.text_tokens is base.text_tokens     # no copy up front
    assert grown.num_items == base.num_items
    grown.add_item(np.array([5, 6, 7]))
    assert grown.text_tokens is not base.text_tokens
    # The base dataset (shared via the build cache) is never mutated.
    assert base.text_tokens.shape[0] == base.num_items + 1
    assert grown.num_items == base.num_items + 1


def test_add_item_assigns_sequential_ids_and_features(base):
    grown = GrowableDataset.from_base(base)
    image = np.full(base.images.shape[1:], 0.5)
    first = grown.add_item(np.array([3, 4]), image=image, topic=1)
    second = grown.add_item(np.array([9] * 50))       # over-long: truncated
    assert (first, second) == (base.num_items + 1, base.num_items + 2)
    np.testing.assert_array_equal(grown.text_tokens[first, :2], [3, 4])
    np.testing.assert_array_equal(grown.images[first], image)
    assert grown.item_topics[first] == 1
    assert grown.text_tokens[second].shape == (base.text_tokens.shape[1],)
    np.testing.assert_array_equal(grown.images[second], 0.0)  # text-only
    assert grown.item_topics[second] == -1


def test_add_item_rejects_wrong_image_shape(base):
    grown = GrowableDataset.from_base(base)
    with pytest.raises(ValueError, match="image shape"):
        grown.add_item(np.array([1]), image=np.zeros((2, 2, 3)))


def test_add_interaction_existing_new_and_invalid_users(base):
    grown = GrowableDataset.from_base(base)
    users_before = grown.num_users
    old_history = base.sequences[0]
    updated = grown.add_interaction(0, 1)
    np.testing.assert_array_equal(updated[:-1], old_history)
    assert updated[-1] == 1
    # The base dataset's sequence array is untouched (new array per append).
    np.testing.assert_array_equal(base.sequences[0], old_history)
    fresh = grown.add_interaction(-1, 2)
    np.testing.assert_array_equal(fresh, [2])
    assert grown.num_users == users_before + 1
    # user == current count also starts a new user (idempotent contract).
    grown.add_interaction(grown.num_users, 3)
    assert grown.num_users == users_before + 2
    with pytest.raises(ValueError, match="user id"):
        grown.add_interaction(10_000, 1)
    with pytest.raises(ValueError, match="item id"):
        grown.add_interaction(0, grown.num_items + 1)


def test_snapshot_is_isolated_from_further_growth(base):
    grown = GrowableDataset.from_base(base)
    grown.add_item(np.array([2, 3]), topic=0)
    snap = grown.snapshot()
    items_at_snap = snap.num_items
    users_at_snap = snap.num_users
    seq0_at_snap = snap.sequences[0]
    grown.add_item(np.array([4]))
    grown.add_interaction(0, 1)
    grown.add_interaction(-1, 2)
    assert snap.num_items == items_at_snap
    assert snap.num_users == users_at_snap
    assert snap.text_tokens.shape[0] == items_at_snap + 1
    np.testing.assert_array_equal(snap.sequences[0], seq0_at_snap)
    # And the growable view moved on.
    assert grown.num_items == items_at_snap + 1
    assert grown.num_users == users_at_snap + 1


def test_new_item_ids_window(base):
    grown = GrowableDataset.from_base(base)
    assert grown.new_item_ids(base.num_items).size == 0
    a = grown.add_item(np.array([1]))
    b = grown.add_item(np.array([2]))
    np.testing.assert_array_equal(grown.new_item_ids(base.num_items), [a, b])
    np.testing.assert_array_equal(grown.new_item_ids(a), [b])
