"""Concurrency stress: hot swaps under live traffic drop or mix nothing.

Extends the MicroBatcher stress patterns (tests/serve/test_batcher_stress)
to the full service across a *model generation* swap: many client
threads hammer ``service.recommend`` while the fine-tune worker
publishes new generations. Every response must be exactly the answer of
one complete generation — the old one or a new one, identified by its
``index_version`` — never a mixture (new model scored against a stale
index, or vice versa), and the request/response accounting must balance
to zero drops even though batchers are being retired mid-flight.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve import ModelRegistry
from repro.serve.pool import PooledRecommendationService
from repro.stream import StreamConfig, StreamManager, parse_events

from .conftest import make_service

THREADS = 6
REQUESTS_PER_THREAD = 40
K = 5

#: The pooled variant's client count (ISSUE 9 acceptance: 8-thread churn
#: across a generation fence).
POOL_THREADS = 8


@pytest.fixture()
def stressed():
    service = make_service()
    manager = StreamManager(service,
                            StreamConfig(batch_size=4, steps_per_swap=2,
                                         seed=0),
                            start=False)
    service.attach_stream(manager)
    yield service, manager.worker("kwai_food", "pmmrec-text")
    service.close()


def _expected_by_version(scenario, histories) -> dict:
    """Map (history bytes, version) -> expected items for one generation."""
    version = scenario.recommender.index_version
    out = {}
    for history in histories:
        answer = scenario.recommender.recommend(history, k=K)
        assert answer.index_version == version
        out[(history.tobytes(), version)] = answer.items
    return out


def _hammer(service, pool, count, seed, responses, errors):
    rng = np.random.default_rng(seed)
    try:
        for pick in rng.integers(0, len(pool), size=count):
            history = pool[pick]
            payload = service.recommend("kwai_food", "pmmrec-text",
                                        [int(i) for i in history], k=K)
            responses.append((history.tobytes(), payload))
    except Exception as exc:  # noqa: BLE001 - surfaced in the main thread
        errors.append(exc)


def test_swap_under_load_serves_whole_generations_only(stressed):
    service, worker = stressed
    scenario = service.registry.get("kwai_food", "pmmrec-text")
    dataset = scenario.dataset
    pool = [np.asarray(ex.history) for ex in dataset.split.test[:10]]

    # Generation A (pre-swap) expectations, computed up front.
    expected = _expected_by_version(scenario, pool)
    version_a = scenario.recommender.index_version

    # Stage the weight update before the traffic starts so the swap
    # itself is the only thing that happens mid-flight.
    events = [{"user": int(u), "item": int(dataset.sequences[u][j])}
              for u in range(8)
              for j in (0, len(dataset.sequences[u]) // 2)]
    worker.ingest(parse_events(events))
    worker.run_steps(2)

    responses: list = []
    errors: list = []
    submitted = [0] * THREADS
    swapped = threading.Event()
    reports = []

    def swapper():
        # Let some generation-A traffic through, then swap mid-stream.
        while len(responses) < THREADS * 2 and not swapped.is_set():
            time.sleep(0.0005)
        reports.append(worker.swap())
        swapped.set()

    def client(thread_id: int) -> None:
        # Serve until the swap lands, then a post-swap tail, so traffic
        # provably straddles the generation boundary.
        thread_rng = np.random.default_rng(7000 + thread_id)
        tail = REQUESTS_PER_THREAD
        try:
            while True:
                if swapped.is_set():
                    if tail == 0:
                        return
                    tail -= 1
                history = pool[thread_rng.integers(0, len(pool))]
                submitted[thread_id] += 1
                payload = service.recommend(
                    "kwai_food", "pmmrec-text",
                    [int(i) for i in history], k=K)
                responses.append((history.tobytes(), payload))
        except Exception as exc:  # noqa: BLE001 - checked in main thread
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(THREADS)]
    swap_thread = threading.Thread(target=swapper)
    for thread in threads:
        thread.start()
    swap_thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "stress client wedged"
    swap_thread.join(timeout=120)
    assert not swap_thread.is_alive(), "swapper wedged"

    assert errors == []
    # Zero drops: every submitted request produced exactly one response.
    assert len(responses) == sum(submitted)
    assert reports and reports[0].kind == "full"
    version_b = reports[0].version
    assert version_b == version_a + 1

    # Generation B expectations from the published scenario (no further
    # steps ran, so it is exactly what the swap produced).
    expected.update(_expected_by_version(
        service.registry.get("kwai_food", "pmmrec-text"), pool))

    served_versions = set()
    for history_key, payload in responses:
        version = payload["index_version"]
        served_versions.add(version)
        # Whole-generation consistency: the answer must be bitwise the
        # answer *that* version's model+index gives — a response pairing
        # the new model with the old index (or any other mixture) would
        # match neither.
        assert version in (version_a, version_b), \
            f"response claims unknown generation v{version}"
        expected_items = expected[(history_key, version)]
        assert payload["items"] == [int(i) for i in expected_items], \
            f"mixed-generation answer at v{version}"
    # The swap landed mid-traffic: at least the new generation served
    # (old-generation responses depend on timing and may be few).
    assert version_b in served_versions


@pytest.fixture()
def pool_stressed():
    """Worker-pool service + synchronous stream worker.

    The pool MUST fork before any other threads exist in the service
    (fork snapshots the parent mid-thread otherwise), so the service is
    built first and the stream manager attached after — same order the
    CLI uses.
    """
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:pmmrec-text", seed=0)
    service = PooledRecommendationService(registry, workers=2,
                                          max_wait_ms=1.0)
    manager = StreamManager(service,
                            StreamConfig(batch_size=4, steps_per_swap=2,
                                         seed=0),
                            start=False)
    service.attach_stream(manager)
    yield service, manager.worker("kwai_food", "pmmrec-text")
    service.close()


def test_pooled_swap_under_load_zero_drops_whole_generations(pool_stressed):
    """8-thread churn across a generation-fenced pooled hot swap.

    Same contract as the in-process stress above, but the swap now
    crosses a process boundary: the stream worker publishes shared
    segments, every pool worker acks the flip, and old segments unlink
    after the drain. Every response must still be bitwise the answer of
    one complete generation, with zero drops.
    """
    service, worker = pool_stressed
    scenario = service.registry.get("kwai_food", "pmmrec-text")
    dataset = scenario.dataset
    pool = [np.asarray(ex.history) for ex in dataset.split.test[:10]]

    expected = _expected_by_version(scenario, pool)
    version_a = scenario.recommender.index_version

    events = [{"user": int(u), "item": int(dataset.sequences[u][j])}
              for u in range(8)
              for j in (0, len(dataset.sequences[u]) // 2)]
    worker.ingest(parse_events(events))
    worker.run_steps(2)

    responses: list = []
    errors: list = []
    submitted = [0] * POOL_THREADS
    swapped = threading.Event()
    reports = []

    def swapper():
        while len(responses) < POOL_THREADS * 2 and not swapped.is_set():
            time.sleep(0.0005)
        reports.append(worker.swap())
        swapped.set()

    def client(thread_id: int) -> None:
        thread_rng = np.random.default_rng(5000 + thread_id)
        tail = 25
        try:
            while True:
                if swapped.is_set():
                    if tail == 0:
                        return
                    tail -= 1
                history = pool[thread_rng.integers(0, len(pool))]
                submitted[thread_id] += 1
                payload = service.recommend(
                    "kwai_food", "pmmrec-text",
                    [int(i) for i in history], k=K)
                responses.append((history.tobytes(), payload))
        except Exception as exc:  # noqa: BLE001 - checked in main thread
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(POOL_THREADS)]
    swap_thread = threading.Thread(target=swapper)
    for thread in threads:
        thread.start()
    swap_thread.start()
    for thread in threads:
        thread.join(timeout=180)
        assert not thread.is_alive(), "stress client wedged"
    swap_thread.join(timeout=180)
    assert not swap_thread.is_alive(), "swapper wedged"

    assert errors == []
    assert len(responses) == sum(submitted)      # zero drops
    assert reports and reports[0].kind == "full"
    version_b = reports[0].version
    assert version_b == version_a + 1
    # The fence actually ran: every worker acked the new generation.
    fence = reports[0].fence
    assert fence is not None and fence["workers"] == 2
    assert fence["acked"] == 2 and fence["errors"] == []

    expected.update(_expected_by_version(
        service.registry.get("kwai_food", "pmmrec-text"), pool))

    served_versions = set()
    for history_key, payload in responses:
        version = payload["index_version"]
        served_versions.add(version)
        assert version in (version_a, version_b), \
            f"response claims unknown generation v{version}"
        expected_items = expected[(history_key, version)]
        assert payload["items"] == [int(i) for i in expected_items], \
            f"mixed-generation answer at v{version}"
    assert version_b in served_versions
    # Both generations' answers came from pool workers; all still alive.
    assert service.pool.alive() == 2


def test_traffic_across_many_catalog_swaps_never_drops(stressed):
    """Repeated cold-item (partial) swaps under load: drops stay zero."""
    service, worker = stressed
    dataset = service.registry.get("kwai_food", "pmmrec-text").dataset
    pool = [np.asarray(ex.history) for ex in dataset.split.test[:8]]
    responses: list = []
    errors: list = []
    stop = threading.Event()

    def churner():
        while not stop.is_set():
            worker.ingest(parse_events(
                [{"item": {"text_tokens": [3, 4, 5], "topic": 0}}]))
            worker.swap()

    threads = [threading.Thread(
        target=_hammer,
        args=(service, pool, 25, 9000 + seed, responses, errors))
        for seed in range(4)]
    churn = threading.Thread(target=churner)
    churn.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "stress client wedged"
    stop.set()
    churn.join(timeout=60)
    assert not churn.is_alive(), "churner wedged"

    assert errors == []
    assert len(responses) == 4 * 25
    final_version = service.registry.get(
        "kwai_food", "pmmrec-text").recommender.index_version
    stats = worker.stats_json()
    assert stats["swaps"] >= 1
    for _, payload in responses:
        # No response claims a version that never existed, and items are
        # always a valid non-empty top-k.
        assert 1 <= payload["index_version"] <= final_version
        assert 0 < len(payload["items"]) <= K
