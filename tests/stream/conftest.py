"""Fixtures for the streaming-subsystem tests (smoke-scale).

Workers are created with ``start=False``: tests drive fine-tune rounds
and swaps synchronously (``run_steps`` / ``swap``) so assertions about
versions and generations are deterministic. The background thread and
its triggers are exercised by the stress test and ``bench_stream``.
"""

from __future__ import annotations

import pytest

from repro.serve import ModelRegistry, RecommendationService
from repro.stream import StreamConfig, StreamManager


def make_service(spec: str = "kwai_food:pmmrec-text",
                 **registry_kwargs) -> RecommendationService:
    registry = ModelRegistry(profile="smoke", dtype="float32",
                             **registry_kwargs)
    registry.add(spec, seed=0)
    return RecommendationService(registry)


@pytest.fixture()
def service():
    svc = make_service()
    yield svc
    svc.close()


@pytest.fixture()
def manager(service):
    mgr = StreamManager(service,
                        StreamConfig(batch_size=4, steps_per_swap=2,
                                     min_events_per_round=4, seed=0),
                        start=False)
    service.attach_stream(mgr)
    return mgr


@pytest.fixture()
def worker(manager):
    return manager.worker("kwai_food", "pmmrec-text")
