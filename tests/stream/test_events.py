"""Event schema parsing, the append-only log and the replay buffer."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.stream import (ColdItemEvent, EventLog, InteractionEvent,
                          ReplayBuffer, parse_event, parse_events)


def test_parse_interaction_event():
    event = parse_event({"user": 3, "item": 17})
    assert event == InteractionEvent(user=3, item=17)
    assert event.to_json() == {"user": 3, "item": 17}


def test_parse_cold_item_event_with_and_without_user():
    bare = parse_event({"item": {"text_tokens": [4, 5], "topic": 2}})
    assert isinstance(bare, ColdItemEvent)
    assert bare.user is None and bare.topic == 2
    np.testing.assert_array_equal(bare.text_tokens, [4, 5])
    clicked = parse_event({"user": 7,
                           "item": {"text_tokens": [1],
                                    "image": np.zeros((2, 2, 3)).tolist()}})
    assert clicked.user == 7 and clicked.image.shape == (2, 2, 3)
    assert clicked.topic == -1


@pytest.mark.parametrize("payload,match", [
    ({"user": 1}, "needs an 'item'"),
    ({"item": 4}, "needs a 'user'"),
    ({"item": {"topic": 1}}, "text_tokens"),
    ({"item": {"text_tokens": []}}, "text_tokens"),
    ("not-a-dict", "JSON object"),
])
def test_parse_rejects_malformed(payload, match):
    with pytest.raises(ValueError, match=match):
        parse_event(payload)


def test_parse_events_reports_position():
    with pytest.raises(ValueError, match=r"event\[1\]"):
        parse_events([{"user": 0, "item": 1}, {"user": 0}])


def test_event_log_counts_and_tail(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog(tail_size=3, path=path)
    for item in range(5):
        seqno = log.append(InteractionEvent(user=0, item=item + 1))
        assert seqno == item
    assert log.total == 5
    tail = log.tail(10)
    assert [r.seqno for r in tail] == [2, 3, 4]     # bounded memory
    log.close()
    lines = [json.loads(line) for line in open(path)]
    assert len(lines) == 5                            # durable sink has all
    assert lines[0] == {"seqno": 0, "user": 0, "item": 1}


def test_replay_buffer_bounds_and_sampling(rng):
    buffer = ReplayBuffer(capacity=4)
    assert buffer.sample(rng, 8) == []
    for item in range(6):
        buffer.push(np.array([item, item + 1]))
    assert len(buffer) == 4 and buffer.pushed == 6
    sample = buffer.sample(rng, 16)
    assert len(sample) == 16                          # with replacement
    # FIFO eviction: the two oldest entries are gone.
    firsts = {int(h[0]) for h in sample}
    assert firsts <= {2, 3, 4, 5}


def test_replay_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        ReplayBuffer(capacity=0)
