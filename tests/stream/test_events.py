"""Event schema parsing, the append-only log and the replay buffer."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.stream import (ColdItemEvent, EventLog, InteractionEvent,
                          ReplayBuffer, parse_event, parse_events,
                          replay_events)


def test_parse_interaction_event():
    event = parse_event({"user": 3, "item": 17})
    assert event == InteractionEvent(user=3, item=17)
    assert event.to_json() == {"user": 3, "item": 17}


def test_parse_cold_item_event_with_and_without_user():
    bare = parse_event({"item": {"text_tokens": [4, 5], "topic": 2}})
    assert isinstance(bare, ColdItemEvent)
    assert bare.user is None and bare.topic == 2
    np.testing.assert_array_equal(bare.text_tokens, [4, 5])
    clicked = parse_event({"user": 7,
                           "item": {"text_tokens": [1],
                                    "image": np.zeros((2, 2, 3)).tolist()}})
    assert clicked.user == 7 and clicked.image.shape == (2, 2, 3)
    assert clicked.topic == -1


@pytest.mark.parametrize("payload,match", [
    ({"user": 1}, "needs an 'item'"),
    ({"item": 4}, "needs a 'user'"),
    ({"item": {"topic": 1}}, "text_tokens"),
    ({"item": {"text_tokens": []}}, "text_tokens"),
    ("not-a-dict", "JSON object"),
])
def test_parse_rejects_malformed(payload, match):
    with pytest.raises(ValueError, match=match):
        parse_event(payload)


def test_parse_events_reports_position():
    with pytest.raises(ValueError, match=r"event\[1\]"):
        parse_events([{"user": 0, "item": 1}, {"user": 0}])


def test_event_log_counts_and_tail(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog(tail_size=3, path=path)
    for item in range(5):
        seqno = log.append(InteractionEvent(user=0, item=item + 1))
        assert seqno == item
    assert log.total == 5
    tail = log.tail(10)
    assert [r.seqno for r in tail] == [2, 3, 4]     # bounded memory
    log.close()
    lines = [json.loads(line) for line in open(path)]
    assert len(lines) == 5                            # durable sink has all
    assert lines[0] == {"seqno": 0, "user": 0, "item": 1}


def test_replay_buffer_bounds_and_sampling(rng):
    buffer = ReplayBuffer(capacity=4)
    assert buffer.sample(rng, 8) == []
    for item in range(6):
        buffer.push(np.array([item, item + 1]))
    assert len(buffer) == 4 and buffer.pushed == 6
    sample = buffer.sample(rng, 16)
    assert len(sample) == 16                          # with replacement
    # FIFO eviction: the two oldest entries are gone.
    firsts = {int(h[0]) for h in sample}
    assert firsts <= {2, 3, 4, 5}


def test_replay_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        ReplayBuffer(capacity=0)
    with pytest.raises(ValueError):
        ReplayBuffer(bias=-0.1)
    with pytest.raises(ValueError):
        ReplayBuffer().push(np.array([1, 2]), weight=0.0)


@pytest.mark.parametrize("dtype", ["float32", "float64"])
@pytest.mark.parametrize("event", [
    ColdItemEvent(text_tokens=np.array([4, 5, 6])),                # text-only
    ColdItemEvent(text_tokens=np.array([9]), topic=3, user=11),    # topic
    ColdItemEvent(text_tokens=np.array([1, 2]),
                  image=np.linspace(0.0, 1.0, 12).reshape(2, 2, 3)),
])
def test_cold_item_json_round_trip(event, dtype):
    # The wire format must reproduce the event exactly — including the
    # image dtype, which tolist() erases (every JSON number is float64).
    if event.image is not None:
        event = ColdItemEvent(text_tokens=event.text_tokens,
                              image=event.image.astype(dtype),
                              topic=event.topic, user=event.user)
    back = parse_event(json.loads(json.dumps(event.to_json())))
    np.testing.assert_array_equal(back.text_tokens, event.text_tokens)
    assert back.text_tokens.dtype == np.int64
    assert back.topic == event.topic and back.user == event.user
    if event.image is None:
        assert back.image is None
    else:
        assert back.image.dtype == event.image.dtype
        np.testing.assert_array_equal(back.image, event.image)


def test_parse_rejects_bad_image_dtype():
    payload = {"item": {"text_tokens": [1],
                        "image": np.zeros((1, 1, 3)).tolist(),
                        "image_dtype": "int32"}}
    with pytest.raises(ValueError, match="float"):
        parse_event(payload)


def test_event_log_sink_replays_every_seqno(tmp_path):
    path = str(tmp_path / "commit.jsonl")
    events = [InteractionEvent(user=0, item=1),
              ColdItemEvent(text_tokens=np.array([7, 8]), topic=1,
                            image=np.full((2, 2, 3), 0.5,
                                          dtype=np.float32), user=2),
              InteractionEvent(user=-1, item=3)]
    with EventLog(tail_size=1, path=path) as log:
        log.extend(events[:2])
        log.append(events[2])
    # close() flushed and closed the sink: reopening the file replays
    # the full commit log, not just what the OS happened to write.
    records = replay_events(path)
    assert [seqno for seqno, _ in records] == [0, 1, 2]
    assert records[0][1] == events[0]
    recovered = records[1][1]
    assert isinstance(recovered, ColdItemEvent)
    np.testing.assert_array_equal(recovered.text_tokens,
                                  events[1].text_tokens)
    assert recovered.image.dtype == np.float32
    np.testing.assert_array_equal(recovered.image, events[1].image)
    assert records[2][1] == events[2]
    log.close()                                       # idempotent


def test_replay_buffer_uniform_path_is_bitwise_stable():
    # bias=0 (and bias>0 with all-equal weights) must reproduce the
    # original uniform sampler draw-for-draw: recorded benchmarks and
    # seeded tests depend on the exact rng.integers consumption.
    histories = [np.array([i, i + 1]) for i in range(6)]
    for bias in (0.0, 1.5):
        buffer = ReplayBuffer(capacity=8, bias=bias)
        for history in histories:
            buffer.push(history)
        picks = np.random.default_rng(3).integers(0, 6, size=12)
        expected = [histories[i] for i in picks]
        got = buffer.sample(np.random.default_rng(3), 12)
        assert all(g is e for g, e in zip(got, expected))


def test_replay_buffer_bias_oversamples_heavy_entries(rng):
    buffer = ReplayBuffer(capacity=8, bias=2.0)
    light = np.array([1, 2])
    heavy = np.array([3, 4])
    for _ in range(4):
        buffer.push(light, weight=1.0)
    for _ in range(4):
        buffer.push(heavy, weight=4.0)
    sample = buffer.sample(rng, 4096)
    heavy_frac = sum(h is heavy for h in sample) / len(sample)
    # weight^bias = 16:1 per entry -> ~94% heavy; uniform would be 50%.
    assert heavy_frac > 0.85


def test_replay_buffer_bias_zero_ignores_weights(rng):
    buffer = ReplayBuffer(capacity=8, bias=0.0)
    light = np.array([1, 2])
    heavy = np.array([3, 4])
    buffer.push(light, weight=1.0)
    buffer.push(heavy, weight=1000.0)
    sample = buffer.sample(rng, 4096)
    heavy_frac = sum(h is heavy for h in sample) / len(sample)
    assert 0.45 < heavy_frac < 0.55
