"""FineTuneWorker: ingest validation, incremental steps, hot-swap semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.serialization import checkpoint_meta
from repro.serve.registry import Scenario
from repro.stream import StreamConfig, StreamManager, parse_events

from .conftest import make_service


def _ingest(worker, payloads):
    return worker.ingest(parse_events(payloads))


def _interactions(dataset, count, rng):
    events = []
    for _ in range(count):
        user = int(rng.integers(0, dataset.num_users))
        seq = dataset.sequences[user]
        events.append({"user": user,
                       "item": int(seq[rng.integers(0, len(seq))])})
    return events


def test_ingest_receipt_and_counters(worker, rng):
    dataset = worker.data
    events = _interactions(dataset, 6, rng)
    events.append({"item": {"text_tokens": [5, 6], "topic": 0}})
    receipt = _ingest(worker, events)
    assert receipt["accepted"] == 7
    assert receipt["interactions"] == 6 and receipt["cold_items"] == 1
    assert receipt["cold_item_ids"] == [dataset.num_items]
    assert receipt["events_total"] == 7
    stats = worker.stats_json()
    assert stats["events_total"] == 7
    assert stats["cold_items"] == 1
    assert stats["catalogue_items"] == stats["published_items"] + 1


def test_ingest_batch_is_atomic_on_invalid_event(worker):
    items_before = worker.data.num_items
    users_before = worker.data.num_users
    bad = [{"item": {"text_tokens": [1, 2]}},          # valid cold item
           {"user": 0, "item": 10_000}]                 # out of range
    with pytest.raises(ValueError, match=r"event\[1\].*item id"):
        _ingest(worker, bad)
    # Nothing from the batch was applied — not even the valid cold item.
    assert worker.data.num_items == items_before
    assert worker.data.num_users == users_before
    assert worker.log.total == 0


def test_ingest_rejects_malformed_cold_payload_up_front(worker):
    """Bad modality payloads fail at ingest, not later in the worker.

    Both are rejected before anything applies — a deferred crash inside
    the fine-tune thread or the swap encode would be far from the
    offending request (and would break batch atomicity).
    """
    items_before = worker.data.num_items
    with pytest.raises(ValueError, match=r"event\[1\].*token ids"):
        _ingest(worker, [{"user": 0, "item": 1},
                         {"item": {"text_tokens": [10_000_000]}}])
    with pytest.raises(ValueError, match=r"event\[0\].*image shape"):
        _ingest(worker, [{"item": {"text_tokens": [3],
                                   "image": [[[0.0] * 3] * 2] * 2}}])
    assert worker.data.num_items == items_before
    assert worker.log.total == 0


def test_background_thread_survives_round_errors(rng):
    """A failing round is recorded on /stats, never a silent dead thread."""
    from repro.stream import FineTuneWorker, StreamConfig
    service = make_service()
    try:
        worker = FineTuneWorker(
            service, ("kwai_food", "pmmrec-text"),
            StreamConfig(min_events_per_round=2, round_timeout_s=0.05,
                         seed=0),
            start=True)
        boom = RuntimeError("poisoned batch")

        def exploding_round():
            raise boom

        worker._round = exploding_round
        worker.ingest(parse_events(_interactions(worker.data, 4, rng)))
        import time
        deadline = time.monotonic() + 10
        while worker.stats_json()["round_errors"] < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        stats = worker.stats_json()
        assert stats["round_errors"] >= 1
        assert "poisoned batch" in stats["last_error"]
        assert worker._thread.is_alive()    # the learner did not die
        # And it recovers: un-poison, ingest again, a real round runs.
        del worker._round                    # restore the class method
        worker.ingest(parse_events(_interactions(worker.data, 4, rng)))
        deadline = time.monotonic() + 10
        while worker.stats_json()["steps"] < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        assert worker.stats_json()["steps"] >= 1
        worker.close()
    finally:
        service.close()


def test_interaction_may_reference_cold_item_from_same_batch(worker):
    new_id = worker.data.num_items + 1
    receipt = _ingest(worker, [
        {"item": {"text_tokens": [3, 4], "topic": 0}},
        {"user": 0, "item": new_id},
        {"user": 0, "item": new_id},
    ])
    assert receipt["cold_item_ids"] == [new_id]
    np.testing.assert_array_equal(worker.data.sequences[0][-2:],
                                  [new_id, new_id])


def test_cold_items_rejected_for_id_based_models(rng):
    service = make_service("kwai_food:sasrec")
    try:
        manager = StreamManager(service, StreamConfig(seed=0), start=False)
        worker = manager.worker("kwai_food", "sasrec")
        assert not worker.supports_cold_items
        # Interactions stream fine...
        receipt = _ingest(worker, _interactions(worker.data, 4, rng))
        assert receipt["accepted"] == 4
        # ...but cold items cannot exist without modality encoders.
        with pytest.raises(ValueError, match="ID-based"):
            _ingest(worker, [{"item": {"text_tokens": [1]}}])
    finally:
        service.close()


def test_unstreamable_models_are_reported_not_fatal():
    service = make_service("kwai_food:pop")
    try:
        manager = StreamManager(service, StreamConfig(seed=0), start=False)
        assert len(manager) == 0
        stats = manager.stats()
        assert "kwai_food:pop" in stats["unstreamable"]
        with pytest.raises(ValueError, match="cannot stream"):
            manager.ingest("kwai_food", "pop", [{"user": 0, "item": 1}])
    finally:
        service.close()


def test_run_steps_trains_the_shadow_not_serving(worker, rng):
    service = worker.service
    serving_model = service.registry.get(*worker.key).model
    before = {k: v.copy() for k, v in serving_model.state_dict().items()}
    _ingest(worker, _interactions(worker.data, 8, rng))
    done = worker.run_steps(2)
    assert done == 2
    stats = worker.stats_json()
    assert stats["steps"] == 2 and np.isfinite(stats["last_loss"])
    # Serving weights untouched until the swap publishes.
    for name, value in serving_model.state_dict().items():
        np.testing.assert_array_equal(value, before[name])
    shadow_state = worker.shadow.state_dict()
    assert any(not np.array_equal(shadow_state[n], before[n])
               for n in before)


def test_full_swap_publishes_new_generation(tmp_path, rng):
    service = make_service()
    try:
        manager = StreamManager(
            service, StreamConfig(batch_size=4, steps_per_swap=2, seed=0,
                                  checkpoint_dir=str(tmp_path)),
            start=False)
        service.attach_stream(manager)
        worker = manager.worker("kwai_food", "pmmrec-text")
        old = service.registry.get(*worker.key)
        version_before = old.recommender.index_version
        receipt = _ingest(worker, _interactions(worker.data, 8, rng) + [
            {"user": 0, "item": {"text_tokens": [7, 8], "topic": 0}}])
        cold_id = receipt["cold_item_ids"][0]
        worker.run_steps(2)
        report = worker.swap()
        assert report.kind == "full"
        assert report.version == version_before + 1
        assert report.steps == 2 and report.new_items == 1
        assert report.reencoded_items == worker.data.num_items
        new = service.registry.get(*worker.key)
        assert new is not old and new.model is not old.model
        assert new.dataset.num_items == old.dataset.num_items + 1
        assert new.recommender.index_version == version_before + 1
        # Published weights == shadow weights (bitwise).
        for name, value in worker.shadow.state_dict().items():
            np.testing.assert_array_equal(new.model.state_dict()[name],
                                          value)
        # The old generation object is fully intact (in-flight safety).
        assert old.dataset.num_items + 1 == new.dataset.num_items
        assert old.recommender.index_version == version_before
        # The cold item is servable on the new generation only.
        answer = new.recommender.recommend([cold_id], k=5)
        assert answer.index_version == version_before + 1
        with pytest.raises(ValueError):
            old.recommender.recommend([cold_id], k=5)
        # Versioned checkpoint with streaming metadata.
        assert report.checkpoint is not None
        meta = checkpoint_meta(report.checkpoint)
        assert meta["swap_version"] == 1
        assert meta["fine_tune_steps"] == 2
        assert meta["scenario"] == "kwai_food:pmmrec-text"
    finally:
        service.close()


def test_catalog_swap_reencodes_only_new_rows(worker):
    service = worker.service
    old = service.registry.get(*worker.key)
    old_matrix, old_version = old.recommender.index.snapshot()
    receipt = _ingest(worker, [
        {"item": {"text_tokens": [5, 6, 7], "topic": 0}}])
    cold_id = receipt["cold_item_ids"][0]
    report = worker.swap()
    assert report.kind == "catalog"
    assert report.steps == 0
    assert report.reencoded_items == 1
    new = service.registry.get(*worker.key)
    # Same weights → the serving model object is shared, not copied.
    assert new.model is old.model
    matrix, version = new.recommender.index.snapshot()
    assert version == old_version + 1
    assert matrix.shape[0] == old_matrix.shape[0] + 1
    # Old rows are reused bitwise; only the new row was encoded.
    np.testing.assert_array_equal(matrix[:old_matrix.shape[0]], old_matrix)
    expected = old.model.encode_item_rows(new.dataset,
                                          np.array([cold_id]))
    np.testing.assert_allclose(matrix[cold_id],
                               expected[0].astype(matrix.dtype))


def test_swap_with_nothing_to_publish_is_skipped(worker):
    report = worker.swap()
    assert report.kind == "skipped"
    assert worker.stats_json()["swaps"] == 0


def test_swap_invalidates_request_cache_through_new_batcher(worker, rng):
    service = worker.service
    dataset = service.registry.get(*worker.key).dataset
    history = [int(i) for i in dataset.split.test[0].history]
    first = service.recommend("kwai_food", "pmmrec-text", history, k=5)
    assert service.recommend("kwai_food", "pmmrec-text", history,
                             k=5)["cached"] is True
    _ingest(worker, _interactions(worker.data, 8, rng))
    worker.run_steps(2)
    report = worker.swap()
    fresh = service.recommend("kwai_food", "pmmrec-text", history, k=5)
    # The swap retired the old batcher (and its LRU): the same request is
    # re-scored against the new generation, never served stale.
    assert fresh["cached"] is False
    assert fresh["index_version"] == report.version \
        == first["index_version"] + 1
    assert service.recommend("kwai_food", "pmmrec-text", history,
                             k=5)["cached"] is True


def test_registry_publish_requires_loaded_scenario(service):
    scenario = service.registry.get("kwai_food", "pmmrec-text")
    ghost = Scenario(spec=type(scenario.spec)(dataset="hm", model="sasrec"),
                     dataset=scenario.dataset, model=scenario.model,
                     recommender=scenario.recommender)
    with pytest.raises(KeyError, match="cannot publish"):
        service.registry.publish(ghost)


def test_ingest_after_close_refuses(worker):
    worker.close()
    with pytest.raises(RuntimeError, match="closed"):
        _ingest(worker, [{"user": 0, "item": 1}])
