"""The eval gate: held-out slices, rejection semantics, shadow scoring.

The gate is the safety layer of the continual-learning loop (ISSUE 6):
every full hot swap is scored on a held-out eval slice before it can
reach serving. These tests pin the gate's plumbing deterministically
(forced-rejection tolerances, frozen/reservoir holdout accounting,
rollback on failed rounds, torn-read-free stats) and then exercise the
real thing: a poisoned event burst that measurably corrupts a fine-tune
round is rejected under concurrent traffic without perturbing a single
served rank, and the next clean round publishes.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.stream import (StreamConfig, StreamManager, parse_events,
                          poisoned_events, synthetic_interactions)

from .conftest import make_service


def _interactions(dataset, count, rng):
    events = []
    for _ in range(count):
        user = int(rng.integers(0, dataset.num_users))
        seq = dataset.sequences[user]
        events.append({"user": user,
                       "item": int(seq[rng.integers(0, len(seq))])})
    return events


def _worker(config: StreamConfig, spec: str = "kwai_food:pmmrec-text"):
    """A (service, worker) pair with a synchronous (start=False) manager."""
    service = make_service(spec)
    manager = StreamManager(service, config, start=False)
    service.attach_stream(manager)
    return service, manager.worker(*spec.split(":"))


# -- gate verdict plumbing ---------------------------------------------------


def test_gated_swap_accepts_benign_round(rng):
    service, worker = _worker(StreamConfig(batch_size=4, steps_per_swap=2,
                                           seed=0))
    try:
        assert worker.stats_json()["eval_users"] > 0
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        report = worker.swap()
        assert report.kind == "full"
        assert report.gate is not None
        assert report.gate["accepted"] is True
        assert report.gate["reason"] == "ok"
        assert report.gate["examples"] == worker.stats_json()["eval_examples"]
        for side in ("candidate", "baseline", "deltas"):
            assert set(report.gate[side]) == {"hr@10", "ndcg@10"}
        # The verdict is JSON-clean (rank arrays stay internal).
        json.dumps(report.to_json())
        stats = worker.stats_json()
        assert stats["gate_evals"] == 1
        assert stats["swaps"] == 1 and stats["swaps_rejected"] == 0
    finally:
        service.close()


def test_gate_rejection_keeps_serving_generation(rng):
    # tolerance < 0 demands an impossible improvement, forcing the
    # rejection path deterministically (the *measured* rejection of a
    # genuinely corrupted round is the poisoned-batch stress test below).
    service, worker = _worker(StreamConfig(batch_size=4, steps_per_swap=2,
                                           gate_tolerance=-1.0, seed=0))
    try:
        old = service.registry.get(*worker.key)
        version_before = old.recommender.index_version
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        report = worker.swap()
        assert report.kind == "rejected"
        assert report.gate["accepted"] is False
        assert report.gate["reason"].startswith("metric_drop:")
        assert report.version == version_before
        # Serving untouched: same scenario object, same model, and the
        # shadow was reset to the serving weights (gate_reset_on_reject).
        assert service.registry.get(*worker.key) is old
        serving_state = old.model.state_dict()
        for name, value in worker.shadow.state_dict().items():
            np.testing.assert_array_equal(value, serving_state[name])
        stats = worker.stats_json()
        assert stats["swaps"] == 0
        assert stats["swaps_rejected"] == 1
        assert stats["steps_since_swap"] == 0          # discarded
        rejection = stats["last_rejection"]
        assert rejection["steps_discarded"] == 2
        assert rejection["shadow_reset"] is True
        assert rejection["reason"].startswith("metric_drop:")
        # Loosen the gate: the next round publishes normally.
        worker.config.gate_tolerance = 1.0
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        accepted = worker.swap()
        assert accepted.kind == "full"
        assert accepted.version == version_before + 1
    finally:
        service.close()


def test_gate_without_reset_keeps_shadow_training_state(rng):
    service, worker = _worker(StreamConfig(
        batch_size=4, steps_per_swap=2, gate_tolerance=-1.0,
        gate_reset_on_reject=False, seed=0))
    try:
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        shadow_before = {k: v.copy()
                         for k, v in worker.shadow.state_dict().items()}
        report = worker.swap()
        assert report.kind == "rejected"
        stats = worker.stats_json()
        # The update stays in the shadow (steps keep accumulating toward
        # the next gate attempt); only publication was withheld.
        assert stats["steps_since_swap"] == 2
        assert stats["last_rejection"].get("shadow_reset") is None
        for name, value in worker.shadow.state_dict().items():
            np.testing.assert_array_equal(value, shadow_before[name])
    finally:
        service.close()


def test_empty_eval_slice_accepts_with_reason(rng):
    service, worker = _worker(StreamConfig(
        batch_size=4, steps_per_swap=2, eval_set_size=0,
        eval_holdout_frac=0.0, seed=0))
    try:
        assert worker.stats_json()["eval_examples"] == 0
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        report = worker.swap()
        # Nothing to measure -> the gate cannot block, but it says so.
        assert report.kind == "full"
        assert report.gate["accepted"] is True
        assert report.gate["reason"] == "no_eval_examples"
    finally:
        service.close()


def test_gate_disabled_publishes_ungated(rng):
    service, worker = _worker(StreamConfig(batch_size=4, steps_per_swap=2,
                                           eval_gate=False, seed=0))
    try:
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        report = worker.swap()
        assert report.kind == "full"
        assert report.gate is None
        assert worker.stats_json()["gate_evals"] == 0
    finally:
        service.close()


def test_catalog_swap_is_never_gated(rng):
    """Cold-item-only swaps share the serving weights: nothing to gate."""
    service, worker = _worker(StreamConfig(gate_tolerance=-1.0, seed=0))
    try:
        worker.ingest(parse_events(
            [{"item": {"text_tokens": [3, 4], "topic": 0}}]))
        report = worker.swap()
        # Even an impossible tolerance cannot block catalogue growth.
        assert report.kind == "catalog"
        assert report.gate is None
        assert worker.stats_json()["gate_evals"] == 0
    finally:
        service.close()


# -- shadow-scoring mode -----------------------------------------------------


def test_shadow_mode_never_publishes_and_logs_rank_diffs(tmp_path, rng):
    diff_path = str(tmp_path / "shadow.jsonl")
    service, worker = _worker(StreamConfig(
        batch_size=4, steps_per_swap=2, shadow_mode=True,
        shadow_log_path=diff_path, seed=0))
    try:
        old = service.registry.get(*worker.key)
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        first = worker.swap()
        assert first.kind == "shadow"
        assert first.version == old.recommender.index_version
        assert service.registry.get(*worker.key) is old
        # Steps accumulate across shadow evals (nothing was discarded).
        worker.run_steps(2)
        second = worker.swap()
        assert second.kind == "shadow" and second.steps == 4
        stats = worker.stats_json()
        assert stats["shadow_evals"] == 2
        assert stats["swaps"] == 0
        assert stats["last_shadow"]["steps"] == 4
        records = [json.loads(line) for line in open(diff_path)]
        assert len(records) == 2
        for record in records:
            assert record["scenario"] == "kwai_food:pmmrec-text"
            assert len(record["candidate_ranks"]) == record["examples"]
            assert len(record["baseline_ranks"]) == record["examples"]
            assert set(record["candidate"]) == {"hr@10", "ndcg@10"}
        assert records[0]["steps"] == 2 and records[1]["steps"] == 4
    finally:
        service.close()


# -- held-out users: frozen slice + reservoir --------------------------------


def test_eval_user_events_feed_reservoir_not_replay(rng):
    service, worker = _worker(StreamConfig(
        eval_set_size=4, eval_holdout_frac=0.0, eval_reservoir=3, seed=0))
    try:
        stats = worker.stats_json()
        assert stats["eval_users"] == 4
        frozen = stats["eval_examples"]
        assert frozen == 4                      # one leave-one-out each
        eval_user = sorted(worker._eval_users)[0]
        item = int(worker.data.sequences[eval_user][0])
        buffer_before = len(worker.replay)
        receipt = worker.ingest(parse_events(
            [{"user": eval_user, "item": item}] * 5))
        # All five transitions were diverted to the gate's reservoir:
        # the optimizer never sees a held-out user's events.
        assert receipt["held_out"] == 5
        assert len(worker.replay) == buffer_before
        stats = worker.stats_json()
        assert stats["held_out"] == 5
        # ...and the reservoir is bounded at eval_reservoir entries.
        assert stats["eval_examples"] == frozen + 3
        # A trainable user's event still lands in the replay buffer.
        trainable = next(u for u in range(worker.data.num_users)
                         if u not in worker._eval_users)
        item = int(worker.data.sequences[trainable][0])
        receipt = worker.ingest(parse_events(
            [{"user": trainable, "item": item}]))
        assert receipt["held_out"] == 0
        assert len(worker.replay) == buffer_before + 1
    finally:
        service.close()


def test_new_users_join_holdout_by_fraction():
    service, worker = _worker(StreamConfig(
        eval_set_size=0, eval_holdout_frac=1.0, seed=0))
    try:
        users_before = worker.data.num_users
        # Click twice: the first click has no transition; the second is
        # the new user's first held-out eval example.
        worker.ingest(parse_events([{"user": -1, "item": 1}]))
        new_uid = users_before
        assert new_uid in worker._eval_users
        receipt = worker.ingest(parse_events([{"user": new_uid, "item": 2}]))
        assert receipt["held_out"] == 1
        assert worker.stats_json()["eval_examples"] == 1
        assert len(worker.replay) == 0
    finally:
        service.close()


# -- failed rounds roll back (satellite: the broad-except fix) ---------------


def test_failed_round_rolls_back_shadow_and_optimizer(rng):
    service, worker = _worker(StreamConfig(batch_size=4, steps_per_swap=4,
                                           seed=0))
    try:
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(1)        # warm the optimizer moments
        state_before = {k: v.copy()
                        for k, v in worker.shadow.state_dict().items()}
        optim_before = worker.trainer.optimizer.state_dict()
        steps_before = worker.stats_json()["steps_since_swap"]
        real_step = worker.trainer.train_step
        calls = {"n": 0}

        def step_then_explode(item_ids, mask):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("poisoned batch")
            return real_step(item_ids, mask)

        worker.trainer.train_step = step_then_explode
        with pytest.raises(RuntimeError, match="poisoned batch"):
            worker._round()
        # One step *did* apply before the failure — the rollback guard
        # must erase it: weights, optimizer moments and the swap-facing
        # step counter are all bitwise back at their pre-round values.
        for name, value in worker.shadow.state_dict().items():
            np.testing.assert_array_equal(value, state_before[name])
        optim_after = worker.trainer.optimizer.state_dict()
        assert set(optim_after) == set(optim_before)
        for key, value in optim_before.items():
            got = optim_after[key]
            if isinstance(value, list):
                for a, b in zip(got, value):
                    np.testing.assert_array_equal(a, b)
            else:
                assert got == value
        assert worker.stats_json()["steps_since_swap"] == steps_before
        # A later swap publishes the pre-failure state, not half a round.
        worker.trainer.train_step = real_step
        report = worker.swap()
        assert report.kind == "full" and report.steps == steps_before
    finally:
        service.close()


def test_background_round_error_surfaces_exception_class(rng):
    service = make_service()
    try:
        from repro.stream import FineTuneWorker
        worker = FineTuneWorker(
            service, ("kwai_food", "pmmrec-text"),
            StreamConfig(min_events_per_round=2, round_timeout_s=0.05,
                         seed=0),
            start=True)

        def exploding_round():
            raise ValueError("bad batch shape")

        worker._round = exploding_round
        worker.ingest(parse_events(_interactions(worker.data, 4, rng)))
        deadline = time.monotonic() + 10
        while worker.stats_json()["round_errors"] < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        stats = worker.stats_json()
        assert stats["round_errors"] >= 1
        assert stats["last_error_type"] == "ValueError"
        assert stats["last_error"] == "ValueError: bad batch shape"
        worker.close()
    finally:
        service.close()


# -- torn-read-free stats (satellite: the stats_json lock fix) ---------------


def test_stats_snapshot_is_consistent_under_concurrency(rng):
    """Hammer stats_json while ingest/train/swap mutate the counters.

    Monotonic counters must never move backwards between successive
    snapshots, and cross-counter invariants that only hold for an
    *atomic* snapshot (events_since_swap >= 0, steps_since_swap <=
    steps, held_out <= interactions) must hold for every read — a torn
    read taken between a swap's counter updates would violate them.
    """
    service, worker = _worker(StreamConfig(batch_size=4, steps_per_swap=2,
                                           seed=0))
    try:
        dataset = worker.data
        stop = threading.Event()
        errors: list = []

        def ingester():
            local = np.random.default_rng(42)
            try:
                for _ in range(50):
                    worker.ingest(parse_events(
                        _interactions(dataset, 4, local)))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        def stepper():
            try:
                while not stop.is_set():
                    worker.run_steps(1)
                    worker.swap()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                stop.set()

        monotonic = ("events_total", "interactions", "steps", "swaps",
                     "swaps_rejected", "gate_evals", "round_errors",
                     "held_out", "buffer_pushed")
        threads = [threading.Thread(target=ingester),
                   threading.Thread(target=stepper)]
        for thread in threads:
            thread.start()
        previous = {name: 0 for name in monotonic}

        def check(stats):
            for name in monotonic:
                assert stats[name] >= previous[name], \
                    f"{name} moved backwards: " \
                    f"{previous[name]} -> {stats[name]}"
                previous[name] = stats[name]
            assert stats["events_since_swap"] >= 0
            assert 0 <= stats["steps_since_swap"] <= stats["steps"]
            assert stats["held_out"] <= stats["interactions"]

        while not stop.is_set() or any(t.is_alive() for t in threads):
            check(worker.stats_json())
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "stats stress thread wedged"
        assert errors == []
        # One quiescent snapshot at the end: everything was counted.
        check(worker.stats_json())
        assert previous["events_total"] == 200
    finally:
        service.close()


# -- the poisoned-batch stress test (the acceptance scenario) ----------------


@pytest.fixture()
def hm_stream():
    """hm at smoke scale: 83 items and 189 users in ~0.1s.

    The gate needs metric *resolution*: on the tiny kwai_food smoke
    catalogue (18 items) the HR@10 chance floor is 10/18 ~ 0.55, so even
    a destroyed model scores near the baseline and no tolerance can
    separate them. hm's 83 items put random ranking far below a trained
    model, which is what lets the poisoned round fail the gate by a wide,
    seed-stable margin.
    """
    service = make_service("hm:pmmrec-text")
    manager = StreamManager(
        service,
        StreamConfig(batch_size=8, lr=5e-3, steps_per_swap=16,
                     buffer_capacity=64, eval_gate=True, gate_tolerance=0.05,
                     eval_set_size=64, eval_holdout_frac=0.0, seed=0),
        start=False)
    service.attach_stream(manager)
    yield service, manager.worker("hm", "pmmrec-text")
    service.close()


def test_poisoned_round_is_rejected_under_live_traffic(hm_stream):
    """A corrupted fine-tune round never reaches serving.

    The full acceptance scenario: concurrent clients hammer the service
    while a poisoned event burst (valid-but-garbage: random click bursts
    sized to the replay window plus noise-token cold items) feeds a
    fine-tune round at a hot learning rate. The gate must (a) reject the
    swap on a real measured metric drop, (b) leave every served rank
    bitwise identical to the pre-poison generation, (c) count the
    rejection on /stats, (d) let the next clean round publish, and
    (e) drop zero requests throughout.
    """
    service, worker = hm_stream
    scenario = service.registry.get("hm", "pmmrec-text")
    dataset = scenario.dataset
    version_a = scenario.recommender.index_version
    pool = [np.asarray(ex.history) for ex in dataset.split.test[:10]]
    expected_a = {h.tobytes(): scenario.recommender.recommend(h, k=10).items
                  for h in pool}

    responses: list = []
    errors: list = []
    submitted = [0, 0, 0]
    stop = threading.Event()

    def client(thread_id: int) -> None:
        thread_rng = np.random.default_rng(5000 + thread_id)
        try:
            while not stop.is_set():
                history = pool[thread_rng.integers(0, len(pool))]
                submitted[thread_id] += 1
                responses.append(
                    (history.tobytes(),
                     service.recommend("hm", "pmmrec-text",
                                       [int(i) for i in history], k=10)))
        except Exception as exc:  # noqa: BLE001 - checked in main thread
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(3)]
    for thread in threads:
        thread.start()
    try:
        # Phase 1: a poisoned wave overruns the replay window, and a hot
        # LR makes the round destructive. (Training is seeded and the
        # client traffic is read-only, so the outcome is deterministic.)
        rng = np.random.default_rng(1)
        service.ingest_events("hm", "pmmrec-text",
                              poisoned_events(dataset, 240, rng))
        worker.trainer.optimizer.lr = 0.2
        worker.run_steps(16)
        poisoned = worker.swap()
        assert poisoned.kind == "rejected"
        assert poisoned.gate["reason"].startswith("metric_drop:")
        assert poisoned.gate["deltas"]["hr@10"] < -0.05   # a real drop
        # The rejection reset the shadow — and with it the optimizer,
        # so the hot poison LR is gone for the clean phase.
        assert worker.trainer.optimizer.lr == pytest.approx(5e-3)
        assert worker.stats_json()["steps_since_swap"] == 0

        # Serving is exactly the pre-poison generation: same object,
        # same version, bitwise the same ranks on every probe.
        assert service.registry.get("hm", "pmmrec-text") is scenario
        for history in pool:
            answer = scenario.recommender.recommend(history, k=10)
            assert answer.index_version == version_a
            np.testing.assert_array_equal(
                answer.items, expected_a[history.tobytes()])

        # The rejection is observable end to end on /stats.
        stats = service.stats()
        stream_stats = stats["stream"]["hm:pmmrec-text"]
        assert stream_stats["swaps_rejected"] == 1
        assert stream_stats["last_rejection"]["steps_discarded"] == 16
        assert stats["stream"]["totals"]["swaps_rejected"] == 1

        # Phase 2: clean traffic ages the poison out of the FIFO replay
        # window (96 > buffer_capacity=64) and the next round publishes.
        service.ingest_events("hm", "pmmrec-text",
                              synthetic_interactions(dataset, 96, rng))
        worker.run_steps(16)
        clean = worker.swap()
        assert clean.kind == "full"
        assert clean.gate["accepted"] is True
        assert clean.version == version_a + 1
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "stress client wedged"

    assert errors == []
    # Zero drops: every submitted request produced exactly one response.
    assert len(responses) == sum(submitted)
    assert len(responses) > 0
    # Whole-generation answers only: every response served either the
    # pre-poison generation's exact ranks or the clean generation's —
    # the rejected candidate's ranks appear nowhere.
    fresh = service.registry.get("hm", "pmmrec-text")
    expected_b = {h.tobytes(): fresh.recommender.recommend(h, k=10).items
                  for h in pool}
    for history_key, payload in responses:
        version = payload["index_version"]
        assert version in (version_a, version_a + 1), \
            f"response claims unknown generation v{version}"
        expected = (expected_a if version == version_a
                    else expected_b)[history_key]
        assert payload["items"] == [int(i) for i in expected], \
            f"served ranks match no complete generation at v{version}"
