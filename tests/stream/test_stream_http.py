"""The streaming HTTP contract: /events, /swap, stream stats, errors."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import make_server


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.load(response)


@pytest.fixture()
def server(service, manager):
    server = make_server(service, port=0)
    server.start_background()
    yield server
    server.shutdown()
    server.server_close()


def test_events_swap_recommend_stats_roundtrip(server, service, worker):
    url = server.url
    dataset = service.registry.get("kwai_food", "pmmrec-text").dataset
    history = [int(i) for i in dataset.split.test[0].history]
    before = _post(url + "/recommend",
                   {"dataset": "kwai_food", "model": "pmmrec-text",
                    "history": history, "k": 5})

    events = [{"user": 0, "item": int(dataset.sequences[0][0])},
              {"user": 1, "item": int(dataset.sequences[1][0])},
              {"item": {"text_tokens": [5, 6, 7], "topic": 0}}]
    receipt = _post(url + "/events",
                    {"dataset": "kwai_food", "model": "pmmrec-text",
                     "events": events})
    assert receipt["accepted"] == 3
    cold_id = receipt["cold_item_ids"][0]

    worker.run_steps(2)
    swap = _post(url + "/swap",
                 {"dataset": "kwai_food", "model": "pmmrec-text"})
    assert swap["kind"] == "full"
    assert swap["version"] == before["index_version"] + 1

    after = _post(url + "/recommend",
                  {"dataset": "kwai_food", "model": "pmmrec-text",
                   "history": history + [cold_id], "k": 5})
    assert after["index_version"] == swap["version"]
    assert after["items"]

    stats = _get(url + "/stats")
    stream = stats["stream"]["kwai_food:pmmrec-text"]
    assert stream["swaps"] == 1
    assert stream["steps"] == 2
    assert stream["events_total"] == 3
    assert stream["index_version"] == swap["version"]


@pytest.mark.parametrize("payload,status,match", [
    ({"dataset": "kwai_food", "model": "pmmrec-text", "events": []},
     400, "non-empty"),
    ({"dataset": "kwai_food", "model": "pmmrec-text",
      "events": [{"user": 0}]}, 400, "item"),
    ({"dataset": "nope", "model": "pmmrec-text",
      "events": [{"user": 0, "item": 1}]}, 404, "no streaming scenario"),
])
def test_events_error_codes(server, manager, payload, status, match):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server.url + "/events", payload)
    assert excinfo.value.code == status
    body = json.load(excinfo.value)
    assert match in body["error"]


def test_events_without_stream_manager_is_400(service):
    # A plain serving service (no manager attached) refuses ingestion
    # with a actionable message instead of crashing.
    service.stream = None
    server = make_server(service, port=0)
    server.start_background()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/events",
                  {"dataset": "kwai_food", "model": "pmmrec-text",
                   "events": [{"user": 0, "item": 1}]})
        assert excinfo.value.code == 400
        assert "not enabled" in json.load(excinfo.value)["error"]
    finally:
        server.shutdown()
        server.server_close()
