"""Stream-side health rules: gate-rejection streaks and swap staleness.

The forced-rejection tolerance (``gate_tolerance=-1.0``) drives the
streak deterministically — the *measured* rejection of a genuinely
poisoned round lives in ``benchmarks/test_health_bench.py``. What these
tests pin is the wiring: consecutive rejections raise the
``repro_stream_rejection_streak`` gauge, the ``swap_rejection_streak``
rule fires without a single served rank changing, and a clean publish
clears both the streak and the alert.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.obs.health import default_rules
from repro.stream import StreamConfig, StreamManager, parse_events

from .conftest import make_service


def _interactions(dataset, count, rng):
    events = []
    for _ in range(count):
        user = int(rng.integers(0, dataset.num_users))
        seq = dataset.sequences[user]
        events.append({"user": user,
                       "item": int(seq[rng.integers(0, len(seq))])})
    return events


def _stream_service(config: StreamConfig, spec="kwai_food:pmmrec-text"):
    service = make_service(spec)
    manager = StreamManager(service, config, start=False)
    service.attach_stream(manager)
    return service, manager.worker(*spec.split(":"))


def test_rejection_streak_fires_alert_without_touching_ranks(rng):
    service, worker = _stream_service(StreamConfig(
        batch_size=4, steps_per_swap=2, gate_tolerance=-1.0, seed=0))
    monitor = service.enable_monitoring(
        start=False, rules=default_rules(rejection_streak_limit=2,
                                         cooldown_s=0.0))
    try:
        monitor.timeline.sample()
        assert monitor.status()["status"] == "ok"
        history = [int(i) for i in worker.data.split.test[0].history]
        ranks_before = service.recommend(*worker.key, history, k=10)

        # First rejection: streak 1, below the limit of 2 — still ok.
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        assert worker.swap().kind == "rejected"
        monitor.timeline.sample()
        payload = monitor.status()
        assert payload["status"] == "ok"
        assert payload["rules"]["swap_rejection_streak"]["value"] == 1.0

        # Second consecutive rejection: the streak rule fires.
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        assert worker.swap().kind == "rejected"
        monitor.timeline.sample()
        payload = monitor.status()
        assert payload["status"] == "degraded"
        assert [c["rule"] for c in payload["causes"]] == \
            ["swap_rejection_streak"]
        assert service.stats()["stream"]["totals"][
            "max_rejection_streak"] == 2

        # The rejected rounds never reached serving: same ranks, bitwise.
        ranks_after = service.recommend(*worker.key, history, k=10)
        assert ranks_after["items"] == ranks_before["items"]
        np.testing.assert_array_equal(ranks_after["scores"],
                                      ranks_before["scores"])

        # A clean publish clears the streak and resolves the alert.
        worker.config.gate_tolerance = 1.0
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        assert worker.swap().kind == "full"
        monitor.timeline.sample()
        assert monitor.status()["status"] == "ok"
        events = [(e["rule"], e["event"])
                  for e in monitor.alerts()["history"]]
        assert ("swap_rejection_streak", "fired") in events
        assert ("swap_rejection_streak", "resolved") in events
    finally:
        service.close()


def test_staleness_rule_fires_until_a_swap_publishes(rng):
    service, worker = _stream_service(StreamConfig(
        batch_size=4, steps_per_swap=2, gate_tolerance=1.0, seed=0))
    monitor = service.enable_monitoring(
        start=False, rules=default_rules(staleness_limit_s=0.05,
                                         cooldown_s=0.0))
    try:
        time.sleep(0.1)             # no swap for longer than the budget
        monitor.timeline.sample()
        payload = monitor.status()
        assert payload["status"] == "degraded"
        assert [c["rule"] for c in payload["causes"]] == \
            ["stream_staleness"]
        assert service.stats()["stream"]["totals"]["max_staleness_s"] > 0.05

        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        assert worker.swap().kind == "full"    # publish resets staleness
        monitor.timeline.sample()
        assert monitor.status()["status"] == "ok"
    finally:
        service.close()


def test_stats_json_exposes_rejection_streak(rng):
    service, worker = _stream_service(StreamConfig(
        batch_size=4, steps_per_swap=2, gate_tolerance=-1.0, seed=0))
    try:
        assert worker.stats_json()["rejection_streak"] == 0
        worker.ingest(parse_events(_interactions(worker.data, 8, rng)))
        worker.run_steps(2)
        worker.swap()
        assert worker.stats_json()["rejection_streak"] == 1
    finally:
        service.close()
