"""Patchification and the vision encoder (MiniViT)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import build_dataset, get_world
from repro.vision import (MiniViT, VisionEncoderConfig, num_patches,
                          patch_dim, patchify, pretrained_vision_encoder)


def test_patchify_shapes(rng):
    images = rng.normal(size=(3, 16, 16, 3))
    patches = patchify(images, patch_size=4)
    assert patches.shape == (3, 16, 48)


def test_patchify_blocks_are_spatially_correct(rng):
    images = rng.normal(size=(1, 8, 8, 1))
    patches = patchify(images, patch_size=4)
    # First patch is the top-left 4x4 block, row-major.
    np.testing.assert_array_equal(
        patches[0, 0].reshape(4, 4), images[0, :4, :4, 0])
    # Second patch is the top-right block.
    np.testing.assert_array_equal(
        patches[0, 1].reshape(4, 4), images[0, :4, 4:, 0])


def test_patchify_roundtrip_preserves_values(rng):
    images = rng.normal(size=(2, 8, 8, 3))
    patches = patchify(images, patch_size=2)
    assert patches.sum() == pytest.approx(images.sum())


def test_patchify_validation(rng):
    with pytest.raises(ValueError):
        patchify(rng.normal(size=(1, 15, 15, 3)), patch_size=4)
    with pytest.raises(ValueError):
        patchify(rng.normal(size=(1, 16, 8, 3)), patch_size=4)
    with pytest.raises(ValueError):
        num_patches(15, 4)


def test_patch_helpers():
    assert num_patches(16, 4) == 16
    assert patch_dim(4) == 48


def test_vit_shapes(rng):
    config = VisionEncoderConfig(image_size=16, patch_size=4, dim=16,
                                 num_blocks=1, num_heads=2)
    vit = MiniViT(config)
    cls, hidden = vit(rng.normal(size=(2, 16, 16, 3)))
    assert cls.shape == (2, 16)
    assert hidden.shape == (2, 17, 16)


def test_pretrained_vit_deterministic():
    world = get_world()
    a = pretrained_vision_encoder(world, dim=16, seed=9)
    b = pretrained_vision_encoder(world, dim=16, seed=9)
    np.testing.assert_array_equal(a.patch_proj.weight.data,
                                  b.patch_proj.weight.data)


def test_pretrained_vit_features_reflect_semantics():
    """Pooled patch projections of clean images must separate topics.

    The pre-trained patch projection approximately inverts the world's
    pixel decoder, so on the low-clutter HM platform mean-pooled patch
    features should cluster by topic (after removing the anisotropic
    common direction, as with any frozen feature space).
    """
    import repro.nn as nn
    from repro.nn.tensor import Tensor
    world = get_world()
    vit = pretrained_vision_encoder(world, dim=32)
    ds = build_dataset("hm", profile="smoke")      # low clutter
    ids = np.arange(1, min(ds.num_items, 120) + 1)
    with nn.no_grad():
        patches = patchify(ds.images_for(ids), vit.config.patch_size)
        feats = vit.patch_proj(Tensor(patches)).data.mean(axis=1)
    feats = feats - feats.mean(axis=0)
    feats = feats / (np.linalg.norm(feats, axis=1, keepdims=True) + 1e-12)
    sims = feats @ feats.T
    topics = ds.item_topics[ids]
    same = topics[:, None] == topics[None, :]
    off_diag = ~np.eye(len(ids), dtype=bool)
    assert sims[same & off_diag].mean() > sims[~same].mean() + 0.05


def test_vit_finetune_depth():
    world = get_world()
    vit = pretrained_vision_encoder(world, dim=16, num_blocks=2)
    vit.set_finetune_depth(1)
    assert not vit.patch_proj.weight.requires_grad
    assert all(p.requires_grad for p in list(vit.blocks)[-1].parameters())
