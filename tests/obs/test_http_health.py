"""HTTP surface of the self-monitor: /health, /alerts, /timeline."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import metrics
from repro.obs.health import Rule, default_rules
from repro.serve import ModelRegistry, RecommendationService, make_server

#: Gauge the tests flip to drive /health through its states.
TRIP_GAUGE = "repro_test_trip_level"


@pytest.fixture(scope="module")
def monitored():
    trip = metrics.gauge(TRIP_GAUGE, "test-only fault injection lever")
    trip.set(0)
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    service = RecommendationService(registry, max_batch=8, cache_size=64)
    rules = default_rules() + [
        Rule("test_trip", kind="threshold", metric=TRIP_GAUGE,
             limit=0.5, severity="failing", cooldown_s=0.0,
             description="test lever above its limit")]
    monitor = service.enable_monitoring(rules=rules, start=False)
    monitor.timeline.sample()
    server = make_server(service, port=0)
    server.start_background()
    yield server, service, monitor, trip
    server.shutdown()
    server.server_close()
    service.close()


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path,
                                    timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def test_health_ok_then_503_when_failing_then_recovers(monitored):
    server, _, monitor, trip = monitored
    trip.set(0)
    monitor.timeline.sample()
    status, payload = _get(server, "/health")
    assert status == 200
    assert payload["status"] == "ok" and payload["monitoring"] is True
    assert payload["scenarios"] == 1
    assert payload["rules"]["test_trip"]["state"] == "ok"

    trip.set(1)                     # inject the fault
    monitor.timeline.sample()       # detection = one sampling interval
    status, payload = _get(server, "/health")
    assert status == 503
    assert payload["status"] == "failing"
    assert payload["causes"][0]["rule"] == "test_trip"

    trip.set(0)
    monitor.timeline.sample()
    status, payload = _get(server, "/health")
    assert status == 200 and payload["status"] == "ok"


def test_alerts_reports_rules_and_edge_history(monitored):
    server, _, monitor, trip = monitored
    trip.set(1)
    monitor.timeline.sample()
    trip.set(0)
    monitor.timeline.sample()
    status, payload = _get(server, "/alerts")
    assert status == 200
    assert payload["monitoring"] is True
    assert {rule["name"] for rule in payload["rules"]} >= \
        {"latency_p99", "test_trip", "pool_workers_dead"}
    events = [(e["rule"], e["event"]) for e in payload["history"]]
    assert ("test_trip", "fired") in events
    assert ("test_trip", "resolved") in events


def test_timeline_endpoint_lists_and_exports(monitored):
    server, _, monitor, _ = monitored
    monitor.timeline.sample()
    status, payload = _get(server, "/timeline")
    assert status == 200
    assert payload["monitoring"] is True
    assert TRIP_GAUGE in payload["metrics"]

    status, payload = _get(server,
                           f"/timeline?metric={TRIP_GAUGE}&window=60")
    assert status == 200
    assert payload["metric"] == TRIP_GAUGE
    assert payload["window_s"] == 60.0
    (series,) = payload["series"]
    assert series["kind"] == "gauge"
    assert series["points"], "sampled gauge must export points"


def test_timeline_bad_window_is_a_400(monitored):
    server, _, _, _ = monitored
    status, payload = _get(server, "/timeline?metric=x&window=banana")
    assert status == 400
    assert "error" in payload


def test_timeline_query_collapses_into_bounded_path_label(monitored):
    server, _, monitor, _ = monitored
    _get(server, f"/timeline?metric={TRIP_GAUGE}&window=60")
    parsed = metrics.parse_prometheus(metrics.render_prometheus())
    timeline_labels = [labels for (name, labels) in parsed
                       if name == "repro_http_requests_total"
                       and "timeline" in labels]
    assert timeline_labels
    assert all('path="/timeline"' in labels for labels in timeline_labels)


def test_health_without_monitoring_keeps_legacy_ok():
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    service = RecommendationService(registry)
    server = make_server(service, port=0)
    server.start_background()
    try:
        status, payload = _get(server, "/health")
        assert status == 200
        assert payload == {"status": "ok", "monitoring": False,
                           "causes": [], "scenarios": 1}
        status, payload = _get(server, "/alerts")
        assert status == 200 and payload["monitoring"] is False
        status, payload = _get(server, "/timeline")
        assert status == 200 and payload["monitoring"] is False
    finally:
        server.shutdown()
        server.server_close()
        service.close()
