"""Metrics registry: shard safety, quantile accuracy, exposition."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs.metrics import (DEFAULT_FACTOR, Histogram, MetricsRegistry,
                               merge_expositions, parse_label_string,
                               parse_prometheus)


@pytest.fixture()
def registry():
    return MetricsRegistry()


# -- counters / thread sharding ------------------------------------------------


def test_counter_accumulates_and_is_monotonic(registry):
    c = registry.counter("reqs_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert registry.counter("reqs_total") is c   # get-or-create


def test_counter_multithread_hammer_no_lost_updates(registry):
    """N threads x M increments: the merged total is exact, and a
    concurrent reader only ever sees the value go up."""
    c = registry.counter("hammer_total")
    threads, per_thread = 8, 20_000
    monotonic_ok = [True]
    stop = threading.Event()

    def reader():
        last = 0.0
        while not stop.is_set():
            now = c.value
            if now < last:
                monotonic_ok[0] = False
            last = now

    def writer():
        for _ in range(per_thread):
            c.inc()

    watcher = threading.Thread(target=reader)
    watcher.start()
    workers = [threading.Thread(target=writer) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    stop.set()
    watcher.join()
    assert c.value == threads * per_thread
    assert monotonic_ok[0], "reader observed a counter decrease"


def test_histogram_multithread_hammer_no_torn_merges(registry):
    hist = registry.histogram("hammer_seconds")
    threads, per_thread = 8, 5_000

    def writer(seed):
        rng = np.random.default_rng(seed)
        for value in rng.uniform(1e-4, 1e-1, size=per_thread):
            hist.observe(float(value))

    workers = [threading.Thread(target=writer, args=(i,))
               for i in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    snap = hist.snapshot()
    assert snap.total == threads * per_thread
    assert sum(snap.counts) == snap.total
    assert 1e-4 * snap.total < snap.sum < 1e-1 * snap.total


# -- histogram quantile accuracy ----------------------------------------------


@pytest.mark.parametrize("dist", ["uniform", "lognormal", "exponential"])
@pytest.mark.parametrize("q", [0.50, 0.95, 0.99])
def test_quantile_tracks_numpy_percentile(registry, dist, q):
    """Geometric-midpoint estimates stay within the bucket-width bound
    (a factor of sqrt(factor) each way at the default sqrt(2) layout)."""
    rng = np.random.default_rng(7)
    values = {"uniform": rng.uniform(1e-4, 2e-1, 50_000),
              "lognormal": rng.lognormal(-6.0, 1.0, 50_000),
              "exponential": rng.exponential(5e-3, 50_000)}[dist]
    hist = registry.histogram(f"acc_{dist}_seconds")
    for value in values:
        hist.observe(float(value))
    estimate = hist.quantile(q)
    truth = float(np.percentile(values, q * 100))
    tolerance = DEFAULT_FACTOR ** 0.5           # one half-bucket, each way
    assert truth / tolerance <= estimate <= truth * tolerance


def test_quantile_edge_cases(registry):
    hist = registry.histogram("edge_seconds")
    assert np.isnan(hist.quantile(0.5))          # empty
    hist.observe(1e-9)                           # underflow bucket
    assert hist.quantile(0.5) == hist.bounds[0]
    hist2 = registry.histogram("edge2_seconds")
    hist2.observe(1e9)                           # overflow bucket
    assert hist2.quantile(0.5) >= hist2.bounds[-1]


def test_snapshot_minus_isolates_a_window(registry):
    hist = registry.histogram("window_seconds")
    for _ in range(100):
        hist.observe(1e-3)
    before = hist.snapshot()
    for _ in range(50):
        hist.observe(1.0)
    delta = hist.snapshot().minus(before)
    assert delta.total == 50
    assert delta.mean == pytest.approx(1.0, rel=1e-6)
    summary = delta.to_json(scale=1e3)
    assert summary["count"] == 50
    assert summary["p50"] == pytest.approx(1e3, rel=0.25)


def test_histogram_mean_and_count(registry):
    hist = registry.histogram("mc_seconds")
    assert hist.count == 0
    for value in (1.0, 2.0, 3.0):
        hist.observe(value)
    assert hist.count == 3
    assert hist.snapshot().mean == pytest.approx(2.0)


# -- gauges --------------------------------------------------------------------


def test_gauge_set_add_and_function(registry):
    g = registry.gauge("depth")
    g.set(4)
    g.add(2)
    assert g.value == 6.0
    g.set_function(lambda: 41 + 1)
    assert g.value == 42.0


def test_gauge_dead_callback_yields_nan_not_crash(registry):
    g = registry.gauge("dead")
    g.set_function(lambda: 1 / 0)
    assert np.isnan(g.value)
    assert "dead" in registry.render()           # exposition survives


# -- naming / labels -----------------------------------------------------------


def test_invalid_names_and_labels_rejected(registry):
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("bad-name")
    with pytest.raises(ValueError, match="invalid label name"):
        registry.counter("ok_name", labels={"bad-label": "x"})


def test_label_sets_are_distinct_series(registry):
    a = registry.counter("labeled_total", labels={"scenario": "a"})
    b = registry.counter("labeled_total", labels={"scenario": "b"})
    assert a is not b
    a.inc(3)
    b.inc(4)
    parsed = parse_prometheus(registry.render())
    assert parsed[("labeled_total", '{scenario="a"}')] == 3.0
    assert parsed[("labeled_total", '{scenario="b"}')] == 4.0


# -- exposition ----------------------------------------------------------------


def test_prometheus_render_parse_round_trip(registry):
    registry.counter("rt_total", help="a counter").inc(7)
    registry.gauge("rt_depth").set(3)
    hist = registry.histogram("rt_seconds")
    for value in (1e-4, 1e-3, 1e-2):
        hist.observe(value)
    text = registry.render()
    assert "# TYPE rt_total counter" in text
    assert "# HELP rt_total a counter" in text
    assert "# TYPE rt_seconds histogram" in text
    parsed = parse_prometheus(text)
    assert parsed[("rt_total", "")] == 7.0
    assert parsed[("rt_depth", "")] == 3.0
    assert parsed[("rt_seconds_count", "")] == 3.0
    assert parsed[("rt_seconds_sum", "")] == pytest.approx(0.0111)
    # Bucket series are cumulative and end at +Inf == count.
    inf = [v for (name, labels), v in parsed.items()
           if name == "rt_seconds_bucket" and "+Inf" in labels]
    assert inf == [3.0]


def test_parse_prometheus_rejects_garbage():
    with pytest.raises(ValueError, match="unparseable"):
        parse_prometheus("this is { not an exposition\n")


def test_registry_disable_drops_writes(registry):
    c = registry.counter("killed_total")
    hist = registry.histogram("killed_seconds")
    registry.disable()
    c.inc()
    hist.observe(1.0)
    registry.enable()
    c.inc()
    assert c.value == 1.0
    assert hist.count == 0


def test_unregistered_instrument_always_writes():
    """A bare Histogram (no registry) ignores the kill switch — the
    per-worker swap histogram must record even during an obs A/B."""
    hist = Histogram("bare_seconds")
    hist.observe(2.0)
    assert hist.count == 1


def test_registry_json_snapshot(registry):
    registry.counter("snap_total", labels={"k": "v"}).inc(2)
    registry.histogram("snap_seconds").observe(1e-3)
    snap = registry.snapshot()
    assert snap["snap_total"]["k=v"] == 2.0
    assert snap["snap_seconds"][""]["count"] == 1


# -- cross-process merge semantics --------------------------------------------


def _worker_exposition(counter_value, gauge_value, observations):
    registry = MetricsRegistry()
    registry.counter("m_requests_total",
                     labels={"path": "/x"}).inc(counter_value)
    registry.gauge("m_staleness_seconds").set(gauge_value)
    hist = registry.histogram("m_seconds")
    for value in observations:
        hist.observe(value)
    return registry.render()


def test_merge_counters_sum_but_gauges_take_max():
    """Pin the merge semantics: summing a level (staleness, streaks,
    queue depth) across processes is meaningless — the fleet's health
    is its worst member, so gauges aggregate by max."""
    merged = parse_prometheus(merge_expositions([
        _worker_exposition(3, 10.0, [1e-3]),
        _worker_exposition(4, 250.0, [1e-3, 1e-2])]))
    assert merged[("m_requests_total", '{path="/x"}')] == 7.0
    assert merged[("m_staleness_seconds", "")] == 250.0   # max, not 260
    assert merged[("m_seconds_count", "")] == 3.0         # histograms sum


def test_merge_gauge_nan_loses_to_any_real_reading():
    """A forked worker renders parent pull-gauges as NaN/0; the merge
    must prefer the authoritative real reading in either order."""
    nan_text = "# TYPE g_depth gauge\ng_depth nan\n"
    real_text = "# TYPE g_depth gauge\ng_depth 7\n"
    for order in ([nan_text, real_text], [real_text, nan_text]):
        merged = parse_prometheus(merge_expositions(order))
        assert merged[("g_depth", "")] == 7.0


# -- label escaping round trips ------------------------------------------------


@pytest.mark.parametrize("value", [
    'quote " inside',
    "back\\slash",
    "new\nline",
    'all \\ of " them\n at once',
    "",
])
def test_escaped_label_values_round_trip(registry, value):
    registry.counter("esc_total", labels={"v": value}).inc(5)
    parsed = parse_prometheus(registry.render())
    ((labels,),) = [[labels] for (name, labels) in parsed
                    if name == "esc_total"]
    assert parse_label_string(labels) == {"v": value}
    assert parsed[("esc_total", labels)] == 5.0


def test_empty_label_instruments_round_trip(registry):
    registry.counter("plain_total").inc(2)
    parsed = parse_prometheus(registry.render())
    assert parsed[("plain_total", "")] == 2.0
    assert parse_label_string("") == {}
    assert parse_label_string("{}") == {}


def test_parse_label_string_decodes_multiple_pairs():
    decoded = parse_label_string(
        r'{path="a\"b\\c\nd",scenario="kwai_food:sasrec"}')
    assert decoded == {"path": 'a"b\\c\nd',
                       "scenario": "kwai_food:sasrec"}


@pytest.mark.parametrize("bad", ["{unclosed", '{k=unquoted}', '{k="open}'])
def test_parse_label_string_rejects_malformed(bad):
    with pytest.raises(ValueError, match="malformed"):
        parse_label_string(bad)
