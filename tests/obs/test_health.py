"""Health engine: every rule kind fires and resolves with edge semantics."""

from __future__ import annotations

import pytest

from repro.obs import metrics as global_metrics
from repro.obs.health import (STATUS_LEVELS, HealthMonitor, Rule,
                              default_rules)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import Timeline

T0 = 2_000_000.0


@pytest.fixture()
def registry():
    return MetricsRegistry()


def make_monitor(registry, rules, window_s=60.0):
    timeline = Timeline(window_s=window_s, interval_s=1.0,
                        source=registry.render)
    return HealthMonitor(timeline, rules=rules), timeline


# -- rule kinds ----------------------------------------------------------------


def test_threshold_rule_fires_and_resolves(registry):
    gauge = registry.gauge("t_depth")
    monitor, timeline = make_monitor(registry, [
        Rule("deep", kind="threshold", metric="t_depth", limit=5.0,
             cooldown_s=0.0)])
    gauge.set(3)
    assert timeline.sample(now=T0) and monitor.status()["status"] == "ok"
    gauge.set(9)
    timeline.sample(now=T0 + 1)
    payload = monitor.status()
    assert payload["status"] == "degraded"
    assert payload["causes"][0]["rule"] == "deep"
    assert "t_depth = 9" in payload["causes"][0]["cause"]
    gauge.set(1)
    timeline.sample(now=T0 + 2)
    assert monitor.status()["status"] == "ok"


def test_threshold_less_than_uses_min_across_series(registry):
    registry.gauge("lt_level", labels={"scope": "a"}).set(10)
    low = registry.gauge("lt_level", labels={"scope": "b"})
    low.set(10)
    monitor, timeline = make_monitor(registry, [
        Rule("low", kind="threshold", metric="lt_level", limit=2.0,
             op="<", cooldown_s=0.0)])
    timeline.sample(now=T0)
    assert monitor.status()["status"] == "ok"
    low.set(1)          # the worst series breaches, not the best
    timeline.sample(now=T0 + 1)
    assert monitor.status()["status"] == "degraded"


def test_quantile_rule_watches_windowed_p99(registry):
    hist = registry.histogram("q_seconds")
    monitor, timeline = make_monitor(registry, [
        Rule("slow", kind="quantile", metric="q_seconds", q=0.99,
             limit=0.1, window_s=60.0, cooldown_s=0.0)])
    timeline.sample(now=T0)
    for _ in range(50):
        hist.observe(1e-3)
    timeline.sample(now=T0 + 1)
    assert monitor.status()["status"] == "ok"
    for _ in range(50):
        hist.observe(2.0)
    timeline.sample(now=T0 + 2)
    assert monitor.status()["status"] == "degraded"


def test_increase_rule_watches_windowed_counter_delta(registry):
    deaths = registry.counter("i_deaths_total")
    monitor, timeline = make_monitor(registry, [
        Rule("death", kind="increase", metric="i_deaths_total",
             limit=0.0, window_s=5.0, cooldown_s=0.0)])
    timeline.sample(now=T0)
    timeline.sample(now=T0 + 1)
    assert monitor.status()["status"] == "ok"
    deaths.inc()
    timeline.sample(now=T0 + 2)
    assert monitor.status()["status"] == "degraded"
    # The increment ages out of the 5 s window → auto-resolve.
    timeline.sample(now=T0 + 10)
    timeline.sample(now=T0 + 11)
    assert monitor.status()["status"] == "ok"


def test_ratio_rule_needs_min_denominator(registry):
    requests = registry.counter("r_requests_total",
                                labels={"status": "200"})
    errors = registry.counter("r_requests_total", labels={"status": "500"})
    monitor, timeline = make_monitor(registry, [
        Rule("errors", kind="ratio", metric="r_requests_total",
             label_prefix=("status", "5"),
             denominator="r_requests_total", limit=0.1,
             min_denominator=8.0, window_s=60.0, severity="failing",
             cooldown_s=0.0)])
    timeline.sample(now=T0)
    errors.inc(2)       # 100% errors but only 2 requests: dormant
    timeline.sample(now=T0 + 1)
    payload = monitor.status()
    assert payload["status"] == "ok"
    assert payload["rules"]["errors"]["state"] == "dormant"
    requests.inc(2)
    errors.inc(8)       # 10 of 12 total are 5xx
    timeline.sample(now=T0 + 2)
    payload = monitor.status()
    assert payload["status"] == "failing"
    assert payload["rules"]["errors"]["value"] == pytest.approx(10 / 12)


def test_liveness_rule_guarded_by_topology_gauge(registry):
    total = registry.gauge("l_workers_total")
    alive = registry.gauge("l_workers_alive")
    monitor, timeline = make_monitor(registry, [
        Rule("dead_pool", kind="liveness", metric="l_workers_alive",
             guard_metric="l_workers_total", limit=1.0,
             severity="failing", cooldown_s=0.0)])
    total.set(0)        # no pool configured: rule stays dormant
    alive.set(0)
    timeline.sample(now=T0)
    payload = monitor.status()
    assert payload["status"] == "ok"
    assert payload["rules"]["dead_pool"]["state"] == "dormant"
    total.set(2)
    timeline.sample(now=T0 + 1)
    assert monitor.status()["status"] == "failing"
    alive.set(2)
    timeline.sample(now=T0 + 2)
    assert monitor.status()["status"] == "ok"


# -- alert state machine -------------------------------------------------------


def test_for_samples_requires_consecutive_breaches(registry):
    gauge = registry.gauge("fs_depth")
    monitor, timeline = make_monitor(registry, [
        Rule("flap", kind="threshold", metric="fs_depth", limit=5.0,
             for_samples=2, cooldown_s=0.0)])
    gauge.set(9)
    timeline.sample(now=T0)
    assert monitor.status()["status"] == "ok"      # 1 of 2 breaches
    gauge.set(1)
    timeline.sample(now=T0 + 1)                    # streak broken
    gauge.set(9)
    timeline.sample(now=T0 + 2)
    assert monitor.status()["status"] == "ok"
    timeline.sample(now=T0 + 3)                    # second consecutive
    assert monitor.status()["status"] == "degraded"


def test_cooldown_holds_alert_until_quiet(registry):
    gauge = registry.gauge("cd_depth")
    monitor, timeline = make_monitor(registry, [
        Rule("sticky", kind="threshold", metric="cd_depth", limit=5.0,
             cooldown_s=10.0)])
    gauge.set(9)
    timeline.sample(now=T0)
    assert monitor.status()["status"] == "degraded"
    gauge.set(1)
    timeline.sample(now=T0 + 1)     # clean, but within cooldown
    assert monitor.status()["status"] == "degraded"
    timeline.sample(now=T0 + 11)    # 11 s past the last breach
    assert monitor.status()["status"] == "ok"
    events = [(e["rule"], e["event"]) for e in monitor.alerts()["history"]]
    assert events == [("sticky", "fired"), ("sticky", "resolved")]


def test_alert_edges_hit_counters_and_history(registry):
    gauge = registry.gauge("ae_depth")
    monitor, timeline = make_monitor(registry, [
        Rule("edge", kind="threshold", metric="ae_depth", limit=5.0,
             cooldown_s=0.0)])
    fired = global_metrics.counter("repro_health_alerts_fired_total",
                                   labels={"rule": "edge"})
    resolved = global_metrics.counter("repro_health_alerts_resolved_total",
                                      labels={"rule": "edge"})
    fired0, resolved0 = fired.value, resolved.value
    for tick, value in enumerate([9, 1, 9, 1]):
        gauge.set(value)
        timeline.sample(now=T0 + tick)
    assert fired.value - fired0 == 2.0
    assert resolved.value - resolved0 == 2.0
    history = monitor.alerts()["history"]
    assert [e["event"] for e in history] == \
        ["fired", "resolved", "fired", "resolved"]
    assert all(e["rule"] == "edge" for e in history)


def test_worst_severity_wins(registry):
    registry.gauge("sv_a").set(9)
    registry.gauge("sv_b").set(9)
    monitor, timeline = make_monitor(registry, [
        Rule("warn", kind="threshold", metric="sv_a", limit=5.0,
             severity="degraded", cooldown_s=0.0),
        Rule("crit", kind="threshold", metric="sv_b", limit=5.0,
             severity="failing", cooldown_s=0.0)])
    timeline.sample(now=T0)
    payload = monitor.status()
    assert payload["status"] == "failing"
    assert payload["alerts_active"] == 2
    assert STATUS_LEVELS["failing"] > STATUS_LEVELS["degraded"]


def test_broken_rule_evaluation_does_not_kill_health(registry):
    registry.gauge("br_depth").set(1)
    rule = Rule("broken", kind="quantile", metric="br_depth", limit=1.0)
    monitor, timeline = make_monitor(registry, [rule])
    timeline.sample(now=T0)     # quantile over a gauge: no data, dormant
    assert monitor.status()["status"] == "ok"


# -- configuration -------------------------------------------------------------


def test_rule_validation():
    with pytest.raises(ValueError, match="unknown rule kind"):
        Rule("x", kind="nope", metric="m")
    with pytest.raises(ValueError, match="invalid severity"):
        Rule("x", kind="threshold", metric="m", severity="ok")
    with pytest.raises(ValueError, match="comparator"):
        Rule("x", kind="threshold", metric="m", op=">=")
    with pytest.raises(ValueError, match="for_samples"):
        Rule("x", kind="threshold", metric="m", for_samples=0)


def test_duplicate_rule_names_rejected(registry):
    rules = [Rule("dup", kind="threshold", metric="a"),
             Rule("dup", kind="threshold", metric="b")]
    with pytest.raises(ValueError, match="duplicate"):
        make_monitor(registry, rules)


def test_default_rules_all_dormant_on_empty_registry(registry):
    monitor, timeline = make_monitor(registry, default_rules())
    timeline.sample(now=T0)
    payload = monitor.status()
    assert payload["status"] == "ok"
    states = {name: rule["state"]
              for name, rule in payload["rules"].items()}
    assert set(states) == {"latency_p99", "http_error_rate",
                           "pool_worker_death", "pool_workers_dead",
                           "pool_retry_burn", "stream_staleness",
                           "swap_rejection_streak"}
    assert all(state == "dormant" for state in states.values())


def test_default_rules_knobs_flow_through():
    rules = {r.name: r for r in default_rules(latency_ceiling_s=0.123,
                                              rejection_streak_limit=3)}
    assert rules["latency_p99"].limit == pytest.approx(0.123)
    # Streak limit N means "fire at the Nth consecutive rejection".
    assert rules["swap_rejection_streak"].limit == pytest.approx(2.0)
