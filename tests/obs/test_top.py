"""`repro top`: pure rendering, sparklines, and the shared watch loop."""

from __future__ import annotations

import io

from repro.obs.top import (_qps_points, render_dashboard, sparkline,
                           watch_loop)


def snapshot(**overrides) -> dict:
    base = {
        "url": "http://127.0.0.1:8765",
        "time": 1_700_000_000.0,
        "stats": {
            "scenarios": {
                "kwai_food:sasrec": {
                    "requests": 120, "cache_hits": 30, "cache_misses": 90,
                    "latency_ms": {"p50": 1.5, "p99": 9.0, "count": 120}}},
            "pool": {"mode": "in-process", "workers": 0}},
        "health": {"status": "ok", "monitoring": True},
        "alerts": {"active": []},
        "timeline": {"series": [
            {"kind": "counter",
             "points": [[1.0, 5.0], [2.0, 10.0], [3.0, 7.5]]}]},
    }
    base.update(overrides)
    return base


# -- sparkline -----------------------------------------------------------------


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
    ramp = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert ramp[0] == "▁" and ramp[-1] == "█"
    assert len(sparkline(range(100), width=32)) == 32


def test_qps_points_sum_counter_series_by_tick():
    payload = {"series": [
        {"kind": "counter", "points": [[1.0, 2.0], [2.0, 3.0]]},
        {"kind": "counter", "points": [[1.0, 1.0], [2.0, None]]},
        {"kind": "gauge", "points": [[1.0, 99.0]]},
    ]}
    assert _qps_points(payload) == [3.0, 3.0]


# -- dashboard rendering -------------------------------------------------------


def test_render_dashboard_healthy_in_process():
    text = render_dashboard(snapshot())
    assert "repro top — http://127.0.0.1:8765" in text
    assert "health: OK" in text
    assert "monitoring: on" in text
    assert "qps" in text and "req/s" in text
    assert "kwai_food:sasrec" in text
    assert "25.0" in text            # 30 hits / 120 lookups
    assert "pool: in-process" in text
    assert "active alerts" not in text


def test_render_dashboard_pool_topology_and_alerts():
    text = render_dashboard(snapshot(
        stats={"scenarios": {},
               "pool": {"mode": "pool", "workers": 2, "alive": 1,
                        "per_worker": [
                            {"pid": 100, "alive": True},
                            {"pid": 101, "alive": False}]},
               "stream": {"totals": {"swaps": 4, "swaps_rejected": 1,
                                     "events_total": 64,
                                     "max_staleness_s": 12.5}}},
        health={"status": "degraded", "monitoring": True},
        alerts={"active": [
            {"rule": "pool_worker_death", "severity": "degraded",
             "cause": "repro_pool_worker_deaths_total = 1 > 0"}]}))
    assert "health: DEGRADED" in text
    assert "pool: 1/2 workers alive" in text
    assert "pid 100:up" in text and "pid 101:DOWN" in text
    assert "stream: swaps 4 (1 rejected), events 64" in text
    assert "max staleness 12.5 s" in text
    assert "active alerts:" in text
    assert "[degraded] pool_worker_death:" in text


def test_render_dashboard_tolerates_monitoring_off():
    text = render_dashboard(snapshot(
        health={"status": "ok", "monitoring": False},
        alerts={"active": []}, timeline={}))
    assert "monitoring: off" in text
    assert "req/s" not in text       # no timeline → no sparkline row


def test_render_dashboard_missing_latency_shows_dashes():
    text = render_dashboard(snapshot(
        stats={"scenarios": {"a:b": {"requests": 0}},
               "pool": {"mode": "in-process"}}))
    assert "a:b" in text
    lines = [line for line in text.splitlines()
             if line.startswith("a:b")]
    assert "-" in lines[0]


# -- watch loop ----------------------------------------------------------------


def test_watch_loop_once_renders_single_frame_without_clearing():
    out = io.StringIO()
    code = watch_loop(lambda: "frame", once=True, out=out)
    assert code == 0
    assert out.getvalue() == "frame\n"
    assert "\x1b[2J" not in out.getvalue()


def test_watch_loop_iterations_clear_and_redraw():
    frames = iter(["one", "two"])
    out = io.StringIO()
    code = watch_loop(lambda: next(frames), interval_s=0.0,
                      iterations=2, out=out)
    assert code == 0
    text = out.getvalue()
    assert text.count("\x1b[2J\x1b[H") == 2
    assert "one\n" in text and "two\n" in text
