"""Timeline: bounded memory, delta-rates, windowed quantiles, export."""

from __future__ import annotations

import math
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import Timeline, collect_families

T0 = 1_000_000.0


@pytest.fixture()
def registry():
    return MetricsRegistry()


def make_timeline(registry, window_s=60.0, interval_s=1.0):
    return Timeline(window_s=window_s, interval_s=interval_s,
                    source=registry.render)


# -- collection ----------------------------------------------------------------


def test_collect_families_types_and_histogram_folding(registry):
    registry.counter("cf_total", labels={"path": "/x"}).inc(3)
    registry.gauge("cf_depth").set(7)
    registry.histogram("cf_seconds",
                       labels={"scenario": "a:b"}).observe(1e-3)
    families = collect_families(registry.render())
    assert families["kinds"]["cf_total"] == "counter"
    assert families["kinds"]["cf_seconds"] == "histogram"
    assert families["scalars"][("cf_total", '{path="/x"}')] == 3.0
    assert families["scalars"][("cf_depth", "")] == 7.0
    # _bucket/_sum/_count fold into one family keyed without `le`.
    ((family, labels),) = [k for k in families["histograms"]]
    assert family == "cf_seconds" and labels == '{scenario="a:b"}'
    entry = families["histograms"][(family, labels)]
    assert entry["count"] == 1.0
    assert entry["sum"] == pytest.approx(1e-3)
    assert entry["buckets"]    # cumulative le → value map


def test_ring_buffer_is_bounded_forever(registry):
    counter = registry.counter("rb_total")
    timeline = make_timeline(registry, window_s=5.0, interval_s=1.0)
    assert timeline.capacity == 6
    for tick in range(200):
        counter.inc()
        timeline.sample(now=T0 + tick)
    for series in timeline._series.values():
        assert len(series.points) <= timeline.capacity
    assert timeline.samples_taken == 200


# -- counter semantics ---------------------------------------------------------


def test_counter_increase_and_rate_are_windowed_deltas(registry):
    counter = registry.counter("cr_total")
    timeline = make_timeline(registry, window_s=60.0)
    for tick in range(5):
        counter.inc(10)
        timeline.sample(now=T0 + tick)
    # 5 samples at values 10..50: increase = 40 over a 4 s span.
    assert timeline.increase("cr_total", 60.0) == pytest.approx(40.0)
    assert timeline.rate("cr_total", 60.0) == pytest.approx(10.0)
    # A 2 s window keeps points at T0+2..T0+4 plus the T0+1 baseline,
    # so the delta crossing the window edge is attributed in-window.
    assert timeline.increase("cr_total", 2.0) == pytest.approx(30.0)


def test_counter_reset_clamps_to_zero_not_negative():
    values = iter([100.0, 150.0, 5.0, 25.0])

    def source():
        return (f"# TYPE reset_total counter\n"
                f"reset_total {next(values)}\n")

    timeline = Timeline(window_s=60.0, interval_s=1.0, source=source)
    for tick in range(4):
        timeline.sample(now=T0 + tick)
    # +50, reset (clamped to 0), +20 — never negative.
    assert timeline.increase("reset_total", 60.0) == pytest.approx(70.0)


def test_increase_returns_none_without_data(registry):
    timeline = make_timeline(registry)
    assert timeline.increase("nothing_total", 60.0) is None
    timeline.sample(now=T0)
    assert timeline.increase("nothing_total", 60.0) is None


def test_window_baseline_point_prepended(registry):
    counter = registry.counter("wb_total")
    timeline = make_timeline(registry, window_s=100.0)
    counter.inc(10)
    timeline.sample(now=T0)
    counter.inc(10)
    timeline.sample(now=T0 + 50)
    # A 10 s window at t0+50 holds one point, but the baseline outside
    # it makes the delta across the edge visible.
    assert timeline.increase("wb_total", 10.0) == pytest.approx(10.0)


# -- gauges / histograms -------------------------------------------------------


def test_gauge_latest_values_per_label_set(registry):
    registry.gauge("gl_depth", labels={"scope": "a"}).set(3)
    registry.gauge("gl_depth", labels={"scope": "b"}).set(9)
    timeline = make_timeline(registry)
    timeline.sample(now=T0)
    assert sorted(timeline.latest_values("gl_depth")) == [3.0, 9.0]


def test_histogram_windowed_quantile_ignores_old_observations(registry):
    hist = registry.histogram("hw_seconds")
    timeline = make_timeline(registry, window_s=300.0)
    timeline.sample(now=T0)               # baseline before any traffic
    for _ in range(100):
        hist.observe(1e-3)
    timeline.sample(now=T0 + 10)
    for _ in range(50):
        hist.observe(1.0)
    timeline.sample(now=T0 + 20)
    # Full window: both populations. Narrow window: only the slow one
    # (the fast batch is attributed to the T0+10 sample, which becomes
    # the out-of-window baseline for a 5 s window at T0+20).
    snap = timeline.histogram_window("hw_seconds", 300.0)
    assert snap.total == 150
    narrow = timeline.histogram_window("hw_seconds", 5.0)
    assert narrow.total == 50
    assert timeline.quantile("hw_seconds", 0.5, 5.0) == \
        pytest.approx(1.0, rel=0.5)
    assert timeline.quantile("hw_seconds", 0.5, 300.0) < 0.1


def test_quantile_none_without_observations(registry):
    registry.histogram("hq_seconds")
    timeline = make_timeline(registry)
    timeline.sample(now=T0)
    timeline.sample(now=T0 + 1)
    assert timeline.quantile("hq_seconds", 0.99, 60.0) is None


# -- export / lifecycle --------------------------------------------------------


def test_export_without_metric_lists_names(registry):
    registry.counter("ex_total").inc()
    registry.gauge("ex_depth").set(1)
    timeline = make_timeline(registry)
    timeline.sample(now=T0)
    payload = timeline.export()
    assert payload["monitoring"] is True
    assert "ex_total" in payload["metrics"]
    assert "ex_depth" in payload["metrics"]


def test_export_counter_points_are_rates(registry):
    counter = registry.counter("exc_total")
    timeline = make_timeline(registry)
    for tick in range(3):
        counter.inc(4)
        timeline.sample(now=T0 + 2 * tick)
    payload = timeline.export("exc_total")
    (series,) = payload["series"]
    assert series["kind"] == "counter"
    # 3 points → 2 rate pairs of 4 incs / 2 s.
    assert [p[1] for p in series["points"]] == pytest.approx([2.0, 2.0])


def test_export_histogram_points_carry_quantiles(registry):
    hist = registry.histogram("exh_seconds")
    timeline = make_timeline(registry)
    timeline.sample(now=T0)
    for _ in range(20):
        hist.observe(1e-2)
    timeline.sample(now=T0 + 2)
    payload = timeline.export("exh_seconds")
    (series,) = payload["series"]
    ((ts, rate, p50, p99),) = series["points"]
    assert ts == T0 + 2
    assert rate == pytest.approx(10.0)
    assert p50 == pytest.approx(1e-2, rel=0.5)
    assert p99 >= p50


def test_export_gauge_nan_becomes_null(registry):
    registry.gauge("exn_depth").set_function(lambda: 1 / 0)   # NaN reading
    timeline = make_timeline(registry)
    timeline.sample(now=T0)
    (series,) = timeline.export("exn_depth")["series"]
    assert series["points"] == [[T0, None]]
    assert math.isnan(timeline.latest_values("exn_depth")[0])


def test_bad_scrape_counts_error_and_survives():
    calls = [0]

    def source():
        calls[0] += 1
        if calls[0] == 2:
            raise RuntimeError("scrape broke")
        return "# TYPE ok_total counter\nok_total 1\n"

    timeline = Timeline(window_s=10.0, interval_s=1.0, source=source)
    timeline.sample(now=T0)
    timeline.sample(now=T0 + 1)     # failing scrape: swallowed
    timeline.sample(now=T0 + 2)
    assert timeline.samples_taken == 2


def test_listener_called_after_each_sample(registry):
    seen = []
    timeline = make_timeline(registry)
    timeline.add_listener(seen.append)
    timeline.sample(now=T0)
    timeline.sample(now=T0 + 1)
    assert seen == [T0, T0 + 1]


def test_background_sampler_start_stop(registry):
    registry.counter("bg_total").inc()
    timeline = make_timeline(registry, window_s=10.0, interval_s=0.01)
    timeline.start()
    deadline = time.time() + 5.0
    while timeline.samples_taken < 3 and time.time() < deadline:
        time.sleep(0.01)
    timeline.stop()
    assert timeline.samples_taken >= 3
    taken = timeline.samples_taken
    time.sleep(0.05)
    assert timeline.samples_taken == taken      # sampler actually stopped


def test_constructor_validation(registry):
    with pytest.raises(ValueError):
        Timeline(window_s=10.0, interval_s=0.0, source=registry.render)
    with pytest.raises(ValueError):
        Timeline(window_s=0.5, interval_s=1.0, source=registry.render)
