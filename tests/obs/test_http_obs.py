"""End-to-end observability: /metrics, the access log, and live traces.

Starts the real HTTP server in-process with tracing at rate 1.0 and an
access-log sink, drives traffic, and pins the PR's acceptance bar: a
sampled request's spans (parse → queue_wait → batch stages → respond)
sum, within scheduling slack, to the observed end-to-end latency — and
the same for a hot swap's phase spans.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import metrics, trace
from repro.serve import ModelRegistry, RecommendationService, make_server
from repro.stream import StreamConfig, StreamManager, parse_events

#: Slack allowed between span_sum_ms and total_ms: spans cover the
#: instrumented stages; thread scheduling and the uninstrumented
#: gaps between them account for the remainder.
_COVERAGE = 0.5


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    """Server + service with sampling at 1.0 and JSONL sinks attached."""
    tmp = tmp_path_factory.mktemp("obs")
    trace_log = tmp / "traces.jsonl"
    access_log = tmp / "access.jsonl"
    trace.configure(sample_rate=1.0, path=str(trace_log))
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    service = RecommendationService(registry, max_batch=8,
                                    max_wait_ms=2.0, cache_size=64)
    server = make_server(service, port=0, access_log=str(access_log))
    server.start_background()
    yield server, service, trace_log, access_log
    server.shutdown()
    server.server_close()
    service.close()
    trace.configure(sample_rate=0.0)
    trace.TRACER.close()


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.load(response)


def _get_text(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, response.read().decode()


def _recommend(server, service, row=0, k=5):
    scenario = service.registry.get("kwai_food", "sasrec")
    history = [int(i) for i in scenario.dataset.split.test[row].history]
    return _post(server, "/recommend",
                 {"dataset": "kwai_food", "model": "sasrec",
                  "history": history, "k": k})


def _await_log_line(path, predicate, timeout=5.0):
    """Poll a JSONL sink for a matching line.

    The handler writes its access-log line *after* the response bytes
    flush, so the client can observe the body before the line lands —
    a short poll instead of a single read keeps the assertion honest.
    """
    deadline = time.perf_counter() + timeout
    while True:
        for line in reversed(path.read_text().splitlines()):
            record = json.loads(line)
            if predicate(record):
                return record
        if time.perf_counter() >= deadline:
            raise AssertionError(f"no matching line in {path}")
        time.sleep(0.01)


def test_metrics_endpoint_parses_with_core_series(traced):
    server, service, _, _ = traced
    status, _ = _recommend(server, service, row=0)
    assert status == 200
    status, text = _get_text(server, "/metrics")
    assert status == 200
    parsed = metrics.parse_prometheus(text)
    names = {name for name, _ in parsed}
    for required in ("repro_http_requests_total",
                     "repro_serve_request_seconds_count",
                     "repro_serve_batcher_requests_total",
                     "repro_serve_batch_size_count",
                     "repro_serve_queue_wait_seconds_count",
                     "repro_serve_stage_seconds_count"):
        assert required in names, f"missing series {required}"
    request_counts = [v for (name, labels), v in parsed.items()
                      if name == "repro_serve_request_seconds_count"
                      and "kwai_food:sasrec" in labels]
    assert request_counts and request_counts[0] >= 1.0


def test_sampled_request_trace_spans_sum_to_e2e_latency(traced):
    """Acceptance: trace span durations ≈ the observed total latency."""
    server, service, trace_log, _ = traced
    status, payload = _recommend(server, service, row=1)
    assert status == 200
    assert "trace_id" in payload
    record = _await_log_line(
        trace_log, lambda r: r.get("trace_id") == payload["trace_id"])
    assert record["kind"] == "request" and record["status"] == 200
    names = [s["name"] for s in record["spans"]]
    assert names[0] == "parse" and names[-1] == "respond"
    assert "queue_wait" in names            # crossed the batcher handoff
    assert "topk" in names                  # batch stages adopted
    assert "encode" in names or "score" in names   # ANN or full-sort path
    assert record["span_sum_ms"] <= record["total_ms"] * 1.01
    assert record["span_sum_ms"] >= record["total_ms"] * _COVERAGE, \
        f"spans cover too little: {record}"
    # Spans are chronological and within the trace window.
    starts = [s["start_ms"] for s in record["spans"]]
    assert starts == sorted(starts)
    assert starts[0] >= -1e-6


def test_trace_id_propagates_to_access_log(traced):
    server, service, _, access_log = traced
    status, payload = _recommend(server, service, row=2)
    assert status == 200
    entry = _await_log_line(
        access_log, lambda r: r.get("trace_id") == payload["trace_id"])
    assert entry["method"] == "POST"
    assert entry["path"] == "/recommend"
    assert entry["status"] == 200
    assert entry["latency_ms"] > 0.0
    # Untraced routes log too, with a null trace id.
    _get_text(server, "/health")
    health = _await_log_line(access_log,
                             lambda r: r["path"] == "/health")
    assert health["status"] == 200 and health["trace_id"] is None


def test_stats_reports_o1_latency_quantiles(traced):
    server, service, _, _ = traced
    _recommend(server, service, row=3)
    _, text = _get_text(server, "/stats")
    stats = json.loads(text)
    latency = stats["scenarios"]["kwai_food:sasrec"]["latency_ms"]
    assert latency["count"] >= 1
    assert 0.0 < latency["p50"] <= latency["p99"]


def test_unknown_route_collapses_to_other_label(traced):
    server, service, _, _ = traced
    try:
        _get_text(server, "/definitely/not/a/route")
    except urllib.error.HTTPError:
        pass
    _, text = _get_text(server, "/metrics")
    parsed = metrics.parse_prometheus(text)
    other = [labels for (name, labels) in parsed
             if name == "repro_http_requests_total"
             and 'path="other"' in labels]
    assert other, "unknown paths must collapse to the 'other' label"
    known = [labels for (name, labels) in parsed
             if name == "repro_http_requests_total"]
    assert not any("definitely" in labels for labels in known)


def test_sampled_hot_swap_trace_phases_sum_to_total(tmp_path, rng):
    """Acceptance: a sampled swap's phase spans ≈ its e2e latency."""
    trace_log = tmp_path / "swap_traces.jsonl"
    trace.configure(sample_rate=1.0, path=str(trace_log))
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:pmmrec-text", seed=0)
    service = RecommendationService(registry)
    try:
        manager = StreamManager(
            service, StreamConfig(batch_size=4, steps_per_swap=2, seed=0),
            start=False)
        service.attach_stream(manager)
        worker = manager.worker("kwai_food", "pmmrec-text")
        dataset = worker.data
        events = []
        for _ in range(8):
            user = int(rng.integers(0, dataset.num_users))
            seq = dataset.sequences[user]
            events.append({"user": user,
                           "item": int(seq[rng.integers(0, len(seq))])})
        worker.ingest(parse_events(events))
        worker.run_steps(2)
        report = worker.swap()
        assert report.kind == "full"
    finally:
        service.close()
        trace.configure(sample_rate=0.0)
        trace.TRACER.close()
    records = [json.loads(line)
               for line in trace_log.read_text().splitlines()]
    swap = next(r for r in records if r["kind"] == "swap")
    assert swap["swap_kind"] == "full"
    assert swap["name"] == "kwai_food:pmmrec-text"
    assert swap["version"] == report.version
    names = [s["name"] for s in swap["spans"]]
    for phase in ("snapshot", "pre_warm", "index_build", "gate",
                  "checkpoint", "publish", "drain"):
        assert phase in names, f"missing swap phase {phase}"
    assert swap["span_sum_ms"] <= swap["total_ms"] * 1.01
    assert swap["span_sum_ms"] >= swap["total_ms"] * _COVERAGE
    # Phase histograms recorded into the registry too.
    phase_counts = [v for (name, labels), v
                    in metrics.parse_prometheus(
                        metrics.render_prometheus()).items()
                    if name == "repro_stream_swap_phase_seconds_count"]
    assert phase_counts and all(v >= 1.0 for v in phase_counts)
