"""Span tracing: context propagation, sampling, and the JSONL sink."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import trace
from repro.obs.trace import TraceContext, Tracer


def test_spans_record_absolute_times_and_sum():
    ctx = TraceContext("request", "unit")
    t0 = ctx.t0
    ctx.add_span("a", t0, t0 + 0.010)
    ctx.add_span("b", t0 + 0.010, t0 + 0.025)
    assert ctx.span_sum_ms() == pytest.approx(25.0)
    record = ctx.to_json(total_s=0.030)
    assert record["total_ms"] == pytest.approx(30.0)
    assert record["span_sum_ms"] == pytest.approx(25.0)
    assert [s["name"] for s in record["spans"]] == ["a", "b"]
    assert record["spans"][1]["start_ms"] == pytest.approx(10.0)


def test_t0_reanchoring_includes_pre_sampling_work():
    """Call sites re-anchor ``ctx.t0`` to a tick taken before the
    sampling decision, so e.g. JSON parse time sits inside the trace."""
    earlier = time.perf_counter() - 0.5
    ctx = TraceContext("request", "unit")
    ctx.t0 = earlier
    ctx.add_span("parse", earlier, earlier + 0.001)
    record = ctx.to_json(total_s=time.perf_counter() - earlier)
    assert record["spans"][0]["start_ms"] == pytest.approx(0.0, abs=1e-6)
    assert record["total_ms"] >= 500.0


def test_span_scope_context_manager():
    ctx = TraceContext("swap", "unit")
    with ctx.span("phase"):
        time.sleep(0.002)
    assert ctx.spans[0].name == "phase"
    assert ctx.spans[0].duration >= 0.002


def test_activate_and_current_nest_and_restore():
    assert trace.current() is None
    outer, inner = TraceContext("a", "x"), TraceContext("b", "y")
    with trace.activate(outer):
        assert trace.current() is outer
        with trace.activate(inner):
            assert trace.current() is inner
        assert trace.current() is outer
    assert trace.current() is None


def test_activate_none_is_a_true_noop():
    outer = TraceContext("a", "x")
    with trace.activate(outer):
        with trace.activate(None) as got:
            assert got is None
            assert trace.current() is outer      # untouched
    assert trace.current() is None


def test_context_is_thread_local_but_spans_cross_threads():
    """The hot-path handoff pattern: the producer thread parks the ctx
    on the queued item, the worker stamps spans into it directly."""
    ctx = TraceContext("request", "handoff")
    seen_on_worker = []

    def worker():
        seen_on_worker.append(trace.current())   # not inherited
        tick = time.perf_counter()
        ctx.add_span("worker_stage", tick, tick + 0.001)

    with trace.activate(ctx):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen_on_worker == [None]
    assert [s.name for s in ctx.spans] == ["worker_stage"]


def test_extend_adopts_sibling_spans():
    batch = TraceContext("batch", "micro_batch")
    batch.add_span("encode", 1.0, 2.0)
    batch.add_span("topk", 2.0, 2.5)
    ctx = TraceContext("request", "unit")
    ctx.extend(batch.spans)
    assert [s.name for s in ctx.spans] == ["encode", "topk"]


# -- sampling ------------------------------------------------------------------


def test_sampling_rates():
    assert Tracer(sample_rate=0.0).start("request", "x") is None
    assert Tracer(sample_rate=1.0).start("request", "x") is not None
    tracer = Tracer(sample_rate=0.25)
    hits = sum(tracer.sample() for _ in range(4_000))
    assert 700 < hits < 1_300                    # ~1000, generous band


def test_disabled_tracer_is_one_branch():
    tracer = Tracer(sample_rate=0.0)
    assert tracer.enabled is False
    assert tracer.sample() is False


# -- sink ----------------------------------------------------------------------


def test_finish_writes_jsonl_and_recent(tmp_path):
    path = tmp_path / "traces.jsonl"
    tracer = Tracer(sample_rate=1.0, path=str(path))
    try:
        ctx = tracer.start("request", "/recommend", meta={"scenario": "s"})
        tick = time.perf_counter()
        ctx.add_span("encode", tick, tick + 0.004)
        record = tracer.finish(ctx, 0.005, status=200)
    finally:
        tracer.close()
    assert record["status"] == 200 and record["scenario"] == "s"
    assert tracer.recent[-1] is record
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 1
    assert lines[0]["trace_id"] == ctx.trace_id
    assert lines[0]["spans"][0]["name"] == "encode"
    assert lines[0]["span_sum_ms"] == pytest.approx(4.0, rel=1e-3)


def test_finish_defaults_total_to_elapsed_since_t0():
    tracer = Tracer(sample_rate=1.0)
    ctx = tracer.start("swap", "x")
    time.sleep(0.005)
    record = tracer.finish(ctx)
    assert record["total_ms"] >= 5.0


def test_recent_deque_is_bounded():
    tracer = Tracer(sample_rate=1.0, keep_recent=4)
    for i in range(10):
        tracer.finish(tracer.start("request", str(i)), 0.001)
    assert len(tracer.recent) == 4
    assert tracer.recent[-1]["name"] == "9"


def test_configure_swaps_sink(tmp_path):
    tracer = Tracer(sample_rate=1.0, path=str(tmp_path / "a.jsonl"))
    try:
        tracer.finish(tracer.start("request", "first"), 0.001)
        tracer.configure(path=str(tmp_path / "b.jsonl"))
        tracer.finish(tracer.start("request", "second"), 0.001)
    finally:
        tracer.close()
    assert "first" in (tmp_path / "a.jsonl").read_text()
    assert "second" in (tmp_path / "b.jsonl").read_text()
