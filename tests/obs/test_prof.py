"""Kernel profiling: opt-in accumulation, baselines, and the table."""

from __future__ import annotations

import pytest

from repro.obs import prof


@pytest.fixture()
def profiling():
    """Enable profiling over a fresh window; restore the off default."""
    prof.enable()
    prof.reset_baseline()
    yield
    prof.disable()


def test_disabled_is_the_default_noop():
    assert prof.enabled() is False
    calls = []

    @prof.profiled("noop.op")
    def fn():
        calls.append(1)
        return 7

    before = prof.snapshot().get("noop.op")
    assert fn() == 7 and calls == [1]
    assert prof.snapshot().get("noop.op") == before   # nothing recorded
    with prof.section("noop.section"):
        pass
    assert "noop.section" not in prof.snapshot()


def test_profiled_decorator_accumulates(profiling):
    @prof.profiled("test.op")
    def fn(x):
        return x * 2

    for i in range(5):
        assert fn(i) == i * 2
    stats = prof.snapshot()["test.op"]
    assert stats["calls"] == 5
    assert stats["total_ms"] >= 0.0
    assert stats["mean_us"] == pytest.approx(
        stats["total_ms"] / 5 * 1e3)


def test_profiled_records_even_when_fn_raises(profiling):
    @prof.profiled("test.raises")
    def boom():
        raise RuntimeError("x")

    with pytest.raises(RuntimeError):
        boom()
    assert prof.snapshot()["test.raises"]["calls"] == 1


def test_section_and_record(profiling):
    with prof.section("test.section"):
        pass
    prof.record("test.manual", 0.5, calls=2)
    stats = prof.snapshot()
    assert stats["test.section"]["calls"] == 1
    assert stats["test.manual"]["calls"] == 2
    assert stats["test.manual"]["total_ms"] == pytest.approx(500.0)


def test_reset_baseline_starts_a_fresh_window(profiling):
    prof.record("test.window", 1.0)
    assert "test.window" in prof.snapshot()
    prof.reset_baseline()
    assert "test.window" not in prof.snapshot()
    prof.record("test.window", 0.25)
    assert prof.snapshot()["test.window"]["total_ms"] == \
        pytest.approx(250.0)


def test_render_table(profiling):
    prof.record("test.big", 0.9)
    prof.record("test.small", 0.1)
    table = prof.render_table("unit profile")
    lines = table.splitlines()
    assert lines[0] == "unit profile"
    big = next(i for i, line in enumerate(lines) if "test.big" in line)
    small = next(i for i, line in enumerate(lines) if "test.small" in line)
    assert big < small                  # sorted by share, descending
    assert "90.0%" in lines[big]
    assert lines[-1].startswith("total")


def test_render_table_empty_window():
    prof.reset_baseline()
    assert "REPRO_PROF=1" in prof.render_table()


def test_fused_ops_register_under_profiling(profiling):
    """The fused kernels actually hit the profiler when enabled."""
    import numpy as np

    from repro.nn.fused import layer_norm
    from repro.nn.tensor import Tensor

    x = Tensor(np.random.default_rng(0).normal(size=(2, 8)).astype(
        np.float32))
    gamma = Tensor(np.ones(8, dtype=np.float32))
    beta = Tensor(np.zeros(8, dtype=np.float32))
    layer_norm(x, gamma, beta)
    assert prof.snapshot()["fused.layer_norm"]["calls"] >= 1
