"""Cheap experiment modules (Tables I-II) and the formatting helpers."""

from __future__ import annotations

import numpy as np

from repro.experiments import table1_capabilities, table2_datasets
from repro.experiments.formatting import format_table, pct, sparkline


def test_pct_formatting():
    assert pct(0.12345) == "12.35"
    assert pct(1.0) == "100.00"
    assert pct(0.5, digits=1) == "50.0"


def test_format_table_alignment():
    out = format_table("T", ["col", "x"], [["a", "1"], ["bbbb", "22"]])
    lines = out.split("\n")
    assert lines[0] == "== T =="
    assert all("|" in line for line in lines[1:] if "-" not in line)
    # Columns aligned: separators at the same offset in every data row.
    assert lines[3].index("|") == lines[4].index("|")


def test_sparkline_monotone():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] < line[-1]


def test_sparkline_downsamples():
    line = sparkline(list(np.linspace(0, 1, 100)), width=10)
    assert len(line) == 10


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    flat = sparkline([0.3, 0.3, 0.3])
    assert len(set(flat)) == 1


def test_table1_shape():
    results = table1_capabilities.run()
    assert "PMMRec (ours)" in results["rows"]
    rendered = table1_capabilities.render(results)
    assert "Table I" in rendered and "PMMRec" in rendered


def test_table2_smoke_profile():
    results = table2_datasets.run(profile="smoke")
    assert results["profile"] == "smoke"
    assert "Source" in results["rows"]
    rendered = table2_datasets.render(results)
    assert "kwai_food" in rendered
    # Sanity: fused source row aggregates the four platforms.
    total = sum(results["rows"]["-" + n]["actions"]
                for n in ("bili", "kwai", "hm", "amazon"))
    assert results["rows"]["Source"]["actions"] == total
