"""Experiment cells: contracts on the smoke profile (fast variants only)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import cells
from repro.experiments.runner import cache_dir


def test_lr_for_routes_by_method():
    assert cells._lr_for("pmmrec") == cells._MODALITY_LR
    assert cells._lr_for("pmmrec-text") == cells._MODALITY_LR
    assert cells._lr_for("morec++") == cells._MODALITY_LR
    assert cells._lr_for("sasrec") == cells._DEFAULT_LR
    assert cells._lr_for("grurec") == cells._DEFAULT_LR


def test_make_pmmrec_variants_configure_losses():
    assert cells._make_pmmrec("pmmrec-wo-nid", 0).config.use_nid is False
    assert cells._make_pmmrec("pmmrec-only-vcl", 0).config.alignment == "vcl"
    assert cells._make_pmmrec("pmmrec-text", 0).config.modality == "text"
    with pytest.raises(KeyError):
        cells._make_pmmrec("pmmrec-wo-everything", 0)


def test_pretrain_model_rejects_id_methods():
    with pytest.raises(ValueError):
        cells.pretrain_model("sasrec", ["bili"], profile="smoke")


def test_source_performance_contract():
    out = cells.source_performance("fpmc", "kwai_food", profile="smoke",
                                   seed=5, with_cold=True)
    assert out["method"] == "fpmc"
    assert set(out["test"]) == {f"{m}@{k}" for m in ("hr", "ndcg")
                                for k in (10, 20, 50)}
    assert "cold" in out and out["cold_examples"] >= 0
    assert out["epochs"] >= 1


def test_transfer_finetune_scratch_contract():
    out = cells.transfer_finetune("grurec", "kwai_food", profile="smoke",
                                  use_pt=False, seed=5)
    assert out["use_pt"] is False
    assert out["curve"], "curve must be recorded"
    assert np.isfinite(out["test"]["hr@10"])


def test_pretrain_then_finetune_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    pre = cells.pretrain_model("unisrec", ["kwai"], profile="smoke", seed=5)
    assert (cache_dir() / (pre["checkpoint"] + ".npz")).exists()
    out = cells.transfer_finetune("unisrec", "kwai_food", profile="smoke",
                                  use_pt=True, checkpoint=pre["checkpoint"],
                                  seed=5)
    assert out["use_pt"] is True
    assert np.isfinite(out["test"]["hr@10"])


def test_design_ablation_validates_kind():
    with pytest.raises(KeyError):
        cells.design_ablation("dropout", 0.5, "kwai_food", profile="smoke")
