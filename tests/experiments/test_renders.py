"""Render functions of every table module, on synthetic results.

These tests build small fake ``run()`` outputs so the render paths
(column ordering, improvement computation, sparklines) are exercised
without any training.
"""

from __future__ import annotations

from repro.data import downstream_names, source_names
from repro.experiments import (figure3_convergence, table3_source,
                               table4_transfer, table5_versatility,
                               table6_single_source, table7_coldstart,
                               table8_ablation)


def _metrics(value: float) -> dict[str, float]:
    return {f"{m}@{k}": value for m in ("hr", "ndcg") for k in (10, 20, 50)}


def test_table3_render_improvement_column():
    table = {ds: {m: _metrics(0.2) for m in table3_source.METHODS}
             for ds in source_names()}
    for ds in source_names():
        table[ds]["pmmrec"] = _metrics(0.4)      # ours doubles the best
    out = table3_source.render({"table": table, "profile": "paper"})
    assert "+100.00%" in out
    assert out.count("\n") >= 24                  # 6 metrics x 4 datasets


def test_table4_render_columns():
    labels = ["sasrec w/o PT"]
    for m in table4_transfer.TRANSFER_METHODS:
        labels += [f"{m} w/o PT", f"{m} w. PT"]
    table = {ds: {lab: _metrics(0.1) for lab in labels}
             for ds in downstream_names()}
    out = table4_transfer.render({"table": table, "profile": "paper"})
    assert "pmmrec w. PT" in out
    assert "Improv." in out


def test_table5_render():
    table = {ds: {lab: _metrics(0.15) for lab in table5_versatility.COLUMNS}
             for ds in downstream_names()}
    out = table5_versatility.render({"table": table, "profile": "paper"})
    assert "M w. PT-I" in out and "15.00" in out


def test_table6_render_marks_homogeneous():
    columns = ["sasrec", "scratch"] + list(source_names())
    table = {ds: {c: _metrics(0.2) for c in columns}
             for ds in downstream_names()}
    out = table6_single_source.render({"table": table, "profile": "paper"})
    assert "*" in out                             # homogeneous marker
    assert "src:bili" in out


def test_table7_render():
    table = {ds: {m: {"hr@10": 0.01, "ndcg@10": 0.005}
                  for m in table7_coldstart.METHODS}
             for ds in source_names()}
    out = table7_coldstart.render({"table": table, "profile": "paper",
                                   "examples": {ds: 42 for ds
                                                in source_names()}})
    assert "1.0000" in out and "42" in out


def test_table8_render():
    table = {ds: {lab: _metrics(0.3) for lab in table8_ablation.VARIANTS}
             for ds in table8_ablation.DATASETS}
    out = table8_ablation.render({"table": table, "profile": "paper"})
    assert "w/o NICL" in out and "only NCL" in out


def test_figure3_render_sparklines():
    curve = [[e, 0.01 * e] for e in range(1, 25)]
    curves = {ds: {lab: curve for lab in figure3_convergence.SETTINGS}
              for ds in downstream_names()}
    out = figure3_convergence.render({"curves": curves, "profile": "paper"})
    assert "w. PT-I" in out
    assert "▁" in out and "█" in out              # sparkline extremes
    assert "best@ep" in out
