"""Experiment runner: cache keys, disk cache, parallel execution."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import cache_dir, cell_key, load_cached, run_cells


def test_cell_key_stable_and_order_insensitive():
    a = cell_key("fn", alpha=1, beta="x")
    b = cell_key("fn", beta="x", alpha=1)
    assert a == b
    assert cell_key("fn", alpha=2, beta="x") != a
    assert cell_key("other", alpha=1, beta="x") != a


def test_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    key = cell_key("fake", value=1)
    assert load_cached(key) is None
    (tmp_path / f"{key}.json").write_text(json.dumps({"hello": 1}))
    assert load_cached(key) == {"hello": 1}


def test_force_bypasses_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    key = cell_key("fake2", value=1)
    (tmp_path / f"{key}.json").write_text(json.dumps({"hello": 1}))
    monkeypatch.setenv("REPRO_FORCE", "1")
    assert load_cached(key) is None


def test_run_cells_executes_and_caches(tmp_path, monkeypatch):
    """Sequential path: results computed once, then replayed from disk."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    # `ablation_variant`-style fake: use a real cheap cell (table stats) —
    # but run_cells resolves names in repro.experiments.cells, so pick the
    # cheapest real one on the smoke profile.
    tasks = {"cell": ("source_performance",
                      dict(method="grurec", dataset_name="kwai_food",
                           profile="smoke", seed=123, with_cold=False))}
    first = run_cells(tasks, workers=1)
    assert "test" in first["cell"]
    files = list(tmp_path.glob("*.json"))
    assert len(files) == 1
    # Second call must not retrain: poison the cache and confirm replay.
    poisoned = {"test": {"hr@10": -1.0}}
    files[0].write_text(json.dumps(poisoned))
    second = run_cells(tasks, workers=1)
    assert second["cell"] == poisoned


def test_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sub"))
    assert cache_dir() == tmp_path / "sub"
    assert cache_dir().exists()
