"""End-to-end integration: the full paper workflow at miniature scale.

One test walks the entire pipeline — build multi-platform data, pre-train
PMMRec with the multi-task objective, transfer components to a downstream
platform, fine-tune with DAP only, and verify the transfer actually moved
information (pre-trained fine-tuning starts above from-scratch training).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (PMMRec, PMMRecConfig, TrainConfig, Trainer,
                   build_dataset, fuse_datasets, transferred_model)
from repro.eval import evaluate_model


@pytest.fixture(scope="module")
def pretrained():
    corpus = fuse_datasets([build_dataset("bili", profile="smoke"),
                            build_dataset("hm", profile="smoke")])
    model = PMMRec(PMMRecConfig(seed=7))
    result = Trainer(model, corpus,
                     TrainConfig(epochs=6, batch_size=32, patience=6,
                                 lr=4e-3, seed=7),
                     pretraining=True).fit()
    return model, result


def test_pretraining_learns(pretrained):
    _, result = pretrained
    assert result.best_metric > 0.05
    assert result.loss_history[-1] < result.loss_history[0]


def test_full_transfer_beats_scratch_at_start(pretrained):
    model, _ = pretrained
    target = build_dataset("hm_shoes", profile="smoke")
    config = TrainConfig(epochs=3, batch_size=16, patience=4, seed=7)

    transferred = transferred_model(model, "full")
    warm = Trainer(transferred, target, config, pretraining=False).fit()

    scratch = PMMRec(PMMRecConfig(seed=7))
    cold = Trainer(scratch, target, config, pretraining=True).fit()

    # The defining transfer signature (paper Fig. 3): a pre-trained model
    # is already useful within the first epochs.
    assert warm.curve[0][1] >= cold.curve[0][1]
    assert warm.best_metric >= cold.best_metric * 0.9


def test_single_modality_transfer_works(pretrained):
    model, _ = pretrained
    target = build_dataset("hm_shoes", profile="smoke")
    deployed = transferred_model(model, "text_only")
    result = Trainer(deployed, target,
                     TrainConfig(epochs=2, batch_size=16, seed=7),
                     pretraining=False).fit()
    metrics = evaluate_model(deployed, target, target.split.test, ks=(10,))
    assert np.isfinite(metrics["hr@10"])
    assert metrics["hr@10"] > 0.0


def test_transfer_preserves_component_weights(pretrained):
    model, _ = pretrained
    deployed = transferred_model(model, "item_encoders")
    src = model.state_dict()
    dst = deployed.state_dict()
    for name in src:
        if name.startswith(("text_encoder.", "vision_encoder.", "fusion.")):
            np.testing.assert_array_equal(src[name], dst[name])
    # The user encoder must be fresh (different init seed path is fine,
    # but identical-to-source would mean we transferred too much).
    same = all(np.array_equal(src[n], dst[n]) for n in src
               if n.startswith("user_encoder."))
    assert not same
