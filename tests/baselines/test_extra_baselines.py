"""BERT4Rec, FPMC and MostPopular (related-work baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BERT4Rec, FPMC, MostPopular, make_baseline
from repro.data import build_dataset, pad_sequences
from repro.eval import evaluate_model
from repro.train import TrainConfig, Trainer


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("bili_cartoon", profile="smoke")


@pytest.fixture(scope="module")
def batch(dataset):
    return pad_sequences(dataset.split.train[:6], max_len=12)


def test_factory_builds_new_baselines(dataset):
    assert isinstance(make_baseline("bert4rec", dataset), BERT4Rec)
    assert isinstance(make_baseline("fpmc", dataset), FPMC)
    assert isinstance(make_baseline("pop", dataset), MostPopular)


def test_bert4rec_cloze_loss_and_grads(dataset, batch):
    model = BERT4Rec(dataset.num_items, dim=16, seed=0)
    loss, metrics = model.training_loss(dataset, batch.item_ids, batch.mask)
    assert np.isfinite(metrics["cloze"])
    loss.backward()
    assert model.item_emb.weight.grad is not None


def test_bert4rec_scores_full_catalog(dataset):
    model = BERT4Rec(dataset.num_items, dim=16, seed=0)
    histories = [ex.history for ex in dataset.split.test[:4]]
    scores = model.score_histories(dataset, histories)
    assert scores.shape == (4, dataset.num_items + 1)
    assert np.isfinite(scores).all()


def test_bert4rec_masks_at_least_one_position(dataset):
    model = BERT4Rec(dataset.num_items, dim=16, mask_prob=0.0001, seed=0)
    batch = pad_sequences(dataset.split.train[:4], max_len=10)
    loss, _ = model.training_loss(dataset, batch.item_ids, batch.mask)
    # With a vanishing mask_prob the per-row guarantee still applies,
    # so the loss is a real number instead of the empty-case 0.
    assert loss.item() != 0.0


def test_bert4rec_trains(dataset):
    model = BERT4Rec(dataset.num_items, dim=16, seed=0)
    result = Trainer(model, dataset,
                     TrainConfig(epochs=6, batch_size=16, patience=6),
                     pretraining=False).fit()
    assert result.best_metric > 0.0


def test_fpmc_transition_learning(dataset, batch):
    model = FPMC(dataset.num_items, dim=16, seed=0)
    loss, _ = model.training_loss(dataset, batch.item_ids, batch.mask)
    loss.backward()
    assert model.prev_emb.weight.grad is not None
    assert model.next_emb.weight.grad is not None
    scores = model.score_histories(
        dataset, [ex.history for ex in dataset.split.test[:3]])
    assert scores.shape == (3, dataset.num_items + 1)


def test_fpmc_empty_batch():
    ds = build_dataset("bili_cartoon", profile="smoke")
    model = FPMC(ds.num_items, dim=8)
    ids = np.array([[5, 0]])
    mask = np.array([[True, False]])
    loss, metrics = model.training_loss(ds, ids, mask)
    assert metrics["total"] == 0.0


def test_most_popular_ranks_by_frequency(dataset):
    model = MostPopular(dataset.num_items).fit_counts(dataset.split.train)
    scores = model.score_histories(dataset, [np.array([1, 2])])
    freq_order = np.argsort(-scores[0, 1:]) + 1
    counts = np.zeros(dataset.num_items + 1)
    for seq in dataset.split.train:
        np.add.at(counts, seq, 1)
    assert counts[freq_order[0]] == counts[1:].max()


def test_most_popular_is_a_weak_floor(dataset):
    """Popularity must underperform a trained sequential model."""
    pop = MostPopular(dataset.num_items).fit_counts(dataset.split.train)
    pop_metrics = evaluate_model(pop, dataset, dataset.split.test, ks=(10,))
    sasrec = make_baseline("sasrec", dataset, seed=0)
    Trainer(sasrec, dataset, TrainConfig(epochs=8, batch_size=16,
                                         patience=8),
            pretraining=False).fit()
    sas_metrics = evaluate_model(sasrec, dataset, dataset.split.test,
                                 ks=(10,))
    assert sas_metrics["ndcg@10"] > pop_metrics["ndcg@10"]
