"""The eight baseline recommenders: shared protocol and specifics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (BASELINE_NAMES, TRANSFERABLE_BASELINES,
                             CARCAPlusPlus, GRURec, MoEAdaptor,
                             MoRecPlusPlus, ProductQuantizer, SASRec, UniSRec,
                             VQRec, frozen_text_features,
                             frozen_vision_features, kmeans, make_baseline)
from repro.data import build_dataset, pad_sequences
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("kwai_food", profile="smoke")


@pytest.fixture(scope="module")
def batch(dataset):
    return pad_sequences(dataset.split.train[:6], max_len=12)


@pytest.mark.parametrize("name", BASELINE_NAMES)
def test_baseline_protocol(name, dataset, batch):
    """Every baseline trains, backprops and scores the full catalogue."""
    model = make_baseline(name, dataset, seed=0)
    loss, metrics = model.training_loss(dataset, batch.item_ids, batch.mask)
    assert np.isfinite(metrics["total"])
    loss.backward()
    grads = [p for p in model.parameters()
             if p.requires_grad and p.grad is not None]
    assert grads, f"{name} produced no gradients"
    scores = model.score_histories(
        dataset, [ex.history for ex in dataset.split.test[:3]])
    assert scores.shape == (3, dataset.num_items + 1)
    assert np.isfinite(scores).all()


def test_make_baseline_unknown():
    ds = build_dataset("kwai_food", profile="smoke")
    with pytest.raises(KeyError):
        make_baseline("two-tower", ds)


def test_id_models_embed_catalogue_size(dataset):
    model = GRURec(dataset.num_items, dim=16)
    assert model.item_emb.num_embeddings == dataset.num_items + 1


def test_transferable_models_share_weights_across_datasets(dataset):
    """A transferable model must run on a *different* dataset unchanged."""
    other = build_dataset("hm_shoes", profile="smoke")
    for name in TRANSFERABLE_BASELINES:
        model = make_baseline(name, dataset, seed=0)
        if name == "vqrec":
            model.fit_codebooks(dataset)
        scores = model.score_histories(
            other, [ex.history for ex in other.split.test[:2]])
        assert scores.shape == (2, other.num_items + 1)


def test_sasrec_is_causal(dataset):
    model = SASRec(dataset.num_items, dim=16, seed=0)
    model.eval()
    reps = Tensor(np.random.default_rng(0).normal(size=(1, 5, 16)))
    mask = np.ones((1, 5), dtype=bool)
    base = model.sequence_hidden(reps, mask).data.copy()
    perturbed = reps.data.copy()
    perturbed[0, 4] += 10.0
    out = model.sequence_hidden(Tensor(perturbed), mask).data
    np.testing.assert_allclose(out[0, :4], base[0, :4], atol=1e-9)


def test_frozen_features_cached_and_shaped(dataset):
    a = frozen_text_features(dataset, dim=32)
    b = frozen_text_features(dataset, dim=32)
    assert a is b
    assert a.shape == (dataset.num_items + 1, 32)
    np.testing.assert_array_equal(a[0], 0.0)
    v = frozen_vision_features(dataset, dim=32)
    assert v.shape == (dataset.num_items + 1, 32)


def test_frozen_text_features_are_anisotropic(dataset):
    """The deliberate anisotropy: one direction dominates the spectrum."""
    feats = frozen_text_features(dataset, dim=32)[1:]
    centered = feats - feats.mean(axis=0)
    singular = np.linalg.svd(feats, compute_uv=False)
    assert singular[0] > 3.0 * np.linalg.svd(centered,
                                             compute_uv=False)[1]


def test_moe_adaptor_mixes_experts(rng):
    adaptor = MoEAdaptor(8, num_experts=3)
    out = adaptor(Tensor(rng.normal(size=(5, 8))))
    assert out.shape == (5, 8)


def test_kmeans_clusters_separated_data():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(40, 4)) + 10.0
    b = rng.normal(size=(40, 4)) - 10.0
    cents = kmeans(np.concatenate([a, b]), 2, rng)
    assert cents.shape == (2, 4)
    signs = sorted(np.sign(cents[:, 0]))
    assert signs == [-1.0, 1.0]


def test_kmeans_handles_fewer_points_than_clusters():
    rng = np.random.default_rng(0)
    cents = kmeans(rng.normal(size=(3, 4)), 8, rng)
    assert cents.shape == (8, 4)


def test_product_quantizer_roundtrip(rng):
    pq = ProductQuantizer(dim=8, num_groups=2, codes_per_group=4)
    data = rng.normal(size=(60, 8))
    pq.fit(data)
    codes = pq.encode(data)
    assert codes.shape == (60, 2)
    assert codes.min() >= 0 and codes.max() < 4


def test_product_quantizer_validates_dims():
    with pytest.raises(ValueError):
        ProductQuantizer(dim=10, num_groups=3)


def test_product_quantizer_requires_fit(rng):
    pq = ProductQuantizer(dim=8, num_groups=2)
    with pytest.raises(RuntimeError):
        pq.encode(rng.normal(size=(5, 8)))


def test_vqrec_codebooks_travel_with_state(dataset):
    source = VQRec(dim=32, seed=0)
    source.fit_codebooks(dataset)
    state = source.state_dict()
    target = VQRec(dim=32, seed=1)
    target.load_state_dict(state)
    # Target must quantize with the *source* codebooks, not refit.
    np.testing.assert_array_equal(target.codebooks.data,
                                  source.codebooks.data)
    other = build_dataset("hm_shoes", profile="smoke")
    scores = target.score_histories(
        other, [ex.history for ex in other.split.test[:2]])
    assert np.isfinite(scores).all()


def test_morec_finetunes_top_blocks_only():
    model = MoRecPlusPlus(dim=32, finetune_top_blocks=1)
    bottom = list(model.text_encoder.blocks)[0]
    assert all(not p.requires_grad for p in bottom.parameters())
    assert all(p.requires_grad for p in model.encoder.parameters())


def test_carca_uses_both_feature_tables(dataset, batch):
    model = CARCAPlusPlus(dataset.num_items, dim=32, seed=0)
    reps = model.item_representations(dataset, np.array([1, 2, 3]))
    assert reps.shape == (3, 32)
