"""Tokenizer and text encoder (MiniRoBERTa)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import TEXT_CLS, TEXT_PAD, build_dataset, get_world, text_vocab_size
from repro.text import (MiniRoBERTa, TextEncoderConfig, Tokenizer,
                        pretrained_text_encoder)


@pytest.fixture(scope="module")
def tokenizer():
    return Tokenizer()


def test_vocab_layout(tokenizer):
    assert tokenizer.decode(np.array([TEXT_PAD])) == []
    assert tokenizer.decode(np.array([TEXT_CLS])) == ["<cls>"]
    assert tokenizer.vocab_size == text_vocab_size()


def test_decode_names_are_meaningful(tokenizer):
    words = tokenizer.decode(np.array([2, 3]))
    assert words == ["w0", "w1"]
    tag = tokenizer.decode(np.array([tokenizer.vocab_size - 1]))
    assert tag[0].startswith("tag:")


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(2, 100), min_size=1, max_size=10))
def test_encode_decode_roundtrip(ids):
    tokenizer = Tokenizer()
    words = tokenizer.decode(np.array(ids))
    back = tokenizer.encode(words)
    np.testing.assert_array_equal(back, ids)


def test_encode_pads_to_max_len(tokenizer):
    out = tokenizer.encode(["w0", "w1"], max_len=5)
    np.testing.assert_array_equal(out, [2, 3, 0, 0, 0])


def test_with_cls_and_mask(tokenizer):
    ids = np.array([[5, 6, 0], [7, 0, 0]])
    with_cls = tokenizer.with_cls(ids)
    assert with_cls.shape == (2, 4)
    assert (with_cls[:, 0] == TEXT_CLS).all()
    mask = tokenizer.attention_mask(with_cls)
    np.testing.assert_array_equal(mask[1], [True, True, False, False])


def test_text_encoder_shapes():
    config = TextEncoderConfig(vocab_size=text_vocab_size(), dim=16,
                               num_blocks=1, num_heads=2)
    encoder = MiniRoBERTa(config)
    tokens = np.array([[5, 6, 7, 0, 0], [8, 9, 0, 0, 0]])
    cls, hidden, mask = encoder(tokens)
    assert cls.shape == (2, 16)
    assert hidden.shape == (2, 6, 16)     # +1 for CLS
    assert mask.shape == (2, 6)
    assert mask[0].sum() == 4 and mask[1].sum() == 3


def test_text_encoder_ignores_padding():
    """CLS output must not change when padding content changes."""
    config = TextEncoderConfig(vocab_size=text_vocab_size(), dim=16,
                               num_blocks=2, num_heads=2, dropout=0.0)
    encoder = MiniRoBERTa(config)
    encoder.eval()
    a = np.array([[5, 6, 0, 0]])
    cls_a, _, _ = encoder(a)
    # Same tokens, shorter pad tail: representations must agree.
    b = np.array([[5, 6, 0, 0, 0, 0]])
    cls_b, _, _ = encoder(b)
    np.testing.assert_allclose(cls_a.data, cls_b.data, atol=1e-10)


def test_pretrained_encoder_deterministic():
    world = get_world()
    a = pretrained_text_encoder(world, dim=16, seed=3)
    b = pretrained_text_encoder(world, dim=16, seed=3)
    np.testing.assert_array_equal(a.token_emb.weight.data,
                                  b.token_emb.weight.data)
    c = pretrained_text_encoder(world, dim=16, seed=4)
    assert not np.array_equal(a.token_emb.weight.data,
                              c.token_emb.weight.data)


def test_pretrained_features_reflect_semantics():
    """Pooled token embeddings must mirror the latent similarity structure.

    This is the designed property of the synthetic pre-training: the text
    of similar items (in the text-view subspace of the latent) uses similar
    tokens, so pooled embeddings correlate with latent geometry. Tested via
    representational similarity (correlation of pairwise-sim matrices).
    """
    world = get_world()
    encoder = pretrained_text_encoder(world, dim=32)
    ds = build_dataset("bili", profile="smoke")
    ids = np.arange(1, min(ds.num_items, 120) + 1)
    tokens = ds.text_tokens[ids]
    mask = (tokens != 0).astype(float)
    table = encoder.token_emb.weight.data
    pooled = ((table[tokens] * mask[:, :, None]).sum(axis=1)
              / mask.sum(axis=1, keepdims=True))

    def pairwise(f):
        f = f - f.mean(axis=0)
        f = f / (np.linalg.norm(f, axis=1, keepdims=True) + 1e-12)
        sims = f @ f.T
        return sims[~np.eye(len(f), dtype=bool)]

    latents = ds.item_latents[ids] * world.text_view
    corr = np.corrcoef(pairwise(pooled), pairwise(latents))[0, 1]
    assert corr > 0.3


def test_finetune_depth_freezes_lower_blocks():
    world = get_world()
    encoder = pretrained_text_encoder(world, dim=16, num_blocks=2)
    encoder.set_finetune_depth(1)
    frozen = [p for p in encoder.token_emb.parameters()]
    assert all(not p.requires_grad for p in frozen)
    top_block = list(encoder.blocks)[-1]
    assert all(p.requires_grad for p in top_block.parameters())
    bottom_block = list(encoder.blocks)[0]
    assert all(not p.requires_grad for p in bottom_block.parameters())
