"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2.0 * eps)
    return grad


def check_grad(build_loss, x0: np.ndarray, atol: float = 1e-5,
               rtol: float = 1e-4) -> None:
    """Assert autograd gradient of ``build_loss`` matches finite differences.

    ``build_loss(tensor) -> Tensor`` must return a scalar loss built from a
    leaf tensor wrapping ``x0``.
    """
    leaf = nn.Tensor(x0.copy(), requires_grad=True)
    loss = build_loss(leaf)
    loss.backward()
    analytic = leaf.grad

    def scalar_fn(arr):
        with nn.no_grad():
            return float(build_loss(nn.Tensor(arr)).data)

    numeric = numeric_grad(scalar_fn, x0.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
