"""Float32 end-to-end smoke: one PMMRec step and one baseline step.

Builds identical models (same seeds) in float32 and float64, runs one
optimizer step on the same batch, and checks that (a) everything stays in
the selected dtype with finite losses and (b) losses and full-catalogue
validation metrics agree across precisions within 1e-2 relative tolerance
— the evidence that the paper's pipeline can run in float32.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn as nn
from repro.baselines import SASRec
from repro.core import PMMRec, PMMRecConfig
from repro.data import build_dataset, pad_sequences
from repro.eval.evaluator import evaluate_model


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("bili_food", profile="smoke")


def _one_step(model, dataset, batch):
    opt = nn.AdamW([p for p in model.parameters() if p.requires_grad],
                   lr=1e-3)
    opt.zero_grad()
    loss, _ = model.training_loss(dataset, batch.item_ids, batch.mask)
    loss.backward()
    nn.clip_grad_norm(opt.parameters, 5.0)
    opt.step()
    return loss


def test_pmmrec_step_and_eval_float32_matches_float64(dataset):
    batch = pad_sequences(dataset.split.train[:8], max_len=20)
    results = {}
    for dtype in (np.float64, np.float32):
        with nn.default_dtype(dtype):
            model = PMMRec(PMMRecConfig(seed=0))
        assert model.param_dtype == dtype
        loss = _one_step(model, dataset, batch)
        assert loss.data.dtype == dtype
        assert np.isfinite(float(loss.data))
        grads = {p.grad.dtype for p in model.parameters()
                 if p.grad is not None}
        assert grads == {np.dtype(dtype)}
        metrics = evaluate_model(model, dataset, dataset.split.valid[:24],
                                 ks=(10,))
        results[np.dtype(dtype).name] = (float(loss.data), metrics)

    loss64, metrics64 = results["float64"]
    loss32, metrics32 = results["float32"]
    assert loss32 == pytest.approx(loss64, rel=1e-2)
    for key in metrics64:
        assert metrics32[key] == pytest.approx(metrics64[key], rel=1e-2,
                                               abs=1e-9), key


def test_sasrec_baseline_step_float32_matches_float64(dataset):
    batch = pad_sequences(dataset.split.train[:8], max_len=20)
    results = {}
    for dtype in (np.float64, np.float32):
        with nn.default_dtype(dtype):
            model = SASRec(dataset.num_items, dim=32, seed=0)
        loss = _one_step(model, dataset, batch)
        assert loss.data.dtype == dtype
        assert np.isfinite(float(loss.data))
        metrics = evaluate_model(model, dataset, dataset.split.valid[:24],
                                 ks=(10,))
        results[np.dtype(dtype).name] = (float(loss.data), metrics)

    loss64, metrics64 = results["float64"]
    loss32, metrics32 = results["float32"]
    assert loss32 == pytest.approx(loss64, rel=1e-2)
    for key in metrics64:
        assert metrics32[key] == pytest.approx(metrics64[key], rel=1e-2,
                                               abs=1e-9), key


@pytest.mark.parametrize("name", ["sasrec", "grurec", "nextitnet", "fdsa",
                                  "carca++", "unisrec"])
def test_baseline_losses_stay_float32(dataset, name):
    """No baseline may silently upcast a float32 graph back to float64
    (frozen feature tables and mask constants are the usual culprits)."""
    from repro.baselines import make_baseline
    from repro.data import pad_sequences
    with nn.default_dtype(np.float32):
        model = make_baseline(name, dataset, seed=0)
    reps = model.item_representations(dataset, np.arange(1, 5))
    assert reps.data.dtype == np.float32, name
    batch = pad_sequences(dataset.split.train[:4], max_len=16)
    loss, _ = model.training_loss(dataset, batch.item_ids, batch.mask)
    assert loss.data.dtype == np.float32, name
    assert np.isfinite(float(loss.data))


def test_trainer_dtype_knob_casts_model(dataset):
    from repro.train import TrainConfig, Trainer
    model = SASRec(dataset.num_items, dim=32, seed=0)
    assert model.param_dtype == np.float64
    trainer = Trainer(model, dataset,
                      TrainConfig(epochs=1, batch_size=8, dtype="float32"))
    assert model.param_dtype == np.float32
    assert all(m.dtype == np.float32 for m in trainer.optimizer._m)
    batch = pad_sequences(dataset.split.train[:4], max_len=16)
    loss, _ = model.training_loss(dataset, batch.item_ids, batch.mask)
    assert loss.data.dtype == np.float32
