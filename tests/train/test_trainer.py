"""The model-agnostic trainer: learning, early stopping, state restore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SASRec
from repro.core import PMMRec, PMMRecConfig
from repro.data import build_dataset
from repro.eval import evaluate_model
from repro.train import TrainConfig, Trainer


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("kwai_food", profile="smoke")


def test_training_improves_over_untrained():
    # Use a dataset with enough items that HR@10 has headroom.
    ds = build_dataset("bili", profile="smoke")
    model = SASRec(ds.num_items, dim=16, seed=0)
    before = evaluate_model(model, ds, ds.split.valid,
                            ks=(10,))["ndcg@10"]
    result = Trainer(model, ds,
                     TrainConfig(epochs=8, batch_size=16, patience=8,
                                 metric="ndcg@10"),
                     pretraining=False).fit()
    assert result.best_metric > before
    assert len(result.loss_history) == result.epochs_run
    # Losses should broadly decrease.
    assert result.loss_history[-1] < result.loss_history[0]


def test_early_stopping_stops(dataset):
    model = SASRec(dataset.num_items, dim=16, seed=0)
    config = TrainConfig(epochs=50, batch_size=16, patience=2)
    result = Trainer(model, dataset, config, pretraining=False).fit()
    assert result.epochs_run < 50


def test_best_state_restored(dataset):
    """After fit(), the model must be at its best-validation state."""
    model = SASRec(dataset.num_items, dim=16, seed=0)
    config = TrainConfig(epochs=12, batch_size=16, patience=3)
    result = Trainer(model, dataset, config, pretraining=False).fit()
    metric = evaluate_model(model, dataset, dataset.split.valid,
                            ks=(10,))["hr@10"]
    assert metric == pytest.approx(result.best_metric, abs=1e-9)


def test_curve_records_every_eval(dataset):
    model = SASRec(dataset.num_items, dim=16, seed=0)
    config = TrainConfig(epochs=6, batch_size=16, patience=10, eval_every=2)
    result = Trainer(model, dataset, config, pretraining=False).fit()
    epochs = [e for e, _ in result.curve]
    assert epochs == [2, 4, 6]


def test_trainer_works_with_pmmrec_multitask(dataset):
    model = PMMRec(PMMRecConfig(dim=32, seed=0))
    config = TrainConfig(epochs=2, batch_size=16, patience=5)
    result = Trainer(model, dataset, config, pretraining=True).fit()
    assert result.epochs_run == 2
    assert np.isfinite(result.best_metric)


def test_trainer_skips_frozen_parameters(dataset):
    model = PMMRec(PMMRecConfig(dim=32, seed=0))
    trainer = Trainer(model, dataset, TrainConfig(epochs=1, batch_size=16),
                      pretraining=True)
    trainable = {id(p) for p in trainer.optimizer.parameters}
    frozen = [p for p in model.parameters() if not p.requires_grad]
    assert frozen, "expected frozen lower encoder blocks"
    assert all(id(p) not in trainable for p in frozen)


def test_warmup_cosine_schedule_integration(dataset):
    model = SASRec(dataset.num_items, dim=16, seed=0)
    config = TrainConfig(epochs=4, batch_size=16, patience=10,
                         warmup_frac=0.25, lr=1.0)
    trainer = Trainer(model, dataset, config, pretraining=False)
    assert trainer.schedule is not None
    trainer.fit()
    # After full training the cosine decay must have reduced the LR.
    assert trainer.optimizer.lr < 1.0


def test_no_schedule_by_default(dataset):
    model = SASRec(dataset.num_items, dim=16, seed=0)
    trainer = Trainer(model, dataset, TrainConfig(epochs=1, batch_size=16),
                      pretraining=False)
    assert trainer.schedule is None
