"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_datasets_command(capsys):
    assert main(["datasets", "--profile", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out and "kwai_food" in out


def test_train_command_baseline(capsys, tmp_path):
    ckpt = str(tmp_path / "model.npz")
    code = main(["train", "--dataset", "kwai_food", "--model", "sasrec",
                 "--profile", "smoke", "--epochs", "2", "--save", ckpt])
    assert code == 0
    out = capsys.readouterr().out
    assert "test:" in out
    assert (tmp_path / "model.npz").exists()


def test_train_command_pmmrec_text(capsys):
    code = main(["train", "--dataset", "kwai_food", "--model",
                 "pmmrec-text", "--profile", "smoke", "--epochs", "1"])
    assert code == 0
    assert "best val" in capsys.readouterr().out


def test_experiment_command_unknown(capsys):
    assert main(["experiment", "tableX"]) == 2


def test_experiment_command_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_serve_smoke_with_ivf_reports_fallback_at_tiny_scale(capsys):
    # At smoke scale (18 items, k=10) the k_near_catalog guard keeps
    # the ANN path off even with --ann-min-items 1: this covers the
    # fallback routing and its reporting, not engaged-IVF serving (the
    # CI serve-smoke job covers that on the paper-profile catalogue).
    code = main(["serve", "--scenarios", "kwai_food:sasrec",
                 "--profile", "smoke", "--retrieval", "ivf",
                 "--ann-min-items", "1", "--smoke"])
    assert code == 0
    out = capsys.readouterr().out
    assert "retrieval=ivf" in out and "PASS" in out
    assert "ann_batches=0" in out and "k_near_catalog" in out


def test_bench_serve_labels_fallback_honestly(capsys):
    # At smoke scale (18 items, k=10) the ANN path must fall back, and
    # the benchmark table must say so instead of claiming LSH numbers.
    code = main(["bench-serve", "--dataset", "kwai_food", "--model",
                 "sasrec", "--profile", "smoke", "--requests", "8",
                 "--batch", "4", "--retrieval", "lsh",
                 "--ann-min-items", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "retrieval=lsh" in out
    assert "batched-exact-fallback-top10" in out


def test_bench_serve_labels_engaged_ann_backend(capsys):
    code = main(["bench-serve", "--dataset", "hm", "--model", "sasrec",
                 "--profile", "paper", "--requests", "8", "--batch", "4",
                 "--retrieval", "ivf", "--ann-min-items", "1",
                 "--nlist", "8", "--nprobe", "8"])
    assert code == 0
    assert "batched-ivf-top10" in capsys.readouterr().out


def test_transfer_command(capsys):
    code = main(["transfer", "--sources", "kwai", "--target", "kwai_food",
                 "--profile", "smoke", "--pretrain-epochs", "1",
                 "--finetune-epochs", "1", "--setting", "text_only"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pre-training on kwai" in out
    assert "[text_only]" in out
