"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_datasets_command(capsys):
    assert main(["datasets", "--profile", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out and "kwai_food" in out


def test_train_command_baseline(capsys, tmp_path):
    ckpt = str(tmp_path / "model.npz")
    code = main(["train", "--dataset", "kwai_food", "--model", "sasrec",
                 "--profile", "smoke", "--epochs", "2", "--save", ckpt])
    assert code == 0
    out = capsys.readouterr().out
    assert "test:" in out
    assert (tmp_path / "model.npz").exists()


def test_train_command_pmmrec_text(capsys):
    code = main(["train", "--dataset", "kwai_food", "--model",
                 "pmmrec-text", "--profile", "smoke", "--epochs", "1"])
    assert code == 0
    assert "best val" in capsys.readouterr().out


def test_experiment_command_unknown(capsys):
    assert main(["experiment", "tableX"]) == 2


def test_experiment_command_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_serve_smoke_with_ivf_reports_fallback_at_tiny_scale(capsys):
    # At smoke scale (18 items, k=10) the k_near_catalog guard keeps
    # the ANN path off even with --ann-min-items 1: this covers the
    # fallback routing and its reporting, not engaged-IVF serving (the
    # CI serve-smoke job covers that on the paper-profile catalogue).
    code = main(["serve", "--scenarios", "kwai_food:sasrec",
                 "--profile", "smoke", "--retrieval", "ivf",
                 "--ann-min-items", "1", "--smoke"])
    assert code == 0
    out = capsys.readouterr().out
    assert "retrieval=ivf" in out and "PASS" in out
    assert "ann_batches=0" in out and "k_near_catalog" in out


def test_bench_serve_labels_fallback_honestly(capsys):
    # At smoke scale (18 items, k=10) the ANN path must fall back, and
    # the benchmark table must say so instead of claiming LSH numbers.
    code = main(["bench-serve", "--dataset", "kwai_food", "--model",
                 "sasrec", "--profile", "smoke", "--requests", "8",
                 "--batch", "4", "--retrieval", "lsh",
                 "--ann-min-items", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "retrieval=lsh" in out
    assert "batched-exact-fallback-top10" in out


def test_bench_serve_labels_engaged_ann_backend(capsys):
    code = main(["bench-serve", "--dataset", "hm", "--model", "sasrec",
                 "--profile", "paper", "--requests", "8", "--batch", "4",
                 "--retrieval", "ivf", "--ann-min-items", "1",
                 "--nlist", "8", "--nprobe", "8"])
    assert code == 0
    assert "batched-ivf-top10" in capsys.readouterr().out


def test_transfer_command(capsys):
    code = main(["transfer", "--sources", "kwai", "--target", "kwai_food",
                 "--profile", "smoke", "--pretrain-epochs", "1",
                 "--finetune-epochs", "1", "--setting", "text_only"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pre-training on kwai" in out
    assert "[text_only]" in out


def test_serve_smoke_enables_self_monitoring_by_default(capsys):
    code = main(["serve", "--scenarios", "kwai_food:sasrec",
                 "--profile", "smoke", "--smoke"])
    assert code == 0
    out = capsys.readouterr().out
    assert "self-monitoring: sampling every 1s" in out
    assert "serve smoke: PASS" in out


def test_serve_smoke_no_monitor_flag(capsys):
    code = main(["serve", "--scenarios", "kwai_food:sasrec",
                 "--profile", "smoke", "--smoke", "--no-monitor"])
    assert code == 0
    out = capsys.readouterr().out
    assert "self-monitoring" not in out


@pytest.fixture()
def live_server():
    from repro.serve import ModelRegistry, RecommendationService, make_server
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    service = RecommendationService(registry, max_batch=8, cache_size=64)
    monitor = service.enable_monitoring(start=False)
    monitor.timeline.sample()
    server = make_server(service, port=0)
    server.start_background()
    yield server
    server.shutdown()
    server.server_close()
    service.close()


def test_top_once_renders_dashboard(capsys, live_server):
    assert main(["top", "--once", "--url", live_server.url]) == 0
    out = capsys.readouterr().out
    assert "repro top —" in out
    assert "health: OK" in out
    assert "monitoring: on" in out
    assert "\x1b[2J" not in out          # --once never clears the screen


def test_stats_command_tabulates_metrics(capsys, live_server):
    assert main(["stats", "--url", live_server.url]) == 0
    out = capsys.readouterr().out
    assert "repro_http_requests_total" in out


def test_stats_watch_reuses_refresh_loop(capsys, live_server, monkeypatch):
    import repro.obs.top as top
    monkeypatch.setattr(top.time, "sleep",
                        lambda _s: (_ for _ in ()).throw(KeyboardInterrupt))
    assert main(["stats", "--watch", "5", "--url", live_server.url]) == 0
    out = capsys.readouterr().out
    assert "repro_http_requests_total" in out
    assert "\x1b[2J" in out              # the clear-and-redraw loop ran
