"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_datasets_command(capsys):
    assert main(["datasets", "--profile", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out and "kwai_food" in out


def test_train_command_baseline(capsys, tmp_path):
    ckpt = str(tmp_path / "model.npz")
    code = main(["train", "--dataset", "kwai_food", "--model", "sasrec",
                 "--profile", "smoke", "--epochs", "2", "--save", ckpt])
    assert code == 0
    out = capsys.readouterr().out
    assert "test:" in out
    assert (tmp_path / "model.npz").exists()


def test_train_command_pmmrec_text(capsys):
    code = main(["train", "--dataset", "kwai_food", "--model",
                 "pmmrec-text", "--profile", "smoke", "--epochs", "1"])
    assert code == 0
    assert "best val" in capsys.readouterr().out


def test_experiment_command_unknown(capsys):
    assert main(["experiment", "tableX"]) == 2


def test_experiment_command_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_transfer_command(capsys):
    code = main(["transfer", "--sources", "kwai", "--target", "kwai_food",
                 "--profile", "smoke", "--pretrain-epochs", "1",
                 "--finetune-epochs", "1", "--setting", "text_only"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pre-training on kwai" in out
    assert "[text_only]" in out
