"""PMMRec model wiring, modality switches and component transfer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (PMMRec, PMMRecConfig, TRANSFER_SETTINGS,
                        build_target_model, transfer_components,
                        transferred_model)
from repro.data import build_dataset, pad_sequences


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("kwai_food", profile="smoke")


@pytest.fixture(scope="module")
def batch(dataset):
    return pad_sequences(dataset.split.train[:6], max_len=12)


def test_config_validation():
    with pytest.raises(ValueError):
        PMMRecConfig(alignment="bogus")
    with pytest.raises(ValueError):
        PMMRecConfig(modality="audio")
    with pytest.raises(ValueError):
        PMMRecConfig(temperature=0.0)
    with pytest.raises(ValueError):
        PMMRecConfig(nid_shuffle_frac=1.5)


def test_encode_items_multi(dataset):
    model = PMMRec(PMMRecConfig(dim=32))
    enc = model.encode_items(dataset, np.array([1, 2, 3]))
    assert enc.sequence.shape == (3, 32)
    assert enc.text_cls.shape == (3, 32)
    assert enc.vision_cls.shape == (3, 32)


@pytest.mark.parametrize("modality,has_text,has_vision",
                         [("text", True, False), ("vision", False, True)])
def test_encode_items_single_modality(dataset, modality, has_text,
                                      has_vision):
    model = PMMRec(PMMRecConfig(dim=32, modality=modality))
    enc = model.encode_items(dataset, np.array([1, 2]))
    assert enc.sequence.shape == (2, 32)
    assert (enc.text_cls is not None) == has_text
    assert (enc.vision_cls is not None) == has_vision


def test_training_loss_terms(dataset, batch):
    model = PMMRec(PMMRecConfig(dim=32))
    loss, metrics = model.training_loss(dataset, batch.item_ids, batch.mask)
    assert {"dap", "alignment", "nid", "rcl", "total"} <= set(metrics)
    assert metrics["total"] == pytest.approx(
        float(loss.data), rel=1e-9)
    assert np.isfinite(metrics["total"])


def test_finetune_loss_is_dap_only(dataset, batch):
    model = PMMRec(PMMRecConfig(dim=32))
    _, metrics = model.training_loss(dataset, batch.item_ids, batch.mask,
                                     pretraining=False)
    assert set(metrics) == {"dap", "total"}


def test_loss_toggles(dataset, batch):
    model = PMMRec(PMMRecConfig(dim=32, use_nid=False, use_rcl=False,
                                alignment="none"))
    _, metrics = model.training_loss(dataset, batch.item_ids, batch.mask)
    assert "nid" not in metrics and "rcl" not in metrics
    assert "alignment" not in metrics


def test_encode_catalog_row0_zero(dataset):
    model = PMMRec(PMMRecConfig(dim=32))
    catalog = model.encode_catalog(dataset)
    assert catalog.shape == (dataset.num_items + 1, 32)
    np.testing.assert_array_equal(catalog[0], 0.0)
    assert np.abs(catalog[1:]).sum() > 0


def test_score_histories_shape(dataset):
    model = PMMRec(PMMRecConfig(dim=32))
    histories = [ex.history for ex in dataset.split.test[:5]]
    scores = model.score_histories(dataset, histories)
    assert scores.shape == (5, dataset.num_items + 1)


def test_scoring_is_deterministic_in_eval(dataset):
    model = PMMRec(PMMRecConfig(dim=32))
    histories = [ex.history for ex in dataset.split.test[:3]]
    a = model.score_histories(dataset, histories)
    b = model.score_histories(dataset, histories)
    np.testing.assert_allclose(a, b, atol=1e-12)


def test_transfer_settings_cover_paper_table1():
    assert set(TRANSFER_SETTINGS) == {"full", "item_encoders",
                                      "user_encoder", "text_only",
                                      "vision_only"}


@pytest.mark.parametrize("setting,modality", [
    ("full", "multi"), ("item_encoders", "multi"), ("user_encoder", "multi"),
    ("text_only", "text"), ("vision_only", "vision")])
def test_build_target_model_modality(setting, modality):
    target = build_target_model(PMMRecConfig(dim=32), setting)
    assert target.config.modality == modality


def test_transfer_components_copies_only_named(dataset):
    source = PMMRec(PMMRecConfig(dim=32, seed=1))
    # make the source distinctive
    for p in source.parameters():
        p.data = p.data + 1.0
    target = build_target_model(source.config, "user_encoder")
    before_text = target.text_encoder.state_dict()
    transfer_components(source, target, "user_encoder")
    np.testing.assert_array_equal(
        target.user_encoder.pos_emb.weight.data,
        source.user_encoder.pos_emb.weight.data)
    # Text encoder untouched.
    after_text = target.text_encoder.state_dict()
    for name in before_text:
        np.testing.assert_array_equal(before_text[name], after_text[name])


def test_transferred_model_full_matches_source(dataset):
    source = PMMRec(PMMRecConfig(dim=32, seed=2))
    target = transferred_model(source, "full")
    for name, value in source.state_dict().items():
        if name.startswith(("text_encoder.", "vision_encoder.", "fusion.",
                            "user_encoder.")):
            np.testing.assert_array_equal(value, target.state_dict()[name])


def test_transfer_unknown_setting_raises():
    source = PMMRec(PMMRecConfig(dim=32))
    with pytest.raises(KeyError):
        transferred_model(source, "everything")
    with pytest.raises(KeyError):
        build_target_model(PMMRecConfig(dim=32), "nothing")


def test_text_only_transfer_runs_end_to_end(dataset):
    """A text-only transferred model must score without vision features."""
    source = PMMRec(PMMRecConfig(dim=32, seed=3))
    target = transferred_model(source, "text_only")
    histories = [ex.history for ex in dataset.split.test[:3]]
    scores = target.score_histories(dataset, histories)
    assert np.isfinite(scores).all()
