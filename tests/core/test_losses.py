"""PMMRec objectives: DAP, NICL family, NID, RCL (paper Eq. 5-12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.losses import (alignment_loss, batch_structure, dap_loss,
                               masked_mean_pool, nid_loss, rcl_loss)
from repro.nn.modules import Linear
from repro.nn.tensor import Tensor

from ..conftest import check_grad


@pytest.fixture
def small_batch():
    # Two users, one shared item (3), padding on the second row.
    item_ids = np.array([[1, 2, 3, 4], [3, 5, 6, 0]])
    mask = np.array([[True] * 4, [True, True, True, False]])
    return item_ids, mask


def test_batch_structure(small_batch):
    item_ids, mask = small_batch
    unique_ids, inverse, owner = batch_structure(item_ids, mask)
    np.testing.assert_array_equal(unique_ids, [1, 2, 3, 4, 5, 6])
    assert inverse[0, 2] == inverse[1, 0]        # shared item 3
    assert owner.shape == (2, 6)
    assert owner[0, 2] and owner[1, 2]           # both users own item 3
    assert owner[0, 0] and not owner[1, 0]       # item 1 only user 0
    # Padding position contributes nothing.
    assert owner[1].sum() == 3


def test_dap_loss_value_matches_manual(rng, small_batch):
    item_ids, mask = small_batch
    unique_ids, inverse, owner = batch_structure(item_ids, mask)
    hidden = Tensor(rng.normal(size=(2, 4, 8)))
    reps = Tensor(rng.normal(size=(6, 8)))
    loss = dap_loss(hidden, reps, inverse, mask, owner).item()

    # Manual: anchors are positions with a valid next item.
    total, count = 0.0, 0
    for u in range(2):
        for l in range(3):
            if not (mask[u, l] and mask[u, l + 1]):
                continue
            h = hidden.data[u, l]
            scores = reps.data @ h
            target = inverse[u, l + 1]
            cand = ~owner[u].copy()
            cand[target] = True
            exp = np.exp(scores - scores[cand].max())
            total += -np.log(exp[target] / exp[cand].sum())
            count += 1
    assert loss == pytest.approx(total / count, rel=1e-6)


def test_dap_loss_excludes_own_items_from_negatives(rng):
    """A user's *other* interacted items must not appear as negatives."""
    item_ids = np.array([[1, 2, 3]])
    mask = np.ones((1, 3), dtype=bool)
    unique_ids, inverse, owner = batch_structure(item_ids, mask)
    hidden = Tensor(rng.normal(size=(1, 3, 4)))
    # If the candidate set were all items, changing item 1's rep would
    # change the loss at anchor position 1 (target item 3). It must not.
    reps_a = rng.normal(size=(3, 4))
    reps_b = reps_a.copy()
    reps_b[0] += 10.0                            # item 1 representation
    loss_a = dap_loss(hidden, Tensor(reps_a), inverse, mask, owner).item()
    loss_b = dap_loss(hidden, Tensor(reps_b), inverse, mask, owner).item()
    # position0's target is item 2; position1's target item 3; in both
    # cases item 1 is owned by the user and not the target, so it is
    # excluded and the loss must be identical.
    assert loss_a == pytest.approx(loss_b, abs=1e-9)


def test_dap_loss_grad(rng, small_batch):
    item_ids, mask = small_batch
    _, inverse, owner = batch_structure(item_ids, mask)
    hidden_np = rng.normal(size=(2, 4, 6))

    def loss_fn(reps):
        return dap_loss(Tensor(hidden_np), reps, inverse, mask, owner)

    check_grad(loss_fn, rng.normal(size=(6, 6)), atol=1e-4)


def test_dap_empty_batch_is_zero():
    item_ids = np.array([[1, 0]])
    mask = np.array([[True, False]])      # no position has a next item
    _, inverse, owner = batch_structure(item_ids, mask)
    loss = dap_loss(Tensor(np.zeros((1, 2, 4))), Tensor(np.zeros((1, 4))),
                    inverse, mask, owner)
    assert loss.item() == 0.0


@pytest.mark.parametrize("variant", ["vcl", "icl", "ncl", "nicl"])
def test_alignment_variants_finite_and_distinct(rng, small_batch, variant):
    item_ids, mask = small_batch
    _, inverse, owner = batch_structure(item_ids, mask)
    t_cls = Tensor(rng.normal(size=(6, 8)))
    v_cls = Tensor(rng.normal(size=(6, 8)))
    loss = alignment_loss(t_cls, v_cls, inverse, mask, owner,
                          variant=variant).item()
    assert np.isfinite(loss)


def test_alignment_variants_differ(rng, small_batch):
    item_ids, mask = small_batch
    _, inverse, owner = batch_structure(item_ids, mask)
    t_cls = Tensor(rng.normal(size=(6, 8)))
    v_cls = Tensor(rng.normal(size=(6, 8)))
    values = {v: alignment_loss(t_cls, v_cls, inverse, mask, owner,
                                variant=v).item()
              for v in ("vcl", "icl", "ncl", "nicl")}
    assert len({round(v, 9) for v in values.values()}) == 4
    # Adding intra-modality negatives can only grow the denominator.
    assert values["icl"] >= values["vcl"]
    assert values["nicl"] >= values["ncl"]


def test_alignment_none_variant_is_zero(rng, small_batch):
    item_ids, mask = small_batch
    _, inverse, owner = batch_structure(item_ids, mask)
    x = Tensor(rng.normal(size=(6, 8)))
    assert alignment_loss(x, x, inverse, mask, owner,
                          variant="none").item() == 0.0


@pytest.mark.parametrize("variant,min_gain", [("vcl", 0.2), ("nicl", 0.02)])
def test_alignment_pulls_matching_pairs_together(rng, variant, min_gain):
    """Gradient descent on the alignment loss must raise self cosine sim.

    VCL optimizes self-alignment directly, so it must gain a lot; NICL
    trades some of that for next-item structure but must still improve.
    """
    item_ids = np.array([[1, 2, 3, 4], [5, 6, 7, 8]])
    mask = np.ones((2, 4), dtype=bool)
    _, inverse, owner = batch_structure(item_ids, mask)
    from repro.nn.tensor import Parameter
    from repro.nn.optim import Adam
    t_cls = Parameter(rng.normal(size=(8, 8)))
    v_cls = Parameter(rng.normal(size=(8, 8)))

    def self_sim():
        t = t_cls.data / np.linalg.norm(t_cls.data, axis=1, keepdims=True)
        v = v_cls.data / np.linalg.norm(v_cls.data, axis=1, keepdims=True)
        return float((t * v).sum(axis=1).mean())

    before = self_sim()
    opt = Adam([t_cls, v_cls], lr=0.05)
    for _ in range(40):
        opt.zero_grad()
        loss = alignment_loss(t_cls, v_cls, inverse, mask, owner,
                              variant=variant)
        loss.backward()
        opt.step()
    assert self_sim() > before + min_gain


def test_alignment_grad(rng, small_batch):
    item_ids, mask = small_batch
    _, inverse, owner = batch_structure(item_ids, mask)
    v_np = rng.normal(size=(6, 6))

    def loss_fn(t):
        return alignment_loss(t, Tensor(v_np), inverse, mask, owner,
                              variant="nicl")

    check_grad(loss_fn, rng.normal(size=(6, 6)), atol=1e-4)


def test_nid_loss_perfect_classifier_is_low(rng):
    """A classifier that already separates labels gives near-zero loss."""
    labels = np.array([[0, 1, 2, 0]])
    mask = np.ones((1, 4), dtype=bool)
    hidden = np.zeros((1, 4, 3))
    hidden[0, np.arange(4), labels[0]] = 30.0    # one-hot-ish hiddens
    classifier = Linear(3, 3, bias=False)
    classifier.weight.data = np.eye(3)
    loss = nid_loss(Tensor(hidden), classifier, labels, mask).item()
    assert loss < 1e-6


def test_nid_loss_ignores_padding(rng):
    labels = np.array([[0, 2]])
    classifier = Linear(4, 3)
    hidden = rng.normal(size=(1, 2, 4))
    full = nid_loss(Tensor(hidden), classifier, labels,
                    np.array([[True, True]])).item()
    only_first = nid_loss(Tensor(hidden), classifier, labels,
                          np.array([[True, False]])).item()
    assert full != pytest.approx(only_first)


def test_masked_mean_pool(rng):
    hidden = Tensor(np.stack([np.ones((3, 4)), 2 * np.ones((3, 4))]))
    mask = np.array([[True, True, False], [True, False, False]])
    pooled = masked_mean_pool(hidden, mask).data
    np.testing.assert_allclose(pooled[0], 1.0)
    np.testing.assert_allclose(pooled[1], 2.0)


def test_rcl_loss_prefers_own_corruption(rng):
    """Aligned original/corrupted pairs give lower loss than shuffled ones."""
    mask = np.ones((4, 3), dtype=bool)
    base = rng.normal(size=(4, 3, 8))
    aligned = base + 0.01 * rng.normal(size=base.shape)
    shuffled = aligned[::-1].copy()
    low = rcl_loss(Tensor(base), Tensor(aligned), mask).item()
    high = rcl_loss(Tensor(base), Tensor(shuffled), mask).item()
    assert low < high


def test_rcl_grad(rng):
    mask = np.ones((3, 2), dtype=bool)
    corrupt_np = rng.normal(size=(3, 2, 5))

    def loss_fn(h):
        return rcl_loss(h, Tensor(corrupt_np), mask)

    check_grad(loss_fn, rng.normal(size=(3, 2, 5)), atol=1e-4)
