"""Sequence corruption for NID / RCL (paper Sec. III-D1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (LABEL_REPLACED, LABEL_SHUFFLED, LABEL_UNCHANGED,
                        corrupt_batch)


def _batch(rng, batch=6, length=20):
    ids = rng.integers(1, 50, size=(batch, length))
    mask = np.ones((batch, length), dtype=bool)
    return ids, mask


def test_corruption_preserves_shape_and_padding(rng):
    ids = np.array([[1, 2, 3, 0, 0]])
    mask = np.array([[True, True, True, False, False]])
    out = corrupt_batch(ids, mask, rng)
    assert out.item_ids.shape == ids.shape
    np.testing.assert_array_equal(out.item_ids[0, 3:], 0)
    np.testing.assert_array_equal(out.labels[0, 3:], LABEL_UNCHANGED)


def test_corruption_rates_approximate_paper(rng):
    ids, mask = _batch(rng, batch=60, length=30)
    out = corrupt_batch(ids, mask, rng, shuffle_frac=0.15, replace_frac=0.05)
    shuffled = (out.labels == LABEL_SHUFFLED).mean()
    replaced = (out.labels == LABEL_REPLACED).mean()
    # Self-shuffles / self-replacements are relabelled unchanged, so the
    # observed rates sit slightly below the nominal ones.
    assert 0.05 < shuffled <= 0.16
    assert 0.005 < replaced <= 0.07


def test_shuffle_preserves_item_multiset(rng):
    ids, mask = _batch(rng, batch=10, length=25)
    out = corrupt_batch(ids, mask, rng, shuffle_frac=0.3, replace_frac=0.0)
    for row in range(10):
        np.testing.assert_array_equal(np.sort(ids[row]),
                                      np.sort(out.item_ids[row]))


def test_replaced_positions_get_batch_items(rng):
    ids, mask = _batch(rng, batch=5, length=20)
    pool = set(ids[mask].tolist())
    out = corrupt_batch(ids, mask, rng, shuffle_frac=0.0, replace_frac=0.3)
    replaced = out.item_ids[out.labels == LABEL_REPLACED]
    assert set(replaced.tolist()) <= pool


def test_labels_only_where_changed(rng):
    ids, mask = _batch(rng)
    out = corrupt_batch(ids, mask, rng)
    changed = out.item_ids != ids
    # Every changed position is labelled, every labelled position changed
    # (shuffles moving an equal item are relabelled unchanged).
    labelled = out.labels != LABEL_UNCHANGED
    shuffled_same = (out.labels == LABEL_SHUFFLED) & ~changed
    assert not shuffled_same.any()
    assert (changed == labelled).all() or (changed & ~labelled).sum() == 0


def test_degenerate_sequences_untouched(rng):
    ids = np.array([[7, 0, 0]])
    mask = np.array([[True, False, False]])
    out = corrupt_batch(ids, mask, rng)
    np.testing.assert_array_equal(out.item_ids, ids)


def test_zero_rates_are_identity(rng):
    ids, mask = _batch(rng)
    out = corrupt_batch(ids, mask, rng, shuffle_frac=0.0, replace_frac=0.0)
    np.testing.assert_array_equal(out.item_ids, ids)
    assert (out.labels == LABEL_UNCHANGED).all()


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2 ** 31 - 1))
def test_corruption_invariants_hypothesis(seed):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 15, size=4)
    length = 15
    ids = np.zeros((4, length), dtype=np.int64)
    mask = np.zeros((4, length), dtype=bool)
    for row, n in enumerate(lengths):
        ids[row, :n] = rng.integers(1, 30, size=n)
        mask[row, :n] = True
    out = corrupt_batch(ids, mask, rng)
    # Padding is never altered; labels stay within the 3 classes.
    assert (out.item_ids[~mask] == 0).all()
    assert set(np.unique(out.labels)) <= {LABEL_UNCHANGED, LABEL_SHUFFLED,
                                          LABEL_REPLACED}
    # Corrupted ids always come from the batch's real items.
    assert set(out.item_ids[mask].tolist()) <= set(ids[mask].tolist())
