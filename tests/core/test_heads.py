"""Rating / behaviour heads (the paper's future-work extensions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.heads import BehaviorHead, RatingHead, pair_features
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


def test_pair_features_shape(rng):
    u = Tensor(rng.normal(size=(4, 8)))
    i = Tensor(rng.normal(size=(4, 8)))
    assert pair_features(u, i).shape == (4, 24)


def test_rating_head_range(rng):
    head = RatingHead(8, low=1.0, high=5.0)
    u = Tensor(rng.normal(size=(16, 8)) * 10)
    i = Tensor(rng.normal(size=(16, 8)) * 10)
    out = head(u, i).data
    assert out.shape == (16,)
    assert (out >= 1.0).all() and (out <= 5.0).all()


def test_rating_head_learns_simple_signal(rng):
    """The head must fit ratings driven by user-item dot products."""
    head = RatingHead(6, hidden=16)
    users = rng.normal(size=(64, 6))
    items = rng.normal(size=(64, 6))
    signal = (users * items).sum(axis=1)
    ratings = 3.0 + 2.0 * np.tanh(signal)
    opt = Adam(list(head.parameters()), lr=0.01)
    first = None
    for step in range(150):
        opt.zero_grad()
        loss = head.loss(Tensor(users), Tensor(items), ratings)
        if first is None:
            first = loss.item()
        loss.backward()
        opt.step()
    assert loss.item() < 0.5 * first


def test_behavior_head_shapes_and_loss(rng):
    head = BehaviorHead(8, num_behaviors=3)
    u = Tensor(rng.normal(size=(10, 8)))
    i = Tensor(rng.normal(size=(10, 8)))
    logits = head(u, i)
    assert logits.shape == (10, 3)
    labels = rng.integers(0, 3, size=10)
    loss = head.loss(u, i, labels)
    assert np.isfinite(loss.item())


def test_behavior_head_learns_separable_labels(rng):
    head = BehaviorHead(4, num_behaviors=2)
    users = rng.normal(size=(40, 4))
    items = rng.normal(size=(40, 4))
    labels = ((users * items).sum(axis=1) > 0).astype(int)
    opt = Adam(list(head.parameters()), lr=0.05)
    for _ in range(100):
        opt.zero_grad()
        loss = head.loss(Tensor(users), Tensor(items), labels)
        loss.backward()
        opt.step()
    logits = head(Tensor(users), Tensor(items)).data
    accuracy = (logits.argmax(axis=1) == labels).mean()
    assert accuracy > 0.85
