"""Ranking metrics: exact values, edge cases and properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (hit_ratio, metrics_from_ranks, ndcg, rank_of_target)


def test_rank_of_target_basic():
    scores = np.array([[0.0, 1.0, 3.0, 2.0]])   # col 0 = padding
    assert rank_of_target(scores, np.array([2]))[0] == 1
    assert rank_of_target(scores, np.array([3]))[0] == 2
    assert rank_of_target(scores, np.array([1]))[0] == 3


def test_rank_ignores_padding_column():
    scores = np.array([[100.0, 1.0, 0.5]])      # huge padding score
    assert rank_of_target(scores, np.array([1]))[0] == 1


def test_rank_ties_are_pessimistic():
    scores = np.array([[0.0, 1.0, 1.0, 1.0]])
    # All three tie: target counts all equal scores above it.
    assert rank_of_target(scores, np.array([2]))[0] == 3


def test_hit_ratio_and_ndcg_values():
    ranks = np.array([1, 5, 11])
    assert hit_ratio(ranks, 10) == pytest.approx(2 / 3)
    expected = (1.0 / np.log2(2) + 1.0 / np.log2(6)) / 3
    assert ndcg(ranks, 10) == pytest.approx(expected)


def test_rank1_gives_perfect_ndcg():
    assert ndcg(np.array([1]), 10) == pytest.approx(1.0)


def test_empty_ranks():
    assert hit_ratio(np.array([]), 10) == 0.0
    assert ndcg(np.array([]), 10) == 0.0


def test_metrics_from_ranks_keys():
    out = metrics_from_ranks(np.array([1, 2]), ks=(10, 20))
    assert set(out) == {"hr@10", "ndcg@10", "hr@20", "ndcg@20"}


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(1, 200), min_size=1, max_size=50),
       st.sampled_from([5, 10, 20]))
def test_metric_properties_hypothesis(ranks, k):
    ranks = np.array(ranks)
    hr = hit_ratio(ranks, k)
    ng = ndcg(ranks, k)
    assert 0.0 <= ng <= hr <= 1.0          # NDCG never exceeds HR
    # Monotonicity in k.
    assert hit_ratio(ranks, k) <= hit_ratio(ranks, k + 10)
    assert ndcg(ranks, k) <= ndcg(ranks, k + 10)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 30), st.integers(0, 10 ** 6))
def test_rank_of_target_matches_argsort(num_items, seed):
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=(1, num_items + 1))
    target = int(rng.integers(1, num_items + 1))
    rank = rank_of_target(scores, np.array([target]))[0]
    order = np.argsort(-scores[0, 1:], kind="stable") + 1
    # With continuous scores ties have probability zero.
    assert order[rank - 1] == target
