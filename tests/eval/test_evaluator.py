"""Evaluation loops over leave-one-out examples."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dataset
from repro.data.splits import EvalExample
from repro.eval import evaluate_model, evaluate_ranking


def test_evaluate_ranking_with_oracle_scores():
    examples = [EvalExample(history=np.array([1, 2]), target=3),
                EvalExample(history=np.array([2, 3]), target=1)]

    def oracle(histories):
        scores = np.zeros((len(histories), 5))
        # Give each example's (known) target the top score.
        for row, history in enumerate(histories):
            target = 3 if history[0] == 1 else 1
            scores[row, target] = 10.0
        return scores

    out = evaluate_ranking(oracle, examples, ks=(1, 10))
    assert out["hr@1"] == 1.0 and out["ndcg@1"] == 1.0


def test_evaluate_ranking_empty_examples():
    out = evaluate_ranking(lambda h: np.zeros((0, 5)), [], ks=(10,))
    assert out == {"hr@10": 0.0, "ndcg@10": 0.0}


def test_evaluate_ranking_empty_matches_metrics_from_ranks_families():
    """Empty input must emit the same keys as a non-empty evaluation."""
    from repro.eval.metrics import metrics_from_ranks
    ks = (1, 5, 20)
    empty = evaluate_ranking(lambda h: np.zeros((0, 5)), [], ks=ks)
    populated = metrics_from_ranks(np.array([1, 3]), ks=ks)
    assert list(empty) == list(populated)
    assert all(value == 0.0 for value in empty.values())


def test_evaluate_ranking_batches_consistently():
    rng = np.random.default_rng(0)
    examples = [EvalExample(history=np.array([1, 2]), target=int(t))
                for t in rng.integers(1, 20, size=30)]
    table = rng.normal(size=(31, 21))
    calls = []

    def scorer(histories):
        calls.append(len(histories))
        return table[:len(histories)]

    big = evaluate_ranking(scorer, examples, ks=(10,), batch_size=100)
    calls.clear()
    small = evaluate_ranking(scorer, examples, ks=(10,), batch_size=7)
    assert len(calls) == 5            # ceil(30 / 7)
    # Same scorer rows per position => metrics must agree only if batching
    # aligns; here the fake scorer depends on batch position, so instead we
    # check the real invariant on a position-independent scorer:

    def stable_scorer(histories):
        return np.stack([table[ex % 31] for ex in
                         [h[0] for h in histories]])

    a = evaluate_ranking(stable_scorer, examples, ks=(10,), batch_size=100)
    b = evaluate_ranking(stable_scorer, examples, ks=(10,), batch_size=3)
    assert a == b


def test_evaluate_model_uses_encode_catalog_once():
    """Models exposing encode_catalog must be asked for it exactly once."""
    ds = build_dataset("kwai_food", profile="smoke")

    class FakeModel:
        def __init__(self):
            self.catalog_calls = 0

        def encode_catalog(self, dataset):
            self.catalog_calls += 1
            return np.random.default_rng(0).normal(
                size=(dataset.num_items + 1, 8))

        def score_histories(self, dataset, histories, catalog=None):
            assert catalog is not None
            return np.zeros((len(histories), dataset.num_items + 1))

    model = FakeModel()
    out = evaluate_model(model, ds, ds.split.test[:20], ks=(10,),
                         batch_size=5)
    assert model.catalog_calls == 1
    assert "hr@10" in out


def test_evaluate_model_kernel_matches_score_histories():
    """The serve-kernel eval path must agree with per-model scoring."""
    from repro.baselines import make_baseline
    ds = build_dataset("kwai_food", profile="smoke")
    model = make_baseline("sasrec", ds, seed=0)
    via_kernel = evaluate_model(model, ds, ds.split.test[:20], ks=(5, 10))
    via_model = evaluate_ranking(
        lambda hs: model.score_histories(ds, hs), ds.split.test[:20],
        ks=(5, 10))
    assert via_kernel == via_model


def test_evaluate_model_restores_training_mode():
    from repro.baselines import make_baseline
    ds = build_dataset("kwai_food", profile="smoke")
    model = make_baseline("grurec", ds, seed=0)
    model.train(True)
    evaluate_model(model, ds, ds.split.test[:4], ks=(10,))
    assert model.training is True
    model.eval()
    evaluate_model(model, ds, ds.split.test[:4], ks=(10,))
    assert model.training is False
