"""Edge cases of the ranking metrics against brute-force references.

The paper's headline numbers are exact full-catalogue HR@k / NDCG@k
(Sec. IV-A2, following Krichene & Rendle); these tests pin down the
conventions that make them conservative: pessimistic tie-breaking, the
always-excluded padding column, empty-example behavior, and agreement
with a from-first-principles reference on tiny catalogues.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.splits import EvalExample
from repro.eval import (evaluate_ranking, hit_ratio, metrics_from_ranks,
                        ndcg, rank_of_target)


def brute_force_rank(row_scores: np.ndarray, target: int) -> int:
    """Pessimistic 1-based rank, computed the slow obvious way."""
    target_score = row_scores[target]
    rank = 1
    for item, score in enumerate(row_scores):
        if item == 0 or item == target:
            continue  # padding column / the target itself
        if score >= target_score:
            rank += 1
    return rank


def test_tie_with_target_counts_against_it():
    scores = np.array([[0.0, 2.0, 2.0]])
    # Item 2 ties with item 1: pessimistically both rank behind the tie.
    assert rank_of_target(scores, np.array([2]))[0] == 2
    assert rank_of_target(scores, np.array([1]))[0] == 2


def test_all_equal_scores_rank_last():
    n = 6
    scores = np.zeros((1, n + 1))
    assert rank_of_target(scores, np.array([3]))[0] == n


def test_padding_tie_does_not_hurt_target():
    # Padding column ties the target's score but must stay excluded.
    scores = np.array([[5.0, 5.0, 1.0]])
    assert rank_of_target(scores, np.array([1]))[0] == 1


def test_padding_higher_score_still_excluded():
    scores = np.array([[99.0, 3.0, 2.0, 1.0]])
    assert rank_of_target(scores, np.array([1]))[0] == 1


def test_rank_matches_brute_force_with_ties():
    rng = np.random.default_rng(3)
    # Quantized scores force plenty of ties.
    scores = np.round(rng.normal(size=(40, 9)) * 2) / 2
    targets = rng.integers(1, 9, size=40)
    fast = rank_of_target(scores, targets)
    slow = np.array([brute_force_rank(scores[i], targets[i])
                     for i in range(40)])
    np.testing.assert_array_equal(fast, slow)


def test_evaluate_ranking_empty_examples_all_ks():
    out = evaluate_ranking(lambda h: np.zeros((0, 4)), [], ks=(1, 10, 50))
    assert out == {"hr@1": 0.0, "ndcg@1": 0.0, "hr@10": 0.0, "ndcg@10": 0.0,
                   "hr@50": 0.0, "ndcg@50": 0.0}


def test_evaluate_ranking_agrees_with_brute_force_tiny_catalog():
    rng = np.random.default_rng(11)
    num_items = 7
    table = rng.normal(size=(12, num_items + 1))
    examples = [EvalExample(history=np.array([1 + i % num_items]),
                            target=int(rng.integers(1, num_items + 1)))
                for i in range(12)]
    calls = {"n": 0}

    def scorer(histories):
        start = calls["n"]
        calls["n"] += len(histories)
        return table[start:start + len(histories)]

    got = evaluate_ranking(scorer, examples, ks=(1, 3), batch_size=5)
    ranks = np.array([brute_force_rank(table[i], examples[i].target)
                      for i in range(12)])
    for k in (1, 3):
        hits = float((ranks <= k).mean())
        gains = float(np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0),
                               0.0).mean())
        assert got[f"hr@{k}"] == pytest.approx(hits)
        assert got[f"ndcg@{k}"] == pytest.approx(gains)


def test_hr_ndcg_coincide_at_k1():
    ranks = np.array([1, 2, 1, 4, 1])
    assert hit_ratio(ranks, 1) == pytest.approx(ndcg(ranks, 1))


def test_k_larger_than_catalog_saturates_hr():
    ranks = np.arange(1, 8)
    assert hit_ratio(ranks, 1000) == 1.0
    assert ndcg(ranks, 1000) < 1.0  # positions past 1 still discounted


def test_metrics_from_ranks_single_example():
    out = metrics_from_ranks(np.array([2]), ks=(1, 10))
    assert out["hr@1"] == 0.0
    assert out["hr@10"] == 1.0
    assert out["ndcg@10"] == pytest.approx(1.0 / np.log2(3.0))


def test_float32_scores_rank_identically():
    """Ranking must not change when the scorer hands back float32 scores."""
    rng = np.random.default_rng(5)
    scores = rng.normal(size=(20, 11))
    targets = rng.integers(1, 11, size=20)
    np.testing.assert_array_equal(
        rank_of_target(scores, targets),
        rank_of_target(scores.astype(np.float32), targets))
