"""Golden parity for the shared batch-scoring kernel (`eval/scoring.py`).

The kernel is the one hot path offline tables and online serving share,
so it is locked down from two directions, for PMMRec and every
``supports_score_kernel`` baseline:

* **batch vs per-user** — scoring N histories in one kernel call must
  rank identically to scoring them one at a time (padding to the batch
  width must be invisible);
* **kernel vs naive reference** — the kernel must match a from-scratch
  per-user scorer that never pads at all: gather the history's rows
  from the catalogue, run ``sequence_hidden`` on the exact-length
  sequence, project the last hidden state. This pins the kernel's
  gather/mask/last-position logic independently of ``pad_sequences``.

``encode_queries`` (the ANN retrieval front half) is pinned to
``score_batch`` by construction — asserted here too so a future refactor
cannot split the paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BASELINE_NAMES, make_baseline
from repro.core import make_pmmrec
from repro.data import build_dataset
from repro.eval.scoring import (encode_queries, model_max_len, score_batch,
                                supports_kernel)
from repro.nn.tensor import Tensor, no_grad

KERNEL_BASELINES = [name for name in BASELINE_NAMES]


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("kwai_food", profile="smoke")


@pytest.fixture(scope="module")
def histories(dataset):
    return [np.asarray(ex.history) for ex in dataset.split.test[:8]]


def _build(name: str, dataset):
    if name.startswith("pmmrec"):
        return make_pmmrec(name, seed=0)
    return make_baseline(name, dataset, seed=0)


def naive_scores(model, catalog: np.ndarray,
                 history: np.ndarray) -> np.ndarray:
    """Unpadded per-user reference: gather -> encode -> project."""
    with no_grad():
        reps = Tensor._wrap(catalog[np.asarray(history)][None, :, :].copy())
        mask = np.ones((1, len(history)), dtype=bool)
        hidden = model.sequence_hidden(reps, mask).data
    return hidden[0, -1] @ catalog.T


@pytest.mark.parametrize("name", KERNEL_BASELINES + ["pmmrec"])
def test_kernel_parity_batch_vs_per_user_vs_naive(name, dataset, histories):
    model = _build(name, dataset)
    model.eval()
    if not supports_kernel(model):
        pytest.skip(f"{name} opts out of the scoring kernel")
    catalog = model.encode_catalog(dataset)
    max_len = model_max_len(model)
    usable = [h[-max_len:] for h in histories]

    batched = score_batch(model, catalog, usable)
    for row, history in enumerate(usable):
        single = score_batch(model, catalog, [history])[0]
        naive = naive_scores(model, catalog, history)
        # Scores agree numerically...
        np.testing.assert_allclose(batched[row], single, rtol=1e-8,
                                   atol=1e-10)
        np.testing.assert_allclose(batched[row], naive, rtol=1e-8,
                                   atol=1e-10)
        # ...and the *ranking* — what serving and every metric consume —
        # is identical item for item.
        assert np.array_equal(np.argsort(-batched[row], kind="stable"),
                              np.argsort(-single, kind="stable"))
        assert np.array_equal(np.argsort(-batched[row], kind="stable"),
                              np.argsort(-naive, kind="stable"))


@pytest.mark.parametrize("name", ["sasrec", "pmmrec"])
def test_encode_queries_is_the_front_half_of_score_batch(name, dataset,
                                                         histories):
    model = _build(name, dataset)
    model.eval()
    catalog = model.encode_catalog(dataset)
    queries = encode_queries(model, catalog, histories)
    assert queries.shape == (len(histories), catalog.shape[1])
    np.testing.assert_allclose(queries @ catalog.T,
                               score_batch(model, catalog, histories),
                               rtol=1e-12)


@pytest.mark.parametrize("name", KERNEL_BASELINES + ["pmmrec"])
def test_kernel_parity_fused_vs_unfused_ranks(name, dataset, histories):
    """The fused autograd kernels must not move a single rank.

    The fused one-node attention/LayerNorm forward mirrors the unfused
    composition's floating-point op order exactly, so the scoring kernel
    must produce bit-identical scores — and therefore identical ranks —
    with fusion on and off (the ``REPRO_FUSED`` escape hatch).
    """
    from repro.nn import use_fused

    model = _build(name, dataset)
    model.eval()
    if not supports_kernel(model):
        pytest.skip(f"{name} opts out of the scoring kernel")
    usable = [h[-model_max_len(model):] for h in histories]
    with use_fused(True):
        catalog_f = model.encode_catalog(dataset)
        fused_scores = score_batch(model, catalog_f, usable)
    with use_fused(False):
        catalog_u = model.encode_catalog(dataset)
        unfused_scores = score_batch(model, catalog_u, usable)
    np.testing.assert_array_equal(catalog_f, catalog_u)
    np.testing.assert_array_equal(fused_scores, unfused_scores)
    assert np.array_equal(np.argsort(-fused_scores, axis=1, kind="stable"),
                          np.argsort(-unfused_scores, axis=1, kind="stable"))


def test_bert4rec_is_excluded_from_the_kernel(dataset):
    model = make_baseline("bert4rec", dataset, seed=0)
    assert not supports_kernel(model)


def test_heuristic_models_are_excluded_from_the_kernel(dataset):
    assert not supports_kernel(make_baseline("pop", dataset))
    assert not supports_kernel(make_baseline("fpmc", dataset, seed=0))
