"""End-to-end service + HTTP endpoint smoke (in-process, ephemeral port).

This is the CI serve-smoke path: start the service in-process, issue
real HTTP requests against two scenarios, and assert the returned top-k
matches direct retrieval.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import ModelRegistry, RecommendationService, make_server


@pytest.fixture(scope="module")
def service():
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add_all("kwai_food:sasrec,bili_food:pmmrec-text")
    svc = RecommendationService(registry, max_batch=8, max_wait_ms=2.0,
                                cache_size=64)
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def server(service):
    srv = make_server(service, port=0)
    srv.start_background()
    yield srv
    srv.shutdown()
    srv.server_close()


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, json.load(response)


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.load(response)


def test_health_and_scenarios(server):
    status, health = _get(server, "/health")
    assert status == 200 and health == {"status": "ok",
                                        "monitoring": False,
                                        "causes": [], "scenarios": 2}
    status, scenarios = _get(server, "/scenarios")
    assert {f"{s['dataset']}:{s['model']}" for s in scenarios} == \
        {"kwai_food:sasrec", "bili_food:pmmrec-text"}
    assert all(s["index_version"] >= 1 for s in scenarios)


def test_recommend_over_http_matches_direct_topk(server, service):
    for dataset_name, model_name in (("kwai_food", "sasrec"),
                                     ("bili_food", "pmmrec-text")):
        scenario = service.registry.get(dataset_name, model_name)
        history = [int(i) for i in scenario.dataset.split.test[0].history]
        status, payload = _post(server, "/recommend",
                                {"dataset": dataset_name,
                                 "model": model_name,
                                 "history": history, "k": 5})
        assert status == 200
        expected = scenario.recommender.recommend(history, k=5)
        assert payload["items"] == [int(i) for i in expected.items]
        assert payload["index_version"] == expected.index_version
        assert payload["latency_ms"] > 0.0
        assert payload["dataset"] == dataset_name


def test_repeat_request_hits_cache(server, service):
    scenario = service.registry.get("kwai_food", "sasrec")
    history = [int(i) for i in scenario.dataset.split.test[1].history]
    body = {"dataset": "kwai_food", "model": "sasrec",
            "history": history, "k": 4}
    _, first = _post(server, "/recommend", body)
    _, second = _post(server, "/recommend", body)
    assert first["cached"] is False
    assert second["cached"] is True
    assert second["items"] == first["items"]


def test_refresh_endpoint_bumps_index_version(server):
    _, before = _post(server, "/refresh",
                      {"dataset": "kwai_food", "model": "sasrec"})
    _, after = _post(server, "/refresh",
                     {"dataset": "kwai_food", "model": "sasrec"})
    assert after["index_version"] == before["index_version"] + 1


def test_stats_endpoint_reports_batcher_counters(server):
    status, stats = _get(server, "/stats")
    assert status == 200
    assert stats["settings"]["max_batch"] == 8
    assert "kwai_food:sasrec" in stats["scenarios"]
    counters = stats["scenarios"]["kwai_food:sasrec"]
    assert counters["requests"] >= 1 and counters["batches"] >= 1


def test_http_error_contract(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server, "/recommend", {"dataset": "nope", "model": "x",
                                     "history": [1]})
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server, "/recommend", {"dataset": "kwai_food",
                                     "model": "sasrec", "history": []})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server, "/recommend", {"dataset": "kwai_food",
                                     "model": "sasrec",
                                     "history": [999999]})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server, "/nope")
    assert err.value.code == 404


def test_unexpected_failure_yields_well_formed_500(server, service,
                                                   monkeypatch, capfd):
    """A handler bug mid-request is a JSON 500, not a hung connection.

    The body names the exception class (the client-side contract), the
    full traceback goes to the server's stderr (the operator-side
    contract), and the server keeps answering afterwards.
    """
    def boom(*args, **kwargs):
        raise RuntimeError("exploded mid-request")

    monkeypatch.setattr(service, "recommend", boom)
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server, "/recommend", {"dataset": "kwai_food",
                                     "model": "sasrec", "history": [1]})
    assert err.value.code == 500
    body = json.load(err.value)
    assert body["error"] == "internal error: exploded mid-request"
    assert body["error_type"] == "RuntimeError"
    logged = capfd.readouterr().err
    assert "unhandled RuntimeError serving /recommend" in logged
    assert "Traceback (most recent call last)" in logged
    assert "exploded mid-request" in logged
    # The worker thread survived: the very next request is served.
    monkeypatch.undo()
    status, payload = _post(server, "/recommend",
                            {"dataset": "kwai_food", "model": "sasrec",
                             "history": [1], "k": 3})
    assert status == 200 and len(payload["items"]) == 3


def test_service_hot_swap_rebinds_batcher():
    """Re-adding a scenario must retire the batcher of the old model."""
    registry = ModelRegistry(profile="smoke", dtype="float32")
    first = registry.add("kwai_food:sasrec")
    with RecommendationService(registry, batching=False) as svc:
        history = [int(i) for i in first.dataset.split.test[0].history]
        svc.recommend("kwai_food", "sasrec", history, k=3)
        swapped = registry.add("kwai_food:sasrec", seed=9)
        assert swapped.recommender is not first.recommender
        svc.recommend("kwai_food", "sasrec", history, k=3)
        bound = svc._batchers[("kwai_food", "sasrec")].recommender
        assert bound is swapped.recommender


def test_cli_serve_smoke_mode(capsys):
    from repro.cli import main
    code = main(["serve", "--scenarios",
                 "kwai_food:sasrec,kwai_food:grurec",
                 "--profile", "smoke", "--smoke"])
    out = capsys.readouterr().out
    assert code == 0
    assert "serve smoke: PASS" in out


def test_cli_bench_serve(capsys):
    from repro.cli import main
    code = main(["bench-serve", "--dataset", "kwai_food", "--model",
                 "sasrec", "--profile", "smoke", "--requests", "32",
                 "--batch", "8"])
    out = capsys.readouterr().out
    assert code == 0
    assert "p50" in out and "QPS" in out and "speedup" in out
