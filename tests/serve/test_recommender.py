"""Recommender: top-k retrieval vs full sort, exclusion, fallback models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MostPopular
from repro.serve import Recommender, batch_scorer

from .conftest import reference_topk


def _masked_scores(recommender, history, exclude_seen=True):
    scores = recommender.score([np.asarray(history)])[0].astype(np.float64)
    scores[0] = -np.inf
    if exclude_seen:
        scores[np.asarray(history)] = -np.inf
    return scores


def test_recommend_agrees_with_full_sort(recommender, dataset):
    for example in dataset.split.test[:10]:
        out = recommender.recommend(example.history, k=5)
        expected = reference_topk(_masked_scores(recommender,
                                                 example.history), 5)
        assert np.array_equal(out.items, expected)
        assert out.scores.shape == (5,)
        assert np.all(np.diff(out.scores) <= 0)   # best-first ordering


def test_recommend_excludes_seen_items_and_padding(recommender, dataset):
    history = dataset.split.test[0].history
    # Ask for more than can be served: the answer truncates to the
    # non-excluded candidates instead of padding with invalid items.
    out = recommender.recommend(history, k=dataset.num_items + 5)
    assert np.all(np.isfinite(out.scores))
    assert len(out.items) == dataset.num_items - len(set(history.tolist()))
    assert 0 not in out.items
    assert not set(np.asarray(history)) & set(out.items.tolist())


def test_recommend_without_exclusion(model, dataset):
    permissive = Recommender(model, dataset, exclude_seen=False)
    history = dataset.split.test[0].history
    out = permissive.recommend(history, k=dataset.num_items)
    expected = reference_topk(
        _masked_scores(permissive, history, exclude_seen=False),
        dataset.num_items)
    assert np.array_equal(out.items, expected)


def test_recommend_batch_matches_single_requests(recommender, dataset):
    histories = [ex.history for ex in dataset.split.test[:6]]
    batched = recommender.recommend_batch(histories, k=4)
    for history, out in zip(histories, batched):
        single = recommender.recommend(history, k=4)
        assert np.array_equal(out.items, single.items)
        np.testing.assert_allclose(out.scores, single.scores, rtol=1e-6)


def test_recommend_reports_index_version(recommender, dataset):
    out = recommender.recommend(dataset.split.test[0].history, k=3)
    assert out.index_version == recommender.index.version >= 1
    recommender.refresh()
    out2 = recommender.recommend(dataset.split.test[0].history, k=3)
    assert out2.index_version == out.index_version + 1


def test_recommend_validates_history(recommender, dataset):
    with pytest.raises(ValueError):
        recommender.recommend([], k=3)
    with pytest.raises(ValueError):
        recommender.recommend([dataset.num_items + 5], k=3)
    with pytest.raises(ValueError):
        recommender.recommend([0], k=3)


def test_fallback_model_without_catalog_protocol(dataset):
    pop = MostPopular(dataset.num_items).fit_counts(dataset.sequences)
    recommender = Recommender(pop, dataset)
    assert recommender.index is None
    out = recommender.recommend(dataset.split.test[0].history, k=5)
    assert out.index_version == 0
    counts = pop._counts.copy()
    counts[0] = -np.inf
    counts[np.asarray(dataset.split.test[0].history)] = -np.inf
    assert np.array_equal(out.items, reference_topk(counts, 5))


def test_to_json_round_trip(recommender, dataset):
    import json
    out = recommender.recommend(dataset.split.test[0].history, k=3)
    payload = json.loads(json.dumps(out.to_json()))
    assert payload["items"] == [int(i) for i in out.items]
    assert payload["index_version"] == out.index_version


def test_bert4rec_keeps_mask_token_inference(dataset):
    """Models opting out of the kernel must serve via their own scoring.

    BERT4Rec appends a [MASK] token that is not a catalogue row; the
    shared gather-encode-project kernel cannot reproduce that, so both
    serving and eval must route through its score_histories (still
    reusing the precomputed index matrix).
    """
    from repro.baselines import make_baseline
    from repro.serve import supports_kernel
    bert = make_baseline("bert4rec", dataset, seed=0)
    assert not supports_kernel(bert)
    recommender = Recommender(bert, dataset)
    assert recommender.index is not None       # index still precomputed
    history = dataset.split.test[0].history
    out = recommender.recommend(history, k=5)
    scores = bert.score_histories(dataset, [history])[0]
    scores[0] = -np.inf
    scores[np.asarray(history)] = -np.inf
    assert np.array_equal(out.items, reference_topk(scores, 5))
    assert out.index_version == 1


def test_bert4rec_eval_unchanged_by_kernel_path(dataset):
    """evaluate_model must agree with BERT4Rec's own inference scheme."""
    from repro.baselines import make_baseline
    from repro.eval import evaluate_model, evaluate_ranking
    bert = make_baseline("bert4rec", dataset, seed=0)
    catalog = bert.encode_catalog(dataset)
    via_eval = evaluate_model(bert, dataset, dataset.split.test[:20],
                              ks=(10,))
    via_own = evaluate_ranking(
        lambda hs: bert.score_histories(dataset, hs, catalog=catalog),
        dataset.split.test[:20], ks=(10,))
    assert via_eval == via_own


def test_batch_scorer_uses_fallback_for_heuristic_models(dataset):
    pop = MostPopular(dataset.num_items).fit_counts(dataset.sequences)
    scorer = batch_scorer(pop, dataset)
    histories = [ex.history for ex in dataset.split.test[:3]]
    np.testing.assert_array_equal(scorer(histories),
                                  pop.score_histories(dataset, histories))
