"""Approximate retrieval: recall floors, exact equivalence, fallbacks.

Three families lock the ANN layer down:

* **recall floors** — IVF and LSH each hold recall@10 >= 0.95 against
  exact scoring on a seeded, clustered synthetic catalogue (the regime
  trained item embeddings live in);
* **exact equivalence** — with exhaustive settings (probe every cell /
  shortlist everything) the ANN path must reproduce the exact path
  bit-for-bit, including seen-item exclusion and the lower-item-id
  tie-break, which pins the candidate-re-rank plumbing;
* **fallback triggers** — every condition under which approximate
  recall would be unsafe must route to exact scoring and be visible in
  ``retrieval_stats``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_baseline
from repro.data import build_dataset
from repro.serve import (CatalogIndex, IVFIndex, LSHIndex, Recommender,
                         make_ann_index, synthetic_catalog,
                         synthetic_queries)
from repro.serve.ann import default_nlist


# -- synthetic-catalogue fixtures (index-level tests) ------------------------


@pytest.fixture(scope="module")
def catalog():
    return synthetic_catalog(4096, dim=32, num_clusters=64, seed=7)


@pytest.fixture(scope="module")
def queries(catalog):
    return synthetic_queries(catalog, 64, seed=8)


def exact_top_ids(catalog, query, k):
    scores = catalog @ query
    scores[0] = -np.inf
    return np.argsort(-scores, kind="stable")[:k]


def recall_at_k(index, catalog, queries, k=10):
    hits = 0
    for query in queries:
        truth = set(exact_top_ids(catalog, query, k).tolist())
        candidates = index.candidates(query, k)
        scores = catalog[candidates] @ query
        picked = candidates[np.argsort(-scores, kind="stable")[:k]]
        hits += len(truth.intersection(picked.tolist()))
    return hits / (len(queries) * k)


# -- recall floors -----------------------------------------------------------


@pytest.mark.parametrize("make_index", [
    pytest.param(lambda: IVFIndex(seed=0), id="ivf"),
    pytest.param(lambda: LSHIndex(seed=0), id="lsh"),
])
def test_recall_floor_at_default_settings(make_index, catalog, queries):
    index = make_index()
    index.fit(catalog, version=1)
    assert recall_at_k(index, catalog, queries, k=10) >= 0.95


def test_ivf_recall_improves_with_nprobe(catalog, queries):
    coarse = IVFIndex(nlist=128, nprobe=1, seed=0)
    fine = IVFIndex(nlist=128, nprobe=64, seed=0)
    coarse.fit(catalog, version=1)
    fine.fit(catalog, version=1)
    assert (recall_at_k(fine, catalog, queries)
            >= recall_at_k(coarse, catalog, queries))


def test_lsh_recall_improves_with_oversampling(catalog, queries):
    tight = LSHIndex(bits=32, oversample=1, min_candidates=10, seed=0)
    loose = LSHIndex(bits=128, oversample=16, min_candidates=256, seed=0)
    tight.fit(catalog, version=1)
    loose.fit(catalog, version=1)
    assert (recall_at_k(loose, catalog, queries)
            >= recall_at_k(tight, catalog, queries))


# -- candidate-set contract --------------------------------------------------


@pytest.mark.parametrize("make_index", [
    pytest.param(lambda: IVFIndex(nlist=32, nprobe=2, seed=0), id="ivf"),
    pytest.param(lambda: LSHIndex(bits=64, oversample=2, min_candidates=16,
                                  seed=0), id="lsh"),
])
def test_candidates_are_valid_ascending_ids(make_index, catalog, queries):
    index = make_index()
    index.fit(catalog, version=1)
    for query in queries[:8]:
        for count in (1, 10, 200):
            ids = index.candidates(query, count)
            assert len(ids) >= count
            assert len(np.unique(ids)) == len(ids)
            assert np.all(np.diff(ids) > 0)          # ascending, no dupes
            assert ids.min() >= 1                     # padding never shipped
            assert ids.max() <= len(catalog) - 1


def test_candidates_count_clamps_to_catalog(catalog):
    index = IVFIndex(nlist=16, nprobe=1, seed=0)
    index.fit(catalog, version=1)
    n = len(catalog) - 1
    ids = index.candidates(catalog[1], n + 500)
    assert np.array_equal(ids, np.arange(1, n + 1))


def test_ivf_probe_widening_beats_tiny_cells(catalog):
    # One probed cell holds ~4096/64 = 64 items; asking for more than a
    # cell can hold must widen to further cells, not come back short.
    index = IVFIndex(nlist=64, nprobe=1, seed=0)
    index.fit(catalog, version=1)
    ids = index.candidates(catalog[1], 500)
    assert len(ids) >= 500


def test_unfitted_index_raises():
    with pytest.raises(RuntimeError):
        IVFIndex().candidates(np.zeros(8), 5)


def test_make_ann_index_factory():
    assert make_ann_index("exact") is None
    assert make_ann_index(None) is None
    assert make_ann_index("ivf", nlist=8).nlist == 8
    assert make_ann_index("lsh", bits=64).bits == 64
    assert make_ann_index("ivf", nlist=None) .nlist is None  # None dropped
    with pytest.raises(ValueError):
        make_ann_index("annoy")


def test_default_nlist_follows_sqrt_rule():
    assert default_nlist(10_000) == 400
    assert default_nlist(16) == 2      # clamped to n // 8
    assert default_nlist(1) == 1


# -- incremental refresh -----------------------------------------------------


def test_refresh_is_incremental_and_version_stamped(catalog):
    ivf = IVFIndex(seed=0)
    ivf.fit(catalog, version=3)
    assert ivf.fitted_version == 3
    first_centroids = ivf._fitted.state.centroids
    drifted = catalog.copy()
    drifted[1:] += 0.01
    ivf.fit(drifted, version=4)
    assert ivf.fitted_version == 4
    # Warm start: the refreshed quantizer descends from the previous
    # centroids rather than re-seeding (centroids moved only slightly).
    assert np.abs(ivf._fitted.state.centroids - first_centroids).max() < 0.5


def test_lsh_hyperplanes_survive_refresh(catalog):
    lsh = LSHIndex(bits=64, seed=0)
    lsh.fit(catalog, version=1)
    planes = lsh._fitted.state.hyperplanes
    lsh.fit(catalog.copy(), version=2)
    assert lsh._fitted.state.hyperplanes is planes   # only codes re-encoded


# -- recommender integration (real model, real dataset) ----------------------


@pytest.fixture(scope="module")
def paper_dataset():
    return build_dataset("hm", profile="paper")


@pytest.fixture(scope="module")
def paper_model(paper_dataset):
    return make_baseline("sasrec", paper_dataset, seed=0)


@pytest.fixture(scope="module")
def paper_histories(paper_dataset):
    return [ex.history for ex in paper_dataset.split.test[:6]]


@pytest.fixture(scope="module")
def exact_answers(paper_model, paper_dataset, paper_histories):
    exact = Recommender(paper_model, paper_dataset)
    return exact.recommend_batch(paper_histories, k=10)


@pytest.mark.parametrize("kind,params", [
    pytest.param("ivf", {"nlist": 8, "nprobe": 8}, id="ivf-exhaustive"),
    pytest.param("lsh", {"bits": 128, "oversample": 64,
                         "min_candidates": 10_000}, id="lsh-exhaustive"),
])
def test_exhaustive_ann_equals_exact_bit_for_bit(
        kind, params, paper_model, paper_dataset, paper_histories,
        exact_answers):
    rec = Recommender(paper_model, paper_dataset, retrieval=kind,
                      ann_params=params, min_ann_items=1)
    got = rec.recommend_batch(paper_histories, k=10)
    assert rec.retrieval_stats.ann_batches == 1
    for expected, answer in zip(exact_answers, got):
        assert np.array_equal(expected.items, answer.items)
        assert np.allclose(expected.scores, answer.scores)
        assert answer.index_version == 1


def test_ann_answers_are_frozen(paper_model, paper_dataset, paper_histories):
    rec = Recommender(paper_model, paper_dataset, retrieval="ivf",
                      ann_params={"nlist": 8, "nprobe": 8}, min_ann_items=1)
    answer = rec.recommend(paper_histories[0], k=5)
    with pytest.raises(ValueError):
        answer.items[0] = -1
    with pytest.raises(ValueError):
        answer.scores[0] = 0.0


def test_ann_respects_seen_item_exclusion(paper_model, paper_dataset,
                                          paper_histories):
    rec = Recommender(paper_model, paper_dataset, retrieval="ivf",
                      ann_params={"nlist": 8, "nprobe": 8}, min_ann_items=1)
    for history in paper_histories:
        answer = rec.recommend(history, k=10)
        assert not np.isin(answer.items, history).any()
        assert 0 not in answer.items


def test_refresh_rebuilds_ann_and_bumps_version(paper_model, paper_dataset,
                                                paper_histories):
    rec = Recommender(paper_model, paper_dataset, retrieval="ivf",
                      ann_params={"nlist": 8, "nprobe": 8}, min_ann_items=1)
    first = rec.recommend(paper_histories[0], k=5)
    rec.index.mark_stale()
    second = rec.recommend(paper_histories[0], k=5)
    assert second.index_version == first.index_version + 1
    assert rec.ann.fitted_version == second.index_version
    assert np.array_equal(first.items, second.items)  # weights unchanged
    assert rec.retrieval_stats.ann_batches == 2       # never fell back


# -- exact-fallback triggers -------------------------------------------------


def test_fallback_small_catalog(paper_model, paper_dataset, paper_histories,
                                exact_answers):
    rec = Recommender(paper_model, paper_dataset, retrieval="ivf")
    answer = rec.recommend_batch(paper_histories, k=10)
    assert rec.retrieval_stats.ann_batches == 0
    assert rec.retrieval_stats.fallbacks == {"small_catalog": 1}
    for expected, got in zip(exact_answers, answer):
        assert np.array_equal(expected.items, got.items)


def test_fallback_k_near_catalog(paper_model, paper_dataset,
                                 paper_histories):
    rec = Recommender(paper_model, paper_dataset, retrieval="ivf",
                      ann_params={"nlist": 8, "nprobe": 8}, min_ann_items=1)
    rec.recommend(paper_histories[0], k=paper_dataset.num_items // 2)
    assert rec.retrieval_stats.fallbacks == {"k_near_catalog": 1}


def test_fallback_non_kernel_model(paper_dataset, paper_histories):
    # BERT4Rec owns its inference (mask-token query) and opts out of the
    # scoring kernel — no query vectors, so ANN must never engage.
    model = make_baseline("bert4rec", paper_dataset, seed=0)
    rec = Recommender(model, paper_dataset, retrieval="ivf",
                      min_ann_items=1)
    assert rec.ann is None                   # structure never even built
    rec.recommend(paper_histories[0], k=5)
    assert rec.retrieval_stats.fallbacks == {"no_kernel": 1}


def test_fallback_heuristic_model_without_index(paper_dataset,
                                                paper_histories):
    model = make_baseline("pop", paper_dataset)
    rec = Recommender(model, paper_dataset, retrieval="lsh",
                      min_ann_items=1)
    assert rec.index is None and rec.ann is None
    rec.recommend(paper_histories[0], k=5)
    assert rec.retrieval_stats.fallbacks == {"no_kernel": 1}


def test_fallback_stale_ann_structure(paper_model, paper_dataset,
                                      paper_histories):
    rec = Recommender(paper_model, paper_dataset, retrieval="ivf",
                      ann_params={"nlist": 8, "nprobe": 8}, min_ann_items=1)
    rec.recommend(paper_histories[0], k=5)
    # Simulate a structure that missed a rebuild: its stamped version no
    # longer matches the published matrix. snapshot_retrieval must then
    # withhold it and the recommender must score exactly.
    rec.ann._fitted = rec.ann._fitted.__class__(
        state=rec.ann._fitted.state, version=999)
    answer = rec.recommend(paper_histories[0], k=5)
    assert rec.retrieval_stats.fallbacks == {"stale_index": 1}
    assert answer.index_version == 1


def test_exact_choice_is_not_counted_as_fallback(paper_model, paper_dataset,
                                                 paper_histories):
    rec = Recommender(paper_model, paper_dataset)    # retrieval="exact"
    rec.recommend(paper_histories[0], k=5)
    assert rec.retrieval_stats.exact_batches == 1
    assert rec.retrieval_stats.fallbacks == {}


def test_catalog_index_attach_ann_fits_immediately(paper_model,
                                                   paper_dataset):
    index = CatalogIndex(paper_model, paper_dataset)
    index.matrix                              # publish version 1
    ann = IVFIndex(nlist=8, nprobe=8, seed=0)
    index.attach_ann(ann)
    assert ann.fitted and ann.fitted_version == index.version
    matrix, version, search = index.snapshot_retrieval()
    assert search.index is ann and version == index.version
    assert search.version == version


def test_search_view_survives_concurrent_refit(catalog):
    # A request captures its search view, then a refresh refits the
    # live index: the captured view must keep shortlisting against the
    # state built for the snapshot the request is scoring.
    ivf = IVFIndex(nlist=16, nprobe=16, seed=0)
    ivf.fit(catalog, version=1)
    search = ivf.search_snapshot()
    pinned_state = search.state
    shuffled = catalog.copy()
    shuffled[1:] = catalog[1:][::-1]
    ivf.fit(shuffled, version=2)              # concurrent refit lands
    assert ivf._fitted.state is not pinned_state     # live index moved on...
    assert search.state is pinned_state       # ...the view did not
    assert search.version == 1
    ids = search.candidates(catalog[1], 50)
    assert len(ids) >= 50 and ids.min() >= 1


def test_configured_backend_overrides_mismatched_attached_ann(paper_model,
                                                              paper_dataset):
    # A shared index may arrive with a different structure attached; the
    # recommender's own configuration must win, or /stats would report
    # one backend while routing through another.
    index = CatalogIndex(paper_model, paper_dataset)
    index.attach_ann(LSHIndex(bits=64, seed=0))
    rec = Recommender(paper_model, paper_dataset, index=index,
                      retrieval="ivf", ann_params={"nlist": 4, "nprobe": 4},
                      min_ann_items=1)
    assert rec.ann.kind == "ivf"
    assert rec.ann.nlist == 4
    assert rec.describe_retrieval()["ann"]["kind"] == "ivf"


def test_sibling_backend_swap_falls_back_instead_of_misrouting(
        paper_model, paper_dataset, paper_histories, exact_answers):
    # Recommender `a` configures IVF; `b` later re-attaches LSH to the
    # shared index. `a` must not silently shortlist through LSH while
    # reporting IVF — it falls back to exact and counts why.
    index = CatalogIndex(paper_model, paper_dataset)
    a = Recommender(paper_model, paper_dataset, index=index,
                    retrieval="ivf", ann_params={"nlist": 8, "nprobe": 8},
                    min_ann_items=1)
    b = Recommender(paper_model, paper_dataset, index=index,
                    retrieval="lsh", ann_params={"bits": 64},
                    min_ann_items=1)
    assert index.ann.kind == "lsh"
    got = a.recommend_batch(paper_histories, k=10)
    assert a.retrieval_stats.ann_batches == 0
    assert a.retrieval_stats.fallbacks == {"backend_mismatch": 1}
    for expected, answer in zip(exact_answers, got):
        assert np.array_equal(expected.items, answer.items)
    b.recommend(paper_histories[0], k=5)
    assert b.retrieval_stats.ann_batches == 1     # owner still routes ANN


def test_matching_attached_ann_is_reused_without_params(paper_model,
                                                        paper_dataset):
    index = CatalogIndex(paper_model, paper_dataset)
    existing = IVFIndex(nlist=8, nprobe=8, seed=0)
    index.attach_ann(existing)
    rec = Recommender(paper_model, paper_dataset, index=index,
                      retrieval="ivf", min_ann_items=1)
    assert rec.ann is existing            # no rebuild of a matching one


def test_retrieval_kind_is_case_insensitive(paper_model, paper_dataset,
                                            paper_histories):
    rec = Recommender(paper_model, paper_dataset, retrieval="IVF",
                      ann_params={"nlist": 8, "nprobe": 8}, min_ann_items=1)
    rec.recommend(paper_histories[0], k=5)
    assert rec.retrieval == "ivf"
    assert rec.retrieval_stats.ann_batches == 1   # routed, no mismatch


def test_describe_retrieval_reports_backend(paper_model, paper_dataset,
                                            paper_histories):
    rec = Recommender(paper_model, paper_dataset, retrieval="lsh",
                      ann_params={"bits": 64}, min_ann_items=1)
    rec.recommend(paper_histories[0], k=5)
    info = rec.describe_retrieval()
    assert info["retrieval"] == "lsh"
    assert info["ann"]["kind"] == "lsh" and info["ann"]["bits"] == 64
    assert info["ann"]["fitted_version"] == 1
