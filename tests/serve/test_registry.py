"""ModelRegistry: scenario parsing, checkpoint round-trip, routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dataset
from repro.nn.serialization import save_checkpoint
from repro.serve import ModelRegistry, ScenarioSpec, build_model
from repro.train import TrainConfig, Trainer


def test_scenario_spec_parsing():
    spec = ScenarioSpec.parse("kwai_food:sasrec")
    assert spec.dataset == "kwai_food" and spec.model == "sasrec"
    assert spec.checkpoint is None
    with_ckpt = ScenarioSpec.parse("bili_food:pmmrec:/tmp/ck.npz")
    assert with_ckpt.checkpoint == "/tmp/ck.npz"
    for bad in ("kwai_food", ":sasrec", "kwai_food:"):
        with pytest.raises(ValueError):
            ScenarioSpec.parse(bad)


def test_build_model_dispatch(dataset):
    assert type(build_model("sasrec", dataset)).__name__ == "SASRec"
    pmmrec = build_model("pmmrec-text", dataset)
    assert pmmrec.config.modality == "text"
    # Ablation variants resolve through the same shared factory, so
    # they are servable too.
    assert build_model("pmmrec-wo-nid", dataset).config.use_nid is False
    with pytest.raises(KeyError):
        build_model("nope", dataset)
    with pytest.raises(KeyError):
        build_model("pmmrec-wo-everything", dataset)


def test_registry_two_scenarios_one_process():
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add_all("kwai_food:sasrec,bili_food:grurec")
    assert len(registry) == 2
    assert ("kwai_food", "sasrec") in registry.keys()
    a = registry.get("kwai_food", "sasrec")
    b = registry.get("bili_food", "grurec")
    assert a.dataset.name == "kwai_food" and b.dataset.name == "bili_food"
    # Both answer requests independently.
    out_a = a.recommender.recommend(a.dataset.split.test[0].history, k=3)
    out_b = b.recommender.recommend(b.dataset.split.test[0].history, k=3)
    assert len(out_a.items) == 3 and len(out_b.items) == 3
    described = registry.describe()
    assert {d["dataset"] for d in described} == {"kwai_food", "bili_food"}
    assert all(d["index_version"] == 1 for d in described)  # warm start


def test_registry_unknown_scenario_lists_loaded():
    registry = ModelRegistry(profile="smoke")
    registry.add("kwai_food:sasrec")
    with pytest.raises(KeyError, match="kwai_food:sasrec"):
        registry.get("kwai_food", "pmmrec")


def test_registry_checkpoint_round_trip(tmp_path):
    dataset = build_dataset("kwai_food", profile="smoke")
    trained = build_model("sasrec", dataset, seed=3)
    Trainer(trained, dataset,
            TrainConfig(epochs=2, batch_size=16, seed=3)).fit()
    path = str(tmp_path / "sasrec.npz")
    save_checkpoint(trained, path)

    registry = ModelRegistry(profile="smoke", dtype="float32")
    scenario = registry.add(f"kwai_food:sasrec:{path}", seed=3)
    history = dataset.split.test[0].history
    served = scenario.recommender.recommend(history, k=5)

    # The served answer must match scoring the trained model directly
    # (modulo the float32 serving cast, which must not reorder top-5).
    scores = trained.score_histories(dataset, [history])[0]
    scores[0] = -np.inf
    scores[np.asarray(history)] = -np.inf
    expected = np.argsort(-scores, kind="stable")[:5]
    assert np.array_equal(served.items, expected)
    assert scenario.spec.checkpoint == path


def test_registry_checkpoint_requires_loadable_model(tmp_path):
    registry = ModelRegistry(profile="smoke")
    with pytest.raises(TypeError):
        registry.add(f"kwai_food:pop:{tmp_path / 'x.npz'}")


def test_registry_add_honors_seed_for_spec_objects():
    registry = ModelRegistry(profile="smoke", warm=False)
    scenario = registry.add(ScenarioSpec(dataset="kwai_food",
                                         model="sasrec"), seed=7)
    assert scenario.spec.seed == 7
    via_string = registry.add("bili_food:sasrec", seed=7)
    assert via_string.spec.seed == 7


def test_registry_cold_start_builds_index_lazily():
    registry = ModelRegistry(profile="smoke", warm=False)
    scenario = registry.add("kwai_food:sasrec")
    assert scenario.recommender.index_version == 0
    scenario.recommender.recommend(
        scenario.dataset.split.test[0].history, k=3)
    assert scenario.recommender.index_version == 1
