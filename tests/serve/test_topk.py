"""The argpartition-backed top-k helper vs. the full-sort reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.ops import topk

from .conftest import reference_topk


def test_topk_matches_full_sort_random():
    rng = np.random.default_rng(0)
    scores = rng.normal(size=(40, 123))
    for k in (1, 5, 50, 122, 123):
        values, indices = topk(scores, k)
        expected = reference_topk(scores, k)
        assert np.array_equal(indices, expected)
        assert np.array_equal(values,
                              np.take_along_axis(scores, expected, axis=-1))


def test_topk_matches_full_sort_with_heavy_ties():
    # Integer-valued scores force many exact ties, including ties that
    # straddle the top-k cut — the case argpartition alone gets wrong.
    rng = np.random.default_rng(1)
    for trial in range(50):
        scores = rng.integers(0, 5, size=(8, 37)).astype(np.float64)
        k = int(rng.integers(1, 37))
        _, indices = topk(scores, k)
        assert np.array_equal(indices, reference_topk(scores, k)), \
            f"trial {trial}, k={k}"


def test_topk_all_equal_scores_prefers_lower_index():
    scores = np.zeros((3, 10))
    _, indices = topk(scores, 4)
    assert np.array_equal(indices, np.tile(np.arange(4), (3, 1)))


def test_topk_handles_neg_inf_exclusions():
    scores = np.array([[5.0, -np.inf, 3.0, -np.inf, 4.0]])
    values, indices = topk(scores, 3)
    assert list(indices[0]) == [0, 4, 2]
    assert list(values[0]) == [5.0, 4.0, 3.0]


def test_topk_1d_input_and_k_clamping():
    values, indices = topk(np.array([1.0, 9.0, 4.0]), 10)
    assert indices.shape == (3,) and list(indices) == [1, 2, 0]
    assert list(values) == [9.0, 4.0, 1.0]


def test_topk_rejects_bad_inputs():
    with pytest.raises(ValueError):
        topk(np.zeros((2, 3)), 0)
    with pytest.raises(ValueError):
        topk(np.zeros((2, 3, 4)), 1)
