"""MicroBatcher: flush triggers, coalescing, LRU cache accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import LRUCache, MicroBatcher


@pytest.fixture()
def histories(dataset):
    return [ex.history for ex in dataset.split.test[:12]]


def test_flush_on_size_trigger(recommender, histories):
    with MicroBatcher(recommender, max_batch=4, max_wait_ms=10_000.0,
                      cache_size=0) as batcher:
        futures = [batcher.submit(h, k=3) for h in histories[:4]]
        results = [f.result(timeout=30) for f in futures]
    # The worker never had to wait out the clock: the 4th submit filled
    # the batch.
    assert batcher.stats.size_flushes >= 1
    assert batcher.stats.requests == 4
    for history, result in zip(histories[:4], results):
        expected = recommender.recommend(history, k=3)
        assert np.array_equal(result.items, expected.items)


def test_flush_on_timeout_trigger(recommender, histories):
    with MicroBatcher(recommender, max_batch=64, max_wait_ms=20.0,
                      cache_size=0) as batcher:
        future = batcher.submit(histories[0], k=3)
        result = future.result(timeout=30)
    assert batcher.stats.timeout_flushes == 1
    assert batcher.stats.size_flushes == 0
    assert np.array_equal(result.items,
                          recommender.recommend(histories[0], k=3).items)


def test_coalescing_batches_fewer_than_requests(recommender, histories):
    with MicroBatcher(recommender, max_batch=6, max_wait_ms=50.0,
                      cache_size=0) as batcher:
        futures = [batcher.submit(h, k=3) for h in histories]
        for future in futures:
            future.result(timeout=30)
    assert batcher.stats.requests == len(histories)
    assert batcher.stats.batches < len(histories)
    assert batcher.stats.largest_batch > 1


def test_lru_cache_hit_and_miss_accounting(recommender, histories):
    with MicroBatcher(recommender, max_batch=4, max_wait_ms=5.0,
                      cache_size=8) as batcher:
        first = batcher.recommend(histories[0], k=3)
        assert first.cached is False
        again = batcher.recommend(histories[0], k=3)
        assert again.cached is True
        assert np.array_equal(first.items, again.items)
        # Different k is a different request.
        other_k = batcher.recommend(histories[0], k=2)
        assert other_k.cached is False
    assert batcher.stats.cache_hits == 1
    assert batcher.stats.cache_misses == 2


def test_stale_index_bypasses_cache_until_rebuilt(recommender, histories):
    with MicroBatcher(recommender, max_batch=4, max_wait_ms=5.0,
                      cache_size=8) as batcher:
        first = batcher.recommend(histories[0], k=3)
        # Weight update: version number still names the old snapshot, so
        # the cached answer must not be served.
        recommender.index.mark_stale()
        after = batcher.recommend(histories[0], k=3)
        assert after.cached is False
        assert after.index_version == first.index_version + 1
        # Once rebuilt, caching resumes under the new version.
        again = batcher.recommend(histories[0], k=3)
        assert again.cached is True


def test_cache_invalidated_by_index_refresh(recommender, histories):
    with MicroBatcher(recommender, max_batch=4, max_wait_ms=5.0,
                      cache_size=8) as batcher:
        batcher.recommend(histories[0], k=3)
        recommender.refresh()          # new index version => new cache keys
        refreshed = batcher.recommend(histories[0], k=3)
        assert refreshed.cached is False
    assert batcher.stats.cache_hits == 0


def test_manual_mode_flushes_inline(recommender, histories):
    batcher = MicroBatcher(recommender, max_batch=4, cache_size=0,
                           start=False)
    result = batcher.recommend(histories[0], k=3)
    assert np.array_equal(result.items,
                          recommender.recommend(histories[0], k=3).items)
    assert batcher.stats.batches == 1
    batcher.close()


def test_mixed_k_batch_truncates_per_request(recommender, histories):
    batcher = MicroBatcher(recommender, max_batch=4, cache_size=0,
                           start=False)
    small = batcher.submit(histories[0], k=2)
    large = batcher.submit(histories[1], k=7)
    batcher.flush_pending()
    assert len(small.result(timeout=5).items) == 2
    assert len(large.result(timeout=5).items) == 7
    assert batcher.stats.batches == 1
    batcher.close()


def test_submit_after_close_raises(recommender, histories):
    batcher = MicroBatcher(recommender, max_batch=4, start=False)
    batcher.close()
    with pytest.raises(RuntimeError):
        batcher.submit(histories[0], k=3)


def test_scoring_errors_propagate_to_futures(recommender):
    batcher = MicroBatcher(recommender, max_batch=4, cache_size=0,
                           start=False)
    future = batcher.submit(np.array([1]), k=3)
    # Invalid item id: recommend_batch raises inside the flush.
    bad = batcher.submit(np.array([10_000]), k=3)
    batcher.flush_pending()
    with pytest.raises(ValueError):
        bad.result(timeout=5)
    with pytest.raises(ValueError):
        future.result(timeout=5)       # same batch, same failure
    batcher.close()


def test_results_are_frozen_so_cache_cannot_be_corrupted(recommender,
                                                         histories):
    with MicroBatcher(recommender, max_batch=4, max_wait_ms=5.0,
                      cache_size=8) as batcher:
        first = batcher.recommend(histories[0], k=3)
        with pytest.raises(ValueError):
            first.items[0] = -1        # shared with the LRU: read-only
        again = batcher.recommend(histories[0], k=3)
        assert again.cached is True
        assert np.array_equal(again.items, first.items)


def test_lru_cache_eviction_order():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1         # refresh "a"; "b" is now oldest
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert len(cache) == 2


def test_lru_cache_zero_capacity_is_disabled():
    cache = LRUCache(capacity=0)
    cache.put("a", 1)
    assert cache.get("a") is None and len(cache) == 0
