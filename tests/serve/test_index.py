"""CatalogIndex: versioned refresh, lazy build, dtype down-cast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MostPopular
from repro.serve import CatalogIndex


def test_index_builds_lazily_and_versions(model, dataset):
    index = CatalogIndex(model, dataset)
    assert index.version == 0 and index.nbytes == 0
    matrix = index.matrix
    assert index.version == 1
    assert matrix.shape == (dataset.num_items + 1, model.dim)
    assert index.nbytes == matrix.nbytes
    # Repeated access reuses the same published buffer, no rebuild.
    assert index.matrix is matrix and index.version == 1


def test_index_matches_encode_catalog(model, dataset):
    index = CatalogIndex(model, dataset)
    np.testing.assert_array_equal(index.matrix,
                                  model.encode_catalog(dataset))


def test_index_refresh_bumps_version_and_republishes(model, dataset):
    index = CatalogIndex(model, dataset)
    first = index.matrix
    assert index.refresh() == 2
    assert index.version == 2
    assert index.matrix is not first
    np.testing.assert_array_equal(index.matrix, first)


def test_index_mark_stale_triggers_rebuild(model, dataset):
    index = CatalogIndex(model, dataset)
    index.matrix
    index.mark_stale()
    assert index.matrix is not None
    assert index.version == 2


def test_index_rebuild_tracks_weight_updates(dataset, model):
    index = CatalogIndex(model, dataset)
    before = index.matrix.copy()
    original = model.item_emb.weight.data.copy()
    try:
        model.item_emb.weight.data += 1.0
        index.mark_stale()
        after = index.matrix
        assert not np.allclose(before, after)
    finally:
        model.item_emb.weight.data[:] = original
        index.mark_stale()


def test_index_float32_downcast(model, dataset):
    index = CatalogIndex(model, dataset, dtype="float32")
    assert index.matrix.dtype == np.float32
    np.testing.assert_allclose(
        index.matrix, model.encode_catalog(dataset), atol=1e-5)


def test_index_matrix_is_read_only(model, dataset):
    index = CatalogIndex(model, dataset)
    with pytest.raises(ValueError):
        index.matrix[0, 0] = 1.0


def test_index_rejects_non_catalog_models(dataset):
    with pytest.raises(TypeError):
        CatalogIndex(MostPopular(dataset.num_items), dataset)
