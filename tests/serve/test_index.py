"""CatalogIndex: versioned refresh, lazy build, dtype down-cast."""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.baselines import MostPopular
from repro.serve import CatalogIndex


def test_index_builds_lazily_and_versions(model, dataset):
    index = CatalogIndex(model, dataset)
    assert index.version == 0 and index.nbytes == 0
    matrix = index.matrix
    assert index.version == 1
    assert matrix.shape == (dataset.num_items + 1, model.dim)
    assert index.nbytes == matrix.nbytes
    # Repeated access reuses the same published buffer, no rebuild.
    assert index.matrix is matrix and index.version == 1


def test_index_matches_encode_catalog(model, dataset):
    index = CatalogIndex(model, dataset)
    np.testing.assert_array_equal(index.matrix,
                                  model.encode_catalog(dataset))


def test_index_refresh_bumps_version_and_republishes(model, dataset):
    index = CatalogIndex(model, dataset)
    first = index.matrix
    assert index.refresh() == 2
    assert index.version == 2
    assert index.matrix is not first
    np.testing.assert_array_equal(index.matrix, first)


def test_index_mark_stale_triggers_rebuild(model, dataset):
    index = CatalogIndex(model, dataset)
    index.matrix
    index.mark_stale()
    assert index.matrix is not None
    assert index.version == 2


def test_index_rebuild_tracks_weight_updates(dataset, model):
    index = CatalogIndex(model, dataset)
    before = index.matrix.copy()
    original = model.item_emb.weight.data.copy()
    try:
        model.item_emb.weight.data += 1.0
        index.mark_stale()
        after = index.matrix
        assert not np.allclose(before, after)
    finally:
        model.item_emb.weight.data[:] = original
        index.mark_stale()


def test_index_float32_downcast(model, dataset):
    index = CatalogIndex(model, dataset, dtype="float32")
    assert index.matrix.dtype == np.float32
    np.testing.assert_allclose(
        index.matrix, model.encode_catalog(dataset), atol=1e-5)


def test_index_matrix_is_read_only(model, dataset):
    index = CatalogIndex(model, dataset)
    with pytest.raises(ValueError):
        index.matrix[0, 0] = 1.0


def test_index_rejects_non_catalog_models(dataset):
    with pytest.raises(TypeError):
        CatalogIndex(MostPopular(dataset.num_items), dataset)


class _HookedEncoder:
    """Wraps a model so a callback fires at the start of every encode."""

    def __init__(self, inner):
        self._inner = inner
        self.on_encode = None

    def encode_catalog(self, dataset, chunk_size: int = 256):
        if self.on_encode is not None:
            self.on_encode()
        return self._inner.encode_catalog(dataset, chunk_size=chunk_size)


def test_mark_stale_during_rebuild_is_not_lost(model, dataset):
    # A weight update (mark_stale) landing while a rebuild is already
    # encoding refers to weights that build may not have seen; it must
    # survive publication and trigger a catch-up rebuild.
    hooked = _HookedEncoder(model)
    index = CatalogIndex(hooked, dataset)
    index.matrix                               # publish v1
    hooked.on_encode = index.mark_stale        # lands mid-encode of v2
    assert index.refresh() == 2
    assert index.stale                         # the request survived
    hooked.on_encode = None
    assert index.snapshot()[1] == 3            # catch-up rebuild ran


class _SlowEncoder:
    """Wraps a model so encode_catalog takes a visible amount of time."""

    def __init__(self, inner, started, delay_s: float):
        self._inner = inner
        self._started = started
        self._delay_s = delay_s

    def encode_catalog(self, dataset, chunk_size: int = 256):
        self._started.set()
        time.sleep(self._delay_s)
        return self._inner.encode_catalog(dataset, chunk_size=chunk_size)


def test_snapshot_serves_old_version_while_refresh_builds(model, dataset):
    # The expensive rebuild must not stall readers: while a refresh is
    # encoding (outside the reader lock), snapshot() keeps returning the
    # previous published version promptly. The race-window assertions
    # are wall-clock-dependent, so they honor REPRO_SKIP_PERF_ASSERT
    # like every other timing threshold in the repo.
    started = threading.Event()
    index = CatalogIndex(_SlowEncoder(model, started, 0.75), dataset)
    index.matrix                               # publish v1 (pays one delay)
    started.clear()
    refresher = threading.Thread(target=index.refresh)
    refresher.start()
    assert started.wait(5.0)                   # rebuild is now in flight
    tick = time.perf_counter()
    matrix, version = index.snapshot()
    elapsed = time.perf_counter() - tick
    refresher.join(timeout=10.0)
    if os.environ.get("REPRO_SKIP_PERF_ASSERT") != "1":
        assert version == 1                    # old snapshot, served...
        assert elapsed < 0.5                   # ...without waiting it out
    assert index.version == 2                  # rebuild still landed
