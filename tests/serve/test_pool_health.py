"""Fault injection: killed pool workers must surface on /health.

Each test builds its own pool (never the shared module fixture used by
test_pool.py) because the whole point is to damage it: SIGKILL a worker
process, then assert the self-monitor flips within one sampling
interval, names the right rule, keeps serving through rebalancing, and
resolves once the death ages out of the rule window.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.health import default_rules
from repro.serve import ModelRegistry, make_server
from repro.serve.pool import PooledRecommendationService

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory filesystem required")

#: Short rule window so a death ages out within a test-sized jump.
WINDOW_S = 5.0


@pytest.fixture()
def pooled():
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    service = PooledRecommendationService(registry, workers=2,
                                          max_wait_ms=1.0)
    yield service
    service.close()


def _monitor(service):
    return service.enable_monitoring(
        start=False,
        rules=default_rules(window_s=WINDOW_S, cooldown_s=0.0))


def _kill_worker(service, index=0) -> int:
    pid = service.pool._workers[index].process.pid
    os.kill(pid, signal.SIGKILL)
    return pid


def _await_alive(service, expected, timeout=10.0) -> None:
    deadline = time.time() + timeout
    while service.pool.alive() != expected:
        if time.time() > deadline:
            raise AssertionError(
                f"pool never reached alive={expected} "
                f"(now {service.pool.alive()})")
        time.sleep(0.05)


def _history(service, row=0):
    scenario = service.registry.get("kwai_food", "sasrec")
    return [int(i) for i in scenario.dataset.split.test[row].history]


def test_sigkill_degrades_within_one_sample_then_recovers(pooled):
    monitor = _monitor(pooled)
    monitor.timeline.sample()           # clean baseline
    assert monitor.status()["status"] == "ok"

    _kill_worker(pooled, index=0)
    _await_alive(pooled, 1)             # the read loop noticed the death
    monitor.timeline.sample()           # detection = one sampling interval
    payload = monitor.status()
    assert payload["status"] == "degraded"
    assert [c["rule"] for c in payload["causes"]] == ["pool_worker_death"]
    assert "repro_pool_worker_deaths_total" in payload["causes"][0]["cause"]

    # Requests rebalance onto the survivor: the service still answers
    # with the same ranking the in-process recommender produces.
    history = _history(pooled)
    expected = pooled.registry.get("kwai_food", "sasrec") \
        .recommender.recommend(history, k=10)
    result = pooled.recommend("kwai_food", "sasrec", history, k=10)
    assert result["items"] == [int(i) for i in expected.items]

    # Once the death increment ages out of the rule window, the alert
    # resolves (one worker down of two is degraded history, not state).
    monitor.timeline.sample(now=time.time() + 10 * WINDOW_S)
    payload = monitor.status()
    assert payload["status"] == "ok"
    events = [(e["rule"], e["event"]) for e in monitor.alerts()["history"]]
    assert ("pool_worker_death", "fired") in events
    assert ("pool_worker_death", "resolved") in events


def test_all_workers_dead_is_failing_and_health_answers_503(pooled):
    monitor = _monitor(pooled)
    monitor.timeline.sample()
    server = make_server(pooled, port=0)
    server.start_background()
    try:
        for index in range(2):
            _kill_worker(pooled, index=index)
        _await_alive(pooled, 0)
        monitor.timeline.sample()
        payload = monitor.status()
        assert payload["status"] == "failing"
        firing = {c["rule"] for c in payload["causes"]}
        assert "pool_workers_dead" in firing

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/health", timeout=30)
        assert excinfo.value.code == 503
        body = json.loads(excinfo.value.read().decode())
        assert body["status"] == "failing"
        assert body["rules"]["pool_workers_dead"]["state"] == "firing"
    finally:
        server.shutdown()
        server.server_close()


def test_clean_shutdown_never_counts_as_worker_death():
    from repro.obs import metrics
    deaths = metrics.counter("repro_pool_worker_deaths_total")
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    service = PooledRecommendationService(registry, workers=2,
                                          max_wait_ms=1.0)
    before = deaths.value
    service.close()                     # orderly stop of both workers
    # close() marks every handle dead, but that sweep must not read as
    # a health event — the pool_worker_death rule watches this counter.
    assert deaths.value == before
