"""Worker-pool serving tier: correctness, topology, merged observability.

The pooled service must be indistinguishable from the in-process one at
the API boundary: bitwise-identical rankings (workers score the *same*
float32 matrices through shared memory), the same payload contract, the
same error taxonomy across the process hop — plus pool-only extras
(topology on ``/stats``, cross-process merged ``/metrics``).
"""

from __future__ import annotations

import json
import os
import urllib.request

import pytest

from repro.obs import metrics
from repro.serve import (KeepAliveClient, ModelRegistry, make_server)
from repro.serve.pool import PooledRecommendationService

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory filesystem required")


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry(profile="smoke", dtype="float32")
    reg.add_all("kwai_food:sasrec,bili_food:pmmrec-text")
    return reg


@pytest.fixture(scope="module")
def pooled(registry):
    service = PooledRecommendationService(registry, workers=2,
                                          max_wait_ms=1.0)
    yield service
    service.close()


def _history(registry, dataset, model, row=0):
    scenario = registry.get(dataset, model)
    return [int(i) for i in scenario.dataset.split.test[row].history]


def test_pooled_matches_in_process_bitwise(registry, pooled):
    for dataset, model in (("kwai_food", "sasrec"),
                           ("bili_food", "pmmrec-text")):
        for row in range(4):
            history = _history(registry, dataset, model, row)
            expected = registry.get(dataset, model) \
                .recommender.recommend(history, k=10)
            payload = pooled.recommend(dataset, model, history, k=10)
            assert payload["items"] == [int(i) for i in expected.items]
            assert payload["scores"] == pytest.approx(
                [float(s) for s in expected.scores], abs=0.0)
            assert payload["index_version"] == expected.index_version
            assert payload["dataset"] == dataset
            assert payload["model"] == model
            assert payload["latency_ms"] > 0.0


def test_requests_spread_across_workers(registry, pooled):
    history = _history(registry, "kwai_food", "sasrec")
    for _ in range(6):
        pooled.recommend("kwai_food", "sasrec", history, k=5)
    per_worker = pooled.stats()["pool"]["per_worker"]
    assert len(per_worker) == 2
    # Round-robin: both workers served traffic (exact split depends on
    # how many earlier tests ran; >0 each is the invariant).
    assert all(w["requests"] > 0 for w in per_worker)


def test_stats_reports_pool_topology(pooled):
    stats = pooled.stats()
    pool = stats["pool"]
    assert pool["mode"] == "pool"
    assert pool["workers"] == 2
    assert pool["alive"] == 2
    assert pool["fence"]["state"] in ("idle", "fencing")
    assert set(pool["generations"]) == {"kwai_food:sasrec",
                                        "bili_food:pmmrec-text"}
    assert all(g >= 1 for g in pool["generations"].values())
    for worker in pool["per_worker"]:
        assert worker["alive"] is True
        assert worker["pid"] != os.getpid()
        for counters in worker["scenarios"].values():
            assert counters["generation"] >= 1
    assert stats["settings"]["workers"] == 2
    # Aggregated per-scenario counters still present (service contract).
    assert set(stats["scenarios"]) >= {"kwai_food:sasrec"}


def test_metrics_merge_sums_worker_counters(registry, pooled):
    history = _history(registry, "kwai_food", "sasrec", row=1)
    for _ in range(3):
        pooled.recommend("kwai_food", "sasrec", history, k=7)
    text = pooled.metrics_text()
    parsed = metrics.parse_prometheus(text)
    batcher_requests = sum(
        v for (name, labels), v in parsed.items()
        if name == "repro_serve_batcher_requests_total"
        and "kwai_food:sasrec" in labels)
    served = sum(w["scenarios"]["kwai_food:sasrec"]["requests"]
                 for w in pooled.stats()["pool"]["per_worker"])
    # Worker batcher counters surface in the parent's single exposition.
    assert batcher_requests >= served > 0
    # Parent-side series co-exist with merged worker series.
    assert any(name == "repro_serve_request_seconds_count"
               for name, _ in parsed)
    assert any(name == "repro_pool_workers_alive" for name, _ in parsed)
    # No family is declared twice — merging folded duplicates.
    type_lines = [line for line in text.splitlines()
                  if line.startswith("# TYPE ")]
    assert len(type_lines) == len(set(type_lines))


def test_unknown_scenario_and_bad_history_error_types(pooled):
    with pytest.raises(KeyError):
        pooled.recommend("kwai_food", "nope", [1, 2], k=5)
    with pytest.raises((ValueError, IndexError)):
        # Out-of-range item ids must fail loudly across the pipe, not
        # crash the worker or silently truncate.
        pooled.recommend("kwai_food", "sasrec", [10 ** 9], k=5)
    # The pool survived the failed request.
    assert pooled.pool.alive() == 2


def test_http_keepalive_reuses_one_connection(registry, pooled):
    server = make_server(pooled, port=0)
    server.start_background()
    client = KeepAliveClient("127.0.0.1", server.server_address[1])
    try:
        history = _history(registry, "kwai_food", "sasrec", row=2)
        payloads = [client.post_json("/recommend",
                                     {"dataset": "kwai_food",
                                      "model": "sasrec",
                                      "history": history, "k": 5})
                    for _ in range(4)]
        assert all(p["items"] == payloads[0]["items"] for p in payloads)
        assert client.reconnects == 0, \
            "keep-alive server closed the connection between requests"
        stats = client.get_json("/stats")
        assert stats["pool"]["mode"] == "pool"
        request = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(request, timeout=30) as response:
            text = response.read().decode()
        assert "repro_pool_workers_alive" in text
    finally:
        client.close()
        server.shutdown()
        server.server_close()


def test_refresh_over_pool_bumps_every_worker(registry, pooled):
    version = pooled.refresh("bili_food", "pmmrec-text")
    assert version >= 2
    per_worker = pooled.stats()["pool"]["per_worker"]
    versions = {w["scenarios"]["bili_food:pmmrec-text"]["index_version"]
                for w in per_worker}
    assert versions == {version}
    history = _history(registry, "bili_food", "pmmrec-text")
    expected = registry.get("bili_food", "pmmrec-text") \
        .recommender.recommend(history, k=10)
    payload = pooled.recommend("bili_food", "pmmrec-text", history, k=10)
    assert payload["items"] == [int(i) for i in expected.items]
    assert payload["index_version"] == version
