"""Concurrency stress for the MicroBatcher: no drops, no dupes, no stale.

Many client threads hammer one batcher across flush-on-size and
flush-on-timeout boundaries; every single future must resolve to the
same answer direct retrieval gives, the request/response accounting
must balance exactly, and a mid-flight ``refresh()`` must invalidate
LRU entries through the version key rather than serving pre-refresh
answers as cached.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import MicroBatcher

THREADS = 8
REQUESTS_PER_THREAD = 25


@pytest.fixture()
def request_pool(recommender, dataset):
    histories = [ex.history for ex in dataset.split.test[:12]]
    ks = (3, 5, 7)
    pool = [(np.asarray(h), k) for h in histories for k in ks]
    expected = {(h.tobytes(), k): recommender.recommend(h, k=k)
                for h, k in pool}
    return pool, expected


def _hammer(batcher, pool, per_thread, thread_seed, out, errors):
    rng = np.random.default_rng(thread_seed)
    try:
        picks = rng.integers(0, len(pool), size=per_thread)
        futures = [(pool[p], batcher.submit(pool[p][0], k=pool[p][1]))
                   for p in picks]
        for (history, k), future in futures:
            out.append(((history.tobytes(), k), future.result(timeout=30)))
    except Exception as exc:  # noqa: BLE001 - surfaced in the main thread
        errors.append(exc)


def test_threaded_stress_no_dropped_or_duplicated_responses(recommender,
                                                            request_pool):
    pool, expected = request_pool
    responses: list = []
    errors: list = []
    with MicroBatcher(recommender, max_batch=4, max_wait_ms=1.0,
                      cache_size=64) as batcher:
        threads = [threading.Thread(
            target=_hammer,
            args=(batcher, pool, REQUESTS_PER_THREAD, seed, responses,
                  errors))
            for seed in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "stress thread wedged"
    assert errors == []
    total = THREADS * REQUESTS_PER_THREAD
    # Exactly one response per request: nothing dropped...
    assert len(responses) == total
    stats = batcher.stats
    assert stats.requests == total
    # ...nothing double-served: every request is either a cache hit or
    # went through exactly one flushed batch.
    assert stats.cache_hits + stats.cache_misses == total
    assert stats.batches <= stats.cache_misses
    assert stats.largest_batch <= 4
    # Every answer is the answer direct retrieval gives.
    for key, result in responses:
        reference = expected[key]
        assert np.array_equal(result.items, reference.items)
        assert np.allclose(result.scores, reference.scores)
        assert len(result.items) <= key[1]


def test_stress_across_refresh_keeps_answers_and_versions_sane(
        recommender, request_pool):
    pool, expected = request_pool
    responses: list = []
    errors: list = []
    stop = threading.Event()

    def refresher():
        while not stop.is_set():
            recommender.refresh()
            stop.wait(0.002)

    with MicroBatcher(recommender, max_batch=4, max_wait_ms=1.0,
                      cache_size=64) as batcher:
        churn = threading.Thread(target=refresher)
        threads = [threading.Thread(
            target=_hammer,
            args=(batcher, pool, REQUESTS_PER_THREAD, 100 + seed, responses,
                  errors))
            for seed in range(4)]
        churn.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "stress thread wedged"
        stop.set()
        churn.join(timeout=10)
    assert errors == []
    assert len(responses) == 4 * REQUESTS_PER_THREAD
    final_version = recommender.index_version
    for key, result in responses:
        # Model weights never changed, so every answer matches direct
        # retrieval regardless of which snapshot served it...
        reference = expected[key]
        assert np.array_equal(result.items, reference.items)
        # ...and no answer claims a version that never existed.
        assert 1 <= result.index_version <= final_version


def test_lru_entries_invalidate_after_refresh(recommender, request_pool):
    pool, _ = request_pool
    history, k = pool[0]
    with MicroBatcher(recommender, max_batch=4, max_wait_ms=1.0,
                      cache_size=64) as batcher:
        first = batcher.recommend(history, k=k)
        assert batcher.recommend(history, k=k).cached is True
        new_version = recommender.refresh()
        assert new_version == first.index_version + 1
        # The pre-refresh entry is keyed under the old version: the next
        # request must miss, re-score against the new snapshot, and only
        # then repopulate the cache under the new version.
        fresh = batcher.recommend(history, k=k)
        assert fresh.cached is False
        assert fresh.index_version == new_version
        assert batcher.recommend(history, k=k).cached is True
