"""Property-based lockdown of the serving retrieval primitives.

``nn.topk`` promises *exactly* a stable descending sort truncated to
``k`` — ties broken by lower index — over arbitrary shapes, dtypes and
tie patterns; the argpartition fast path must never be observable.
Hypothesis drives it against the full-argsort oracle, including the
``-inf`` exclusion values the serving mask path injects, and a fake
scorer drives the whole ``Recommender`` request path (padding mask +
seen-item exclusion + truncation) against the same oracle.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.ops import topk
from repro.serve import Recommender

from .conftest import reference_topk


def _scores(seed: int, rows: int, cols: int, dtype, tie_levels: int,
            neg_inf_frac: float) -> np.ndarray:
    """A score matrix with controlled tie density and -inf exclusions."""
    rng = np.random.default_rng(seed)
    scores = rng.integers(0, tie_levels, size=(rows, cols)).astype(dtype)
    if neg_inf_frac > 0:
        mask = rng.random((rows, cols)) < neg_inf_frac
        # Keep at least one finite entry per row so answers are non-empty.
        mask[:, 0] = False
        scores[mask] = -np.inf
    return scores


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(0, 2**31), rows=st.integers(1, 6),
       cols=st.integers(1, 64), k=st.integers(1, 80),
       dtype=st.sampled_from([np.float32, np.float64]),
       tie_levels=st.integers(1, 1000),
       neg_inf_frac=st.sampled_from([0.0, 0.3, 0.9]))
def test_topk_equals_stable_argsort_oracle(seed, rows, cols, k, dtype,
                                           tie_levels, neg_inf_frac):
    scores = _scores(seed, rows, cols, dtype, tie_levels, neg_inf_frac)
    values, indices = topk(scores, k)
    k_eff = min(k, cols)
    expected = reference_topk(scores, k_eff)
    assert indices.shape == (rows, k_eff)
    assert np.array_equal(indices, expected)
    assert np.array_equal(values,
                          np.take_along_axis(scores, expected, axis=-1))


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 2**31), cols=st.integers(1, 64),
       k=st.integers(1, 80), tie_levels=st.integers(1, 8))
def test_topk_1d_equals_oracle(seed, cols, k, tie_levels):
    scores = _scores(seed, 1, cols, np.float64, tie_levels, 0.0)[0]
    values, indices = topk(scores, k)
    expected = reference_topk(scores, min(k, cols))
    assert indices.ndim == 1
    assert np.array_equal(indices, expected)
    assert np.array_equal(values, scores[expected])


# -- the seen-item-exclusion mask path through Recommender -------------------


class _TableScorer:
    """Deterministic fallback-protocol model: one fixed score row per item.

    Scores a history as the table row of its last item, *returning
    shared state* — which is exactly the case ``Recommender._mask_scores``
    must defensively copy before writing ``-inf`` exclusions into it.
    """

    def __init__(self, num_items: int, seed: int):
        rng = np.random.default_rng(seed)
        # A small integer range forces score ties across items.
        self.table = rng.integers(0, 7,
                                  size=(num_items + 1,
                                        num_items + 1)).astype(np.float64)

    def score_histories(self, dataset, histories):
        return self.table[[int(h[-1]) for h in histories]]


class _FakeDataset:
    name = "fake"

    def __init__(self, num_items: int):
        self.num_items = num_items


def _oracle_recommend(scores: np.ndarray, history: np.ndarray,
                      k: int, exclude_seen: bool) -> np.ndarray:
    scores = scores.copy()
    scores[0] = -np.inf
    if exclude_seen:
        scores[np.asarray(history)] = -np.inf
    order = np.argsort(-scores, kind="stable")
    order = order[np.isfinite(scores[order])]
    return order[:k]


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 2**31), num_items=st.integers(2, 40),
       history_len=st.integers(1, 12), k=st.integers(1, 50),
       exclude_seen=st.booleans())
def test_recommend_matches_oracle_with_exclusion(seed, num_items,
                                                 history_len, k,
                                                 exclude_seen):
    rng = np.random.default_rng(seed)
    model = _TableScorer(num_items, seed)
    dataset = _FakeDataset(num_items)
    recommender = Recommender(model, dataset, exclude_seen=exclude_seen)
    history = rng.integers(1, num_items + 1, size=history_len)
    answer = recommender.recommend(history, k=k)
    expected = _oracle_recommend(model.table[int(history[-1])], history,
                                 k, exclude_seen)
    assert np.array_equal(answer.items, expected)
    if exclude_seen:
        assert not np.isin(answer.items, history).any()
    assert 0 not in answer.items
    # The shared table row must be untouched by the in-place masking.
    assert np.isfinite(model.table).all()
