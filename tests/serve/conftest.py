"""Shared fixtures for the serving-subsystem tests (smoke-scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_baseline
from repro.data import build_dataset
from repro.serve import Recommender


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("kwai_food", profile="smoke")


@pytest.fixture(scope="module")
def model(dataset):
    return make_baseline("sasrec", dataset, seed=0)


@pytest.fixture(scope="module")
def recommender(model, dataset):
    return Recommender(model, dataset)


def reference_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """Stable full-sort reference the argpartition path must agree with."""
    return np.argsort(-scores, axis=-1, kind="stable")[..., :k]
