"""Shared-memory hygiene for the worker pool (``repro.serve.pool``).

The pool maps catalogue matrices into ``/dev/shm`` segments; every test
here pins the same invariant from a different failure mode: after the
service is gone, **no segment with the pool's prefix survives** — clean
shutdown, a SIGKILLed worker, and a fence raced by a worker death all
included. Leaked segments are how a long-lived host quietly runs out of
shm, so the assertions check the filesystem, not bookkeeping dicts.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.serve import ModelRegistry
from repro.serve.pool import (PooledRecommendationService, PoolError,
                              SharedCatalogStore)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory filesystem required")


def _segments(prefix: str) -> list[str]:
    return sorted(f for f in os.listdir("/dev/shm") if f.startswith(prefix))


def _make_service(workers: int = 2) -> PooledRecommendationService:
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    return PooledRecommendationService(registry, workers=workers,
                                       max_wait_ms=1.0)


def _history(service) -> list[int]:
    scenario = service.registry.get("kwai_food", "sasrec")
    return [int(i) for i in scenario.dataset.split.test[0].history]


# -- store unit behaviour -----------------------------------------------------

def test_store_publish_attach_roundtrip():
    store = SharedCatalogStore()
    arrays = {"matrix": np.arange(24, dtype=np.float32).reshape(6, 4),
              "w:item_emb": np.linspace(-1, 1, 10, dtype=np.float16),
              "ids": np.arange(6, dtype=np.int64)}
    name = store.publish("g1-unit", arrays)
    assert _segments(store.prefix) == [name]
    shm, views = SharedCatalogStore.attach(name)
    try:
        assert set(views) == set(arrays)
        for key, expected in arrays.items():
            got = views[key]
            assert got.dtype == expected.dtype
            assert got.shape == expected.shape
            assert not got.flags.writeable          # read-only in workers
            np.testing.assert_array_equal(got, expected)
            # 64-byte alignment keeps vectorized loads happy.
            assert got.__array_interface__["data"][0] % 64 == 0
    finally:
        del views
        shm.close()
    store.unlink(name)
    assert _segments(store.prefix) == []
    store.unlink(name)                              # idempotent
    store.close()


def test_store_close_unlinks_everything():
    store = SharedCatalogStore()
    for generation in range(3):
        store.publish(f"g{generation}",
                      {"m": np.zeros((4, 2), dtype=np.float32)})
    assert len(_segments(store.prefix)) == 3
    store.close()
    assert _segments(store.prefix) == []


# -- pool lifecycle -----------------------------------------------------------

def test_clean_shutdown_leaves_no_segments():
    service = _make_service(workers=2)
    prefix = service.shm_prefix
    assert _segments(prefix), "boot should have published gen-1 segments"
    result = service.recommend("kwai_food", "sasrec",
                               _history(service), k=5)
    assert len(result["items"]) == 5
    service.close()
    assert _segments(prefix) == []


def test_worker_crash_pool_survives_then_cleans_up():
    service = _make_service(workers=2)
    prefix = service.shm_prefix
    try:
        victim = service.pool._workers[0]
        victim.process.kill()
        victim.process.join(timeout=10)
        # Traffic keeps flowing: the dispatcher retries on the survivor.
        result = service.recommend("kwai_food", "sasrec",
                                   _history(service), k=5)
        assert len(result["items"]) == 5
        assert service.pool.alive() == 1
        topology = service.stats()["pool"]
        assert topology["workers"] == 2 and topology["alive"] == 1
    finally:
        service.close()
    # The kill orphaned the worker's *maps*, not the names: unlink at
    # close still removes every /dev/shm entry.
    assert _segments(prefix) == []


def test_fence_with_dead_worker_completes_and_unlinks_old_generation():
    service = _make_service(workers=2)
    prefix = service.shm_prefix
    try:
        victim = service.pool._workers[1]
        victim.process.kill()
        victim.process.join(timeout=10)
        scenario = service.registry.get("kwai_food", "sasrec")
        scenario.recommender.refresh()
        fence = service.publish_generation(scenario)
        # The fence must neither hang on the corpse nor report it acked.
        assert fence["generation"] == 2
        assert fence["acked"] == 1
        assert fence["workers"] == 2
        # Old generation's segment is gone the moment the fence closes;
        # exactly the new generation's segment remains.
        live = _segments(prefix)
        assert len(live) == 1 and "-g2-" in live[0]
        result = service.recommend("kwai_food", "sasrec",
                                   _history(service), k=5)
        assert len(result["items"]) == 5
    finally:
        service.close()
    assert _segments(prefix) == []


def test_all_workers_dead_raises_not_hangs():
    service = _make_service(workers=2)
    prefix = service.shm_prefix
    try:
        for worker in list(service.pool._workers):
            worker.process.kill()
            worker.process.join(timeout=10)
        with pytest.raises(PoolError):
            service.recommend("kwai_food", "sasrec",
                              _history(service), k=5)
    finally:
        service.close()
    assert _segments(prefix) == []
