"""Observability overhead: the instrumented hot path must stay ~free.

The obs PR's acceptance bar: serving QPS with the metrics registry and
span sites live must land within 5% of the same path with every
instrument write disabled (``REGISTRY.disable()`` + tracing off — the
pre-obs baseline, modulo dead branches). The ``slow``-marked artifact
case records both sides plus the per-instrument micro-costs under
``results/obs_bench.txt``. Wall-clock ratio assertions honor
``REPRO_SKIP_PERF_ASSERT=1`` (CI; numbers are still recorded).
"""

import os
import time

import numpy as np
import pytest

from repro.data import build_dataset
from repro.obs import REGISTRY, metrics, trace
from repro.serve import MicroBatcher, Recommender, request_stream
from repro.serve.registry import build_model

from .conftest import emit

_skip_perf_assert = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1",
    reason="wall-clock ratio asserts disabled (shared/throttled runner)")


def _serving_qps(histories, recommender, batch_size: int = 16,
                 repeats: int = 3) -> float:
    """Best-of-N QPS through the micro-batcher's manual-flush path."""
    best = 0.0
    for _ in range(repeats):
        batcher = MicroBatcher(recommender, max_batch=batch_size,
                               cache_size=0, start=False,
                               metrics_label="obs-bench")
        futures = []
        start = time.perf_counter()
        for history in histories:
            futures.append(batcher.submit(history, k=10))
            if len(futures) % batch_size == 0:
                batcher.flush_pending()
        batcher.flush_pending()
        for future in futures:
            future.result(timeout=0)
        elapsed = time.perf_counter() - start
        best = max(best, len(histories) / elapsed)
        batcher.close()
    return best


@pytest.fixture()
def serving_setup():
    dataset = build_dataset("kwai_food", profile="smoke")
    model = build_model("sasrec", dataset, seed=0)
    model.to_dtype("float32")
    recommender = Recommender(model, dataset, index_dtype="float32")
    recommender.refresh()
    histories = request_stream(dataset, 192, seed=0)
    return recommender, histories


def _ab_compare(recommender, histories) -> dict:
    """QPS with instruments live vs with every registry write disabled."""
    trace.configure(sample_rate=0.0)
    _serving_qps(histories[:32], recommender)         # warm both paths
    REGISTRY.disable()
    try:
        bare = _serving_qps(histories, recommender)
    finally:
        REGISTRY.enable()
    instrumented = _serving_qps(histories, recommender)
    return {"bare_qps": bare, "instrumented_qps": instrumented,
            "overhead_frac": 1.0 - instrumented / bare}


def test_obs_overhead_harness(serving_setup):
    """The A/B harness runs and produces sane, comparable numbers."""
    recommender, histories = serving_setup
    result = _ab_compare(recommender, histories[:64])
    assert result["bare_qps"] > 0 and result["instrumented_qps"] > 0
    # Generous envelope for the fast suite (tiny run, noisy timer);
    # the slow artifact case pins the real 5% bar.
    assert result["overhead_frac"] < 0.5


def _micro_costs() -> dict:
    """Nanosecond-scale cost of each hot-path obs primitive."""
    out = {}
    counter = metrics.counter("obs_bench_counter")
    hist = metrics.histogram("obs_bench_hist")
    n = 200_000

    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
    out["counter_inc_ns"] = (time.perf_counter() - start) / n * 1e9

    start = time.perf_counter()
    for _ in range(n):
        hist.observe(3.5e-3)
    out["hist_observe_ns"] = (time.perf_counter() - start) / n * 1e9

    start = time.perf_counter()
    for _ in range(n):
        trace.current()
    out["trace_current_ns"] = (time.perf_counter() - start) / n * 1e9

    tracer = trace.Tracer(sample_rate=0.0)
    start = time.perf_counter()
    for _ in range(n):
        tracer.sample()
    out["sample_disabled_ns"] = (time.perf_counter() - start) / n * 1e9
    return out


@pytest.mark.slow
@_skip_perf_assert
def test_obs_overhead_within_5pct_artifact(serving_setup):
    """Acceptance: instrumented serving QPS within 5% of the bare path."""
    recommender, histories = serving_setup
    result = _ab_compare(recommender, histories)
    micro = _micro_costs()
    quantile_snapshot = metrics.histogram(
        "repro_serve_queue_wait_seconds",
        labels={"scenario": "obs-bench"}).snapshot()
    lines = [
        "observability overhead benchmark",
        "================================",
        f"serving path (sasrec @ smoke, 192 requests, batch 16, "
        f"best of 3):",
        f"  bare (registry disabled, tracing off)  "
        f"{result['bare_qps']:>10.1f} req/s",
        f"  instrumented (counters+histograms)     "
        f"{result['instrumented_qps']:>10.1f} req/s",
        f"  overhead                               "
        f"{result['overhead_frac'] * 100:>10.2f} %",
        "",
        "per-call primitive costs:",
        f"  counter.inc()                {micro['counter_inc_ns']:>8.0f} ns",
        f"  histogram.observe()          {micro['hist_observe_ns']:>8.0f} ns",
        f"  trace.current() (span site)  "
        f"{micro['trace_current_ns']:>8.0f} ns",
        f"  tracer.sample() (rate 0)     "
        f"{micro['sample_disabled_ns']:>8.0f} ns",
        "",
        f"queue-wait histogram after run: {quantile_snapshot.total} "
        f"observations, p50 "
        f"{quantile_snapshot.quantile(0.5) * 1e3:.3f} ms",
    ]
    emit("obs_bench", "\n".join(lines))
    # The 5% acceptance bar, with headroom for timer noise at this scale.
    assert result["overhead_frac"] < 0.05, (
        f"obs overhead {result['overhead_frac']:.2%} exceeds the 5% bar")
    # Disabled-tracing span sites must stay nanosecond-scale.
    assert micro["trace_current_ns"] < 2_000
    assert micro["sample_disabled_ns"] < 2_000


def test_obs_bench_counters_visible():
    """The bench path's instruments land in the global registry."""
    rng = np.random.default_rng(0)
    hist = metrics.histogram("obs_bench_visibility")
    for value in rng.uniform(1e-4, 1e-2, size=32):
        hist.observe(float(value))
    rendered = metrics.render_prometheus()
    assert "obs_bench_visibility_count" in rendered
    parsed = metrics.parse_prometheus(rendered)
    assert parsed[("obs_bench_visibility_count", "")] >= 32.0
