"""Observability overhead: the instrumented hot path must stay ~free.

The obs PR's acceptance bar: serving QPS with the metrics registry and
span sites live must land within 5% of the same path with every
instrument write disabled (``REGISTRY.disable()`` + tracing off — the
pre-obs baseline, modulo dead branches). The ``slow``-marked artifact
case records both sides plus the per-instrument micro-costs under
``results/obs_bench.txt``. Wall-clock ratio assertions honor
``REPRO_SKIP_PERF_ASSERT=1`` (CI; numbers are still recorded).
"""

import os
import statistics
import time

import numpy as np
import pytest

from repro.data import build_dataset
from repro.obs import REGISTRY, metrics, trace
from repro.serve import MicroBatcher, Recommender, request_stream
from repro.serve.registry import build_model

from .conftest import emit

_skip_perf_assert = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1",
    reason="wall-clock ratio asserts disabled (shared/throttled runner)")


def _serving_qps(histories, recommender, batch_size: int = 16,
                 repeats: int = 3) -> float:
    """Best-of-N QPS through the micro-batcher's manual-flush path."""
    best = 0.0
    for _ in range(repeats):
        batcher = MicroBatcher(recommender, max_batch=batch_size,
                               cache_size=0, start=False,
                               metrics_label="obs-bench")
        futures = []
        start = time.perf_counter()
        for history in histories:
            futures.append(batcher.submit(history, k=10))
            if len(futures) % batch_size == 0:
                batcher.flush_pending()
        batcher.flush_pending()
        for future in futures:
            future.result(timeout=0)
        elapsed = time.perf_counter() - start
        best = max(best, len(histories) / elapsed)
        batcher.close()
    return best


@pytest.fixture()
def serving_setup():
    dataset = build_dataset("kwai_food", profile="smoke")
    model = build_model("sasrec", dataset, seed=0)
    model.to_dtype("float32")
    recommender = Recommender(model, dataset, index_dtype="float32")
    recommender.refresh()
    histories = request_stream(dataset, 192, seed=0)
    return recommender, histories


def _ab_compare(recommender, histories) -> dict:
    """QPS with instruments live vs with every registry write disabled."""
    trace.configure(sample_rate=0.0)
    _serving_qps(histories[:32], recommender)         # warm both paths
    REGISTRY.disable()
    try:
        bare = _serving_qps(histories, recommender)
    finally:
        REGISTRY.enable()
    instrumented = _serving_qps(histories, recommender)
    return {"bare_qps": bare, "instrumented_qps": instrumented,
            "overhead_frac": 1.0 - instrumented / bare}


def test_obs_overhead_harness(serving_setup):
    """The A/B harness runs and produces sane, comparable numbers."""
    recommender, histories = serving_setup
    result = _ab_compare(recommender, histories[:64])
    assert result["bare_qps"] > 0 and result["instrumented_qps"] > 0
    # Generous envelope for the fast suite (tiny run, noisy timer);
    # the slow artifact case pins the real 5% bar.
    assert result["overhead_frac"] < 0.5


def _micro_costs() -> dict:
    """Nanosecond-scale cost of each hot-path obs primitive."""
    out = {}
    counter = metrics.counter("obs_bench_counter")
    hist = metrics.histogram("obs_bench_hist")
    n = 200_000

    start = time.perf_counter()
    for _ in range(n):
        counter.inc()
    out["counter_inc_ns"] = (time.perf_counter() - start) / n * 1e9

    start = time.perf_counter()
    for _ in range(n):
        hist.observe(3.5e-3)
    out["hist_observe_ns"] = (time.perf_counter() - start) / n * 1e9

    start = time.perf_counter()
    for _ in range(n):
        trace.current()
    out["trace_current_ns"] = (time.perf_counter() - start) / n * 1e9

    tracer = trace.Tracer(sample_rate=0.0)
    start = time.perf_counter()
    for _ in range(n):
        tracer.sample()
    out["sample_disabled_ns"] = (time.perf_counter() - start) / n * 1e9
    return out


@pytest.mark.slow
@_skip_perf_assert
def test_obs_overhead_within_5pct_artifact(serving_setup):
    """Acceptance: instrumented serving QPS within 5% of the bare path."""
    recommender, histories = serving_setup
    result = _ab_compare(recommender, histories)
    micro = _micro_costs()
    quantile_snapshot = metrics.histogram(
        "repro_serve_queue_wait_seconds",
        labels={"scenario": "obs-bench"}).snapshot()
    lines = [
        "observability overhead benchmark",
        "================================",
        f"serving path (sasrec @ smoke, 192 requests, batch 16, "
        f"best of 3):",
        f"  bare (registry disabled, tracing off)  "
        f"{result['bare_qps']:>10.1f} req/s",
        f"  instrumented (counters+histograms)     "
        f"{result['instrumented_qps']:>10.1f} req/s",
        f"  overhead                               "
        f"{result['overhead_frac'] * 100:>10.2f} %",
        "",
        "per-call primitive costs:",
        f"  counter.inc()                {micro['counter_inc_ns']:>8.0f} ns",
        f"  histogram.observe()          {micro['hist_observe_ns']:>8.0f} ns",
        f"  trace.current() (span site)  "
        f"{micro['trace_current_ns']:>8.0f} ns",
        f"  tracer.sample() (rate 0)     "
        f"{micro['sample_disabled_ns']:>8.0f} ns",
        "",
        f"queue-wait histogram after run: {quantile_snapshot.total} "
        f"observations, p50 "
        f"{quantile_snapshot.quantile(0.5) * 1e3:.3f} ms",
    ]
    emit("obs_bench", "\n".join(lines))
    # The 5% acceptance bar, with headroom for timer noise at this scale.
    assert result["overhead_frac"] < 0.05, (
        f"obs overhead {result['overhead_frac']:.2%} exceeds the 5% bar")
    # Disabled-tracing span sites must stay nanosecond-scale.
    assert micro["trace_current_ns"] < 2_000
    assert micro["sample_disabled_ns"] < 2_000


def _service_qps(service, histories, duration_s: float = 1.0,
                 repeats: int = 3) -> float:
    """Best-of-N QPS through the full service facade (direct path).

    Duration-based rather than request-count-based so the background
    monitor (when on) takes several samples inside every measurement
    window — otherwise a short burst could dodge the sampler entirely
    and the A/B would measure nothing.
    """
    best = 0.0
    for _ in range(repeats):
        served = 0
        start = time.perf_counter()
        while True:
            service.recommend("kwai_food", "sasrec",
                              histories[served % len(histories)], k=10)
            served += 1
            elapsed = time.perf_counter() - start
            if elapsed >= duration_s:
                break
        best = max(best, served / elapsed)
    return best


@pytest.fixture()
def monitored_setup():
    from repro.serve import ModelRegistry, RecommendationService
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    service = RecommendationService(registry, cache_size=0, batching=False)
    histories = request_stream(
        registry.get("kwai_food", "sasrec").dataset, 192, seed=0)
    yield service, histories
    service.close()


def _monitor_ab(service, histories, pairs: int = 12,
                duration_s: float = 0.5) -> dict:
    """QPS with the self-monitor sampling at 2 Hz vs monitor off.

    2 Hz is 2x the default production interval, so every measurement
    window contains at least one full sample+evaluate cycle. Raw QPS
    on a shared single-core host jitters far more than the effect
    under test, so the comparison is paired: each round measures both
    arms back to back, alternating which arm goes first (cancels
    monotonic host drift), and the statistic is the ratio of the two
    arms' medians rather than any single reading.
    """
    trace.configure(sample_rate=0.0)

    def measure_on() -> float:
        service.enable_monitoring(interval_s=0.5, window_s=60.0)
        time.sleep(0.05)        # first background sample lands
        try:
            return _service_qps(service, histories,
                                duration_s=duration_s, repeats=1)
        finally:
            service._close_monitor()

    def one_round() -> dict:
        offs, ons = [], []
        for i in range(pairs):
            if i % 2 == 0:
                offs.append(_service_qps(service, histories,
                                         duration_s=duration_s, repeats=1))
                ons.append(measure_on())
            else:
                ons.append(measure_on())
                offs.append(_service_qps(service, histories,
                                         duration_s=duration_s, repeats=1))
        off = statistics.median(offs)
        on = statistics.median(ons)
        return {"off_qps": off, "on_qps": on,
                "overhead_frac": 1.0 - on / off}

    _service_qps(service, histories, duration_s=0.3, repeats=1)  # warm
    # Even paired medians wobble by several percent across rounds on a
    # throttled runner; the median of three full rounds is the estimate.
    rounds = sorted((one_round() for _ in range(3)),
                    key=lambda r: r["overhead_frac"])
    result = dict(rounds[1])
    result["pairs"] = pairs
    result["rounds"] = [r["overhead_frac"] for r in rounds]
    return result


def test_monitoring_overhead_harness(monitored_setup):
    service, histories = monitored_setup
    result = _monitor_ab(service, histories, pairs=1, duration_s=0.15)
    assert result["off_qps"] > 0 and result["on_qps"] > 0
    # Generous fast-suite envelope; the slow case pins the 5% bar.
    assert result["overhead_frac"] < 0.5


@pytest.mark.slow
@_skip_perf_assert
def test_monitoring_overhead_within_5pct_artifact(monitored_setup):
    """Acceptance: monitor-on QPS within the existing 5% obs bar."""
    service, histories = monitored_setup
    result = _monitor_ab(service, histories)
    lines = [
        "self-monitoring overhead benchmark",
        "==================================",
        f"serving path (sasrec @ smoke, direct path, "
        f"{result['pairs']} paired 0.5 s windows, median of each arm):",
        f"  monitor off                            "
        f"{result['off_qps']:>10.1f} req/s",
        f"  monitor on (2 Hz sampling + rules)     "
        f"{result['on_qps']:>10.1f} req/s",
        f"  overhead                               "
        f"{result['overhead_frac'] * 100:>10.2f} %",
        f"  (median of 3 rounds: "
        f"{', '.join(f'{r * 100:+.2f}%' for r in result['rounds'])})",
        "",
        "production default samples at 1 Hz (2x slower than measured).",
    ]
    emit("monitor_bench", "\n".join(lines))
    assert result["overhead_frac"] < 0.05, (
        f"monitoring overhead {result['overhead_frac']:.2%} "
        f"exceeds the 5% bar")


def test_obs_bench_counters_visible():
    """The bench path's instruments land in the global registry."""
    rng = np.random.default_rng(0)
    hist = metrics.histogram("obs_bench_visibility")
    for value in rng.uniform(1e-4, 1e-2, size=32):
        hist.observe(float(value))
    rendered = metrics.render_prometheus()
    assert "obs_bench_visibility_count" in rendered
    parsed = metrics.parse_prometheus(rendered)
    assert parsed[("obs_bench_visibility_count", "")] >= 32.0
