"""Bench: Table IV — downstream transfer, w/o vs w. pre-training."""

import numpy as np

import pytest

from repro.data import downstream_names
from repro.experiments import table4_transfer as mod

from .conftest import emit, run_once

pytestmark = pytest.mark.slow


def _mean(table, label, metric="hr@10"):
    return float(np.mean([table[ds][label][metric]
                          for ds in downstream_names()]))


def test_table4_transfer(benchmark):
    results = run_once(benchmark, mod.run)
    emit("table4", mod.render(results))
    table = results["table"]

    pmm_pt = _mean(table, "pmmrec w. PT")
    pmm_scratch = _mean(table, "pmmrec w/o PT")
    morec_pt = _mean(table, "morec++ w. PT")
    unisrec_pt = _mean(table, "unisrec w. PT")
    vqrec_pt = _mean(table, "vqrec w. PT")
    sasrec = _mean(table, "sasrec w/o PT")

    # Paper shapes: pre-training helps PMMRec; PMMRec w. PT is the best
    # column overall; multi-modal transferables beat text-only ones by a
    # large margin; UniSRec trails the ID-based SASRec.
    assert pmm_pt > pmm_scratch
    for label in ("sasrec w/o PT", "unisrec w. PT", "vqrec w. PT",
                  "morec++ w. PT"):
        assert pmm_pt > _mean(table, label)
    assert morec_pt > unisrec_pt and morec_pt > vqrec_pt
    assert unisrec_pt < sasrec
    # PMMRec w. PT should win on a clear majority of individual targets.
    wins = sum(table[ds]["pmmrec w. PT"]["hr@10"]
               >= max(v["hr@10"] for k, v in table[ds].items()
                      if k != "pmmrec w. PT") * 0.999
               for ds in downstream_names())
    assert wins >= 6
