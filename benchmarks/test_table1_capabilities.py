"""Bench: Table I — supported transfer settings."""

import pytest

from repro.experiments import table1_capabilities as mod

from .conftest import emit, run_once

pytestmark = pytest.mark.slow


def test_table1_capabilities(benchmark):
    results = run_once(benchmark, mod.run)
    emit("table1", mod.render(results))
    rows = results["rows"]
    # Paper shape: PMMRec supports every setting; text-only transferables
    # support exactly the text column.
    assert all(v == "yes" for v in rows["PMMRec (ours)"])
    assert rows["UniSRec"] == ["-", "-", "-", "yes", "-"]
    assert rows["VQRec"] == ["-", "-", "-", "yes", "-"]
    assert rows["MoRec"][-2:] == ["yes", "yes"]
