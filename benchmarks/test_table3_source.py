"""Bench: Table III — source-dataset comparison of all 9 methods."""

import numpy as np

import pytest

from repro.data import source_names
from repro.experiments import table3_source as mod

from .conftest import emit, run_once

pytestmark = pytest.mark.slow


def _mean_over_sources(table, method, metric="hr@10"):
    return float(np.mean([table[ds][method][metric]
                          for ds in source_names()]))


def test_table3_source(benchmark):
    results = run_once(benchmark, mod.run)
    emit("table3", mod.render(results))
    table = results["table"]

    pmmrec = _mean_over_sources(table, "pmmrec")
    sasrec = _mean_over_sources(table, "sasrec")
    carca = _mean_over_sources(table, "carca++")
    morec = _mean_over_sources(table, "morec++")
    unisrec = _mean_over_sources(table, "unisrec")
    vqrec = _mean_over_sources(table, "vqrec")
    best_baseline = max(_mean_over_sources(table, m)
                        for m in mod.METHODS if m != "pmmrec")

    # Paper shapes (aggregated over the 4 sources to absorb small-scale
    # noise). Known deviation, documented in EXPERIMENTS.md: GRU4Rec is
    # anomalously strong at this dense small-catalogue scale, so PMMRec is
    # asserted on par with the paper's architectural reference (SASRec)
    # and the multi-modal baselines rather than strictly best overall.
    assert pmmrec >= 0.90 * best_baseline
    assert pmmrec >= 0.95 * sasrec
    assert pmmrec >= 0.93 * carca and pmmrec >= 0.93 * morec
    assert max(carca, morec) >= 0.95 * sasrec
    assert unisrec < sasrec
    assert unisrec < pmmrec and vqrec < pmmrec
