"""End-to-end continual-learning demo: serve + ingest + fine-tune + swap.

The acceptance benchmark behind ``repro.stream`` (ISSUE 5): under
continuous serving load, injected cold items — described only by
world-rendered modality features — become recommendable after a
background hot swap with **zero dropped requests**; swap latency
p50/p99 is recorded, and the post-swap ANN structure retains
**recall@10 >= 0.95** against exact scoring on the *grown* catalogue.
The rendered report is committed under ``results/stream_bench.txt``
(slow-marked, like every artifact-writing case, so plain ``pytest``
never clobbers the record — run with ``pytest -m slow
benchmarks/test_stream_bench.py``).

Runs at the paper profile on the ``hm`` source catalogue with the
text-modality PMMRec (cold items need modality encoders; text keeps the
encode affordable on CI) and the IVF backend with exhaustive-ish probes
— the structure is refit at every swap, so recall measures the *swap
path's* index hygiene, not probe tuning.

A fast smoke-scale case keeps the whole loop exercised on every push.
"""

from __future__ import annotations

import os

import pytest

from repro.stream import bench_stream, render_stream_report

from .conftest import emit

K = 10

_skip_perf_assert = os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1"


def _assert_core_guarantees(report: dict) -> None:
    # Zero dropped requests across every hot swap.
    assert report["requests_dropped"] == 0, report["errors"]
    assert report["errors"] == []
    assert report["requests_completed"] > 0
    # The learner actually ran and published.
    assert report["stream"]["steps"] > 0
    assert report["stream"]["swaps"] >= 1
    assert "swap_p99_ms" in report["stream"]
    assert report["final_version"] > report["initial_version"]
    # Every published weight update went through the eval gate, and the
    # rejection/acceptance accounting is part of the recorded report.
    gate = report["gate"]
    assert gate["enabled"] is True
    assert gate["eval_examples"] > 0
    assert gate["evals"] >= 1 and gate["published"] >= 1
    # Every gate eval ends as an accepted publication or a rejection
    # (published additionally counts ungated catalogue-only swaps).
    assert gate["evals"] <= gate["published"] + gate["rejected"]
    # Every injected cold item is part of the served catalogue now...
    assert report["catalogue_items_final"] > 0
    assert len(report["cold_item_ranks"]) == len(report["cold_item_ids"])
    # ...and actually *recommendable*: a topic-matched probe surfaces at
    # least one cold item in its top-50 (full-catalogue exact rank).
    assert report["cold_in_top50"] >= 1, report["cold_item_ranks"]


@pytest.mark.slow
def test_stream_bench_paper_scale(benchmark):
    """The recorded artifact: hm catalogue, IVF retrieval, live learning."""
    def run():
        return bench_stream(
            "hm", "pmmrec-text", profile="paper", duration_s=10.0,
            client_threads=4, k=K, event_batch=24, event_waves=6,
            cold_items=6, retrieval="ivf",
            ann_params={"nlist": 8, "nprobe": 8, "seed": 0},
            min_ann_items=1, steps_per_swap=4, batch_size=8, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # The same loop through the worker-pool tier (ISSUE 9): swaps now
    # cross the generation fence into 2 forked workers. Exact retrieval
    # — each worker refits its own ANN structure, which at paper scale
    # would measure refit duplication, not the fence.
    pooled = bench_stream(
        "hm", "pmmrec-text", profile="paper", duration_s=8.0,
        client_threads=4, k=K, event_batch=24, event_waves=6,
        cold_items=6, retrieval="exact", steps_per_swap=4, batch_size=8,
        workers=2, seed=0)
    emit("stream_bench", render_stream_report(
        report,
        title="stream benchmark — hm:pmmrec-text (paper profile, IVF)")
        + "\n\n" + render_stream_report(
            pooled,
            title="stream benchmark — hm:pmmrec-text "
                  "(paper profile, exact, 2-worker pool)"))
    _assert_core_guarantees(report)
    # Post-swap approximate retrieval stays faithful on the grown index.
    assert report["ann_recall_at_k"] is not None
    assert report["ann_recall_at_k"] >= 0.95
    # Zero-drop holds across the process fence too.
    _assert_core_guarantees(pooled)
    # The gate's eval cost rides inside the swap path: p99 must stay
    # under 2x the ungated PR-5 baseline (~370ms on this profile).
    if not _skip_perf_assert:
        assert report["stream"]["swap_p99_ms"] < 740.0
        # Pooled acceptance (ISSUE 9): fenced swaps stay sub-second.
        assert pooled["stream"]["swap_p99_ms"] < 1000.0


def test_stream_bench_smoke_scale():
    """Fast every-push leg: the full loop at smoke scale, exact retrieval."""
    report = bench_stream(
        "kwai_food", "pmmrec-text", profile="smoke", duration_s=2.0,
        client_threads=2, k=5, event_batch=8, event_waves=3, cold_items=2,
        retrieval="exact", steps_per_swap=2, batch_size=4, seed=0)
    _assert_core_guarantees(report)
    assert report["ann_recall_at_k"] is None      # exact path: no ANN


def test_stream_bench_smoke_scale_pooled():
    """Same fast leg through a 2-worker pool and the generation fence."""
    report = bench_stream(
        "kwai_food", "pmmrec-text", profile="smoke", duration_s=2.0,
        client_threads=2, k=5, event_batch=8, event_waves=3, cold_items=2,
        retrieval="exact", steps_per_swap=2, batch_size=4, workers=2,
        seed=0)
    _assert_core_guarantees(report)
    # The fence phase is measured once the swap crosses processes.
    assert any(name.startswith("fence")
               for name in report["swap_phases"]), report["swap_phases"]
