"""Bench: Table V — versatile transfer settings of PMMRec."""

import numpy as np

import pytest

from repro.data import downstream_names
from repro.experiments import table5_versatility as mod

from .conftest import emit, run_once

pytestmark = pytest.mark.slow


def _mean(table, label, metric="hr@10"):
    return float(np.mean([table[ds][label][metric]
                          for ds in downstream_names()]))


def test_table5_versatility(benchmark):
    results = run_once(benchmark, mod.run)
    emit("table5", mod.render(results))
    table = results["table"]

    full_pt = _mean(table, "M w. PT")
    item_pt = _mean(table, "M w. PT-I")
    user_pt = _mean(table, "M w. PT-U")
    scratch = _mean(table, "M w/o PT")
    text_pt = _mean(table, "T w. PT")
    vision_pt = _mean(table, "V w. PT")

    # Paper shapes: full transfer is the best setting; transferring the
    # item encoders beats transferring the user encoder alone; single-
    # modality transfer stays competitive (within reach of full transfer).
    assert full_pt >= item_pt and full_pt >= user_pt
    assert full_pt > scratch
    assert item_pt > user_pt
    assert min(text_pt, vision_pt) > 0.55 * full_pt
