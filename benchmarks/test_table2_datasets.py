"""Bench: Table II — dataset statistics after preprocessing."""

import pytest

from repro.data import downstream_names, source_names
from repro.experiments import table2_datasets as mod

from .conftest import emit, run_once

pytestmark = pytest.mark.slow


def test_table2_datasets(benchmark):
    results = run_once(benchmark, mod.run)
    emit("table2", mod.render(results))
    rows = results["rows"]
    # Every dataset of the paper is present and non-degenerate.
    for name in source_names():
        assert rows["-" + name]["users"] > 0
    for name in downstream_names():
        assert rows[name]["users"] > 0
    # Paper shape: the fused source corpus dwarfs each downstream set and
    # Bili/HM sequences are roughly twice as long as Kwai/Amazon ones.
    smallest_source = min(rows["-" + n]["actions"] for n in source_names())
    largest_downstream = max(rows[n]["actions"] for n in downstream_names())
    assert rows["Source"]["actions"] >= 3 * largest_downstream
    assert smallest_source > 0
    assert rows["-bili"]["avg_length"] > 1.5 * rows["-kwai"]["avg_length"]
    assert rows["-hm"]["avg_length"] > 1.5 * rows["-amazon"]["avg_length"]
