"""Serving-path performance: retrieval, batching, end-to-end latency.

Fast tests (default suite) time the argpartition top-k against the
full-catalogue sort on a synthetic catalogue and sanity-check the
benchmark harness end to end at smoke scale. The `slow`-marked latency
benchmark runs a larger request stream and records p50/p99/QPS under
``results/serve_bench.txt``. Wall-clock ratio assertions honor
``REPRO_SKIP_PERF_ASSERT=1`` (set in CI; timings are still recorded).
"""

import os
import time

import numpy as np
import pytest

from repro.data import build_dataset
from repro.nn.ops import topk
from repro.serve import (Recommender, bench_pool_scaling, compare_paths,
                         render_comparison, render_pool_report,
                         request_stream)
from repro.serve.registry import build_model

from .conftest import emit

_skip_perf_assert = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1",
    reason="wall-clock ratio asserts disabled (shared/throttled runner)")


def _best_of(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_perf_topk_retrieval(benchmark):
    """Time the serving retrieval primitive on a large catalogue."""
    rng = np.random.default_rng(0)
    scores = rng.normal(size=(64, 50_000)).astype(np.float32)
    benchmark(lambda: topk(scores, 10))


@_skip_perf_assert
def test_topk_faster_than_full_sort_on_large_catalog():
    """Acceptance: argpartition top-k beats full argsort on retrieval."""
    rng = np.random.default_rng(0)
    scores = rng.normal(size=(64, 50_000)).astype(np.float32)

    def full_sort():
        np.argsort(-scores, axis=-1, kind="stable")[:, :10]

    def partitioned():
        topk(scores, 10)

    full_sort()   # warm up
    partitioned()
    ratio = _best_of(full_sort) / _best_of(partitioned)
    print(f"\ntop-10 retrieval: argpartition vs full sort: {ratio:.2f}x")
    assert ratio >= 1.5


def test_serve_benchmark_harness_smoke(benchmark):
    """The p50/p99/QPS harness runs end to end and reports sane numbers."""
    dataset = build_dataset("kwai_food", profile="smoke")
    model = build_model("sasrec", dataset, seed=0)
    model.to_dtype("float32")
    recommender = Recommender(model, dataset, index_dtype="float32")
    histories = request_stream(dataset, 48, seed=0)

    def run():
        return compare_paths(recommender, histories, k=10, batch_size=16)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    for report in (comparison["batched"], comparison["sequential"]):
        assert report.requests == 48
        assert report.p50_ms > 0.0 and report.p99_ms >= report.p50_ms
        assert report.qps > 0.0


@pytest.mark.slow
def test_serve_latency_benchmark(benchmark):
    """Record serving p50/p99/QPS and the batched-vs-sequential speedup.

    Uses the ``paper``-profile source catalogue (the repo's largest) and
    a PMMRec-dimensioned SASRec so the scoring matmuls dominate. The
    acceptance assertion — batched top-k retrieval beats per-request
    full-catalogue sort — honors REPRO_SKIP_PERF_ASSERT.
    """
    dataset = build_dataset("hm", profile="paper")
    model = build_model("sasrec", dataset, seed=0)
    model.to_dtype("float32")
    recommender = Recommender(model, dataset, index_dtype="float32")
    histories = request_stream(dataset, 512, seed=0, repeat_frac=0.2)

    def run():
        return compare_paths(recommender, histories, k=10, batch_size=32)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)

    # Worker-pool scaling sweep over the live HTTP front (ISSUE 9): the
    # same scenario served by 1/2/4 forked workers plus the in-process
    # tier, 8 keep-alive clients. Folded into the same artifact so
    # results/serve_bench.txt carries the whole serving story.
    sweep = bench_pool_scaling("hm", "sasrec", profile="paper",
                               worker_counts=(1, 2, 4), requests=384,
                               client_threads=8, seed=0)
    emit("serve_bench", render_comparison(
        comparison,
        title=f"serve benchmark — hm:sasrec ({dataset.num_items} items, "
              f"float32, k=10, 512 requests)")
        + "\n\n" + render_pool_report(
            sweep, title="worker-pool scaling — hm:sasrec over HTTP "
                         f"({sweep['requests']} requests, "
                         f"{sweep['clients']} keep-alive clients)"))
    if os.environ.get("REPRO_SKIP_PERF_ASSERT") != "1":
        assert comparison["throughput_speedup"] >= 1.2
        # Process-pool scaling needs cores to scale onto: the 4-worker
        # ≥2.5× acceptance bar only means something on a ≥4-core host
        # (a 1-core runner measures pure dispatch overhead).
        if (os.cpu_count() or 1) >= 4:
            assert sweep["scaling"]["pool-4w"] >= 2.5
