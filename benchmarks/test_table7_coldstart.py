"""Bench: Table VII — cold-start comparison on the source datasets."""

import numpy as np

import pytest

from repro.data import source_names
from repro.experiments import table7_coldstart as mod

from .conftest import emit, run_once

pytestmark = pytest.mark.slow


def _mean(table, method, metric="hr@10"):
    return float(np.mean([table[ds][method][metric]
                          for ds in source_names()]))


def test_table7_coldstart(benchmark):
    results = run_once(benchmark, mod.run)
    emit("table7", mod.render(results))
    table = results["table"]

    sasrec = _mean(table, "sasrec")
    text = _mean(table, "pmmrec-text")
    vision = _mean(table, "pmmrec-vision")
    full = _mean(table, "pmmrec")

    # Known deviation (documented in EXPERIMENTS.md): the paper's ID-model
    # collapse cannot manifest here, because the 5-core filter at this
    # scale guarantees every "cold" item still has >=5 training
    # occurrences — enough to train a 32-d ID embedding. What remains
    # measurable, and is asserted: every modality-based variant stays in
    # the same band as the ID model on the rare-item subset (no content
    # disadvantage), and the text variant is at least on par with vision
    # (the paper's information-density argument).
    for variant, value in (("pmmrec", full), ("pmmrec-text", text),
                           ("pmmrec-vision", vision)):
        assert value > 0.5 * sasrec, variant
    assert text >= 0.95 * vision
    # Cold-start subsets are substantial on every source.
    assert all(count > 10 for count in results["examples"].values())
