"""Approximate-retrieval benchmark: recall@k vs QPS, exact vs IVF vs LSH.

The acceptance benchmark behind `repro.serve.ann`: at a paper-scale
catalogue (the NineRec/HM sources PMMRec targets run to ~10^4–10^5
items; we use 50k) the IVF backend must deliver **>= 2x the QPS of
exact full-catalogue scoring at recall@10 >= 0.95**. The rendered
table is committed under ``results/ann_bench.txt``; like the serve
latency benchmark, the artifact-writing cases are ``slow``-marked so a
plain ``pytest`` run never clobbers the committed record (run them with
``pytest -m slow benchmarks/test_ann_perf.py``).

The catalogue is a seeded, clustered synthetic embedding matrix
(:func:`repro.serve.bench.synthetic_catalog`) — the cluster-structured
regime trained item encoders produce, which is exactly the structure an
IVF index exploits. Recall assertions are deterministic and always on;
the QPS-ratio assertion honors ``REPRO_SKIP_PERF_ASSERT=1`` like every
other wall-clock assertion in the repo.

A second, `slow`-marked case exercises the end-to-end serving path
(`Recommender` with ``retrieval="ivf"``) on a real model to confirm the
routed path, not just the index primitive, wins at scale.
"""

import os

import numpy as np
import pytest

from repro.serve import (IVFIndex, LSHIndex, Recommender, bench_retrieval,
                         render_retrieval, synthetic_catalog,
                         synthetic_queries)

from .conftest import emit

PAPER_SCALE_ITEMS = 50_000
DIM = 48
K = 10

_skip_perf_assert = os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1"


@pytest.mark.slow
def test_ann_bench_paper_scale(benchmark):
    """Record recall@10 and QPS for exact vs IVF vs LSH; assert the floor."""
    catalog = synthetic_catalog(PAPER_SCALE_ITEMS, dim=DIM,
                                num_clusters=256, seed=0)
    queries = synthetic_queries(catalog, 256, seed=1)
    backends = {"exact": None,
                "ivf": IVFIndex(seed=0),
                "lsh": LSHIndex(seed=0)}

    def run():
        return bench_retrieval(catalog, queries, k=K, backends=backends)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {r.name: r for r in reports}
    emit("ann_bench", render_retrieval(
        reports,
        title=f"ann benchmark — {PAPER_SCALE_ITEMS} items, dim={DIM}, "
              f"k={K}, {len(queries)} queries, default backend settings"))

    # Recall floors are deterministic (seeded data, seeded indexes).
    assert by_name["exact"].recall_at_k == 1.0
    assert by_name["ivf"].recall_at_k >= 0.95
    assert by_name["lsh"].recall_at_k >= 0.95
    # IVF's structure is ~16x smaller than the catalogue it indexes.
    assert by_name["ivf"].nbytes < catalog.nbytes / 4
    if not _skip_perf_assert:
        assert by_name["ivf"].qps >= 2.0 * by_name["exact"].qps


def test_ann_bench_harness_smoke(benchmark):
    """The harness itself stays sane at small scale (fast, always on)."""
    catalog = synthetic_catalog(2000, dim=16, num_clusters=32, seed=3)
    queries = synthetic_queries(catalog, 32, seed=4)
    backends = {"exact": None,
                "ivf": IVFIndex(nlist=64, nprobe=8, seed=0),
                "lsh": LSHIndex(bits=64, seed=0)}

    def run():
        return bench_retrieval(catalog, queries, k=5, backends=backends)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    for report in reports:
        assert report.requests == 32
        assert 0.0 <= report.recall_at_k <= 1.0
        assert report.qps > 0.0 and report.p99_ms >= report.p50_ms
    assert reports[0].recall_at_k == 1.0      # exact is its own truth


class _CatalogBackedModel:
    """A kernel-protocol model whose catalogue is a fixed matrix.

    ``sequence_hidden`` is the identity, so a user's query vector is the
    embedding of their last item — the clustered-neighbourhood regime a
    trained encoder produces — while everything else (the scoring
    kernel, the ANN shortlist, the exclusion mask, the re-rank) runs the
    real serving code at full catalogue scale.
    """

    supports_score_kernel = True
    max_seq_len = 30

    def __init__(self, matrix: np.ndarray):
        self.matrix = matrix

    def eval(self):
        return self

    def encode_catalog(self, dataset, chunk_size: int = 256) -> np.ndarray:
        return self.matrix.copy()

    def sequence_hidden(self, item_reps, mask):
        return item_reps


class _FakeDataset:
    name = "synthetic-50k"

    def __init__(self, num_items: int):
        self.num_items = num_items


@pytest.mark.slow
def test_ann_serving_path_end_to_end(benchmark):
    """`Recommender(retrieval="ivf")` beats its exact twin through the
    full request path (encode -> shortlist -> re-rank -> exclusion) at
    paper-scale, holding recall@10 >= 0.95 against the exact answers."""
    catalog = synthetic_catalog(PAPER_SCALE_ITEMS, dim=DIM,
                                num_clusters=256, seed=5)
    dataset = _FakeDataset(PAPER_SCALE_ITEMS)
    model = _CatalogBackedModel(catalog)
    rng = np.random.default_rng(6)
    histories = [rng.integers(1, PAPER_SCALE_ITEMS + 1,
                              size=int(rng.integers(3, 20)))
                 for _ in range(256)]

    exact = Recommender(model, dataset)
    approx = Recommender(model, dataset, retrieval="ivf",
                         ann_params={"seed": 0})
    exact.refresh()
    approx.refresh()

    def run():
        import time
        tick = time.perf_counter()
        truths = [exact.recommend(h, k=10) for h in histories]
        exact_s = time.perf_counter() - tick
        tick = time.perf_counter()
        answers = [approx.recommend(h, k=10) for h in histories]
        approx_s = time.perf_counter() - tick
        overlap = float(np.mean(
            [len(set(t.items.tolist()) & set(a.items.tolist()))
             / max(len(t.items), 1)
             for t, a in zip(truths, answers)]))
        return overlap, exact_s / approx_s

    recall, speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert approx.retrieval_stats.ann_batches == len(histories)
    assert recall >= 0.95
    if not _skip_perf_assert:
        assert speedup >= 1.5      # routed path, per-request accounting
