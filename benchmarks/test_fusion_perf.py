"""Fused-kernel speedups: fused autograd core vs the unfused composition.

Measures the win of the fused one-node kernels (``repro.nn.fused``:
transformer block, attention, LayerNorm, linear/FFN, softmax-CE,
InfoNCE) over the ``REPRO_FUSED=0`` escape hatch — the exact same
engine running the unfused multi-node graph — at this reproduction's
paper-scale shapes (batch 24, seq len 30, dim 32, 4 heads, dropout 0.1,
float32, causal+padding masks).

Two kinds of cases:

* plain pytest-benchmark cases (default suite) that keep the fused and
  unfused timings visible in CI, and
* a ``slow``-marked recording case that measures interleaved
  fused/unfused CPU-time ratios, asserts the acceptance floors and
  writes ``results/fusion_bench.txt`` — slow-marked so a plain pytest
  run never clobbers the committed artifact.

Ratios are wall-noise-hardened: process-CPU time, min over many
alternating fused/unfused rounds.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro.nn as nn
from repro.core import PMMRec, PMMRecConfig
from repro.core.user_encoder import UserEncoder
from repro.data import build_dataset, pad_sequences
from repro.nn.tensor import Tensor

from .conftest import emit

#: This repo's paper-profile training shapes (TrainConfig defaults).
BATCH, SEQ_LEN, DIM, HEADS = 24, 30, 32, 4
#: The source paper's item encoders are 12-layer Transformers; the
#: user encoder (Eq. 4) uses 2. Both depths are measured.
PAPER_DEPTH, USER_DEPTH = 12, 2
NUM_ITEMS = 500

_skip_perf_assert = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1",
    reason="wall-clock ratio asserts disabled (shared/throttled runner)")


def _encoder_setup(depth: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    with nn.default_dtype(np.float32):
        encoder = UserEncoder(DIM, num_blocks=depth, num_heads=HEADS,
                              max_len=SEQ_LEN, dropout=0.1,
                              rng=np.random.default_rng(seed))
        head = nn.Linear(DIM, NUM_ITEMS, rng=np.random.default_rng(seed + 1))
    x = rng.normal(size=(BATCH, SEQ_LEN, DIM)).astype(np.float32)
    valid = np.ones((BATCH, SEQ_LEN), dtype=bool)
    targets = rng.integers(0, NUM_ITEMS, size=(BATCH, SEQ_LEN))
    opt = nn.AdamW(list(encoder.parameters()) + list(head.parameters()),
                   lr=1e-3)
    return encoder, head, x, valid, targets, opt


def _train_step(encoder, head, x, valid, targets, opt):
    """One full training step: forward, fused CE loss, backward, AdamW."""
    opt.zero_grad()
    hidden = encoder(Tensor(x), valid)
    loss = nn.softmax_cross_entropy(head(hidden), targets)
    loss.backward()
    opt.step()
    return float(loss.data)


def _interleaved_ratio(fn, iters: int, rounds: int = 12) -> tuple[float, float, float]:
    """(unfused_ms, fused_ms, ratio) via alternating min-of-N CPU timing."""
    def timed(fused: bool) -> float:
        with nn.use_fused(fused):
            t0 = time.process_time()
            for _ in range(iters):
                fn()
            return (time.process_time() - t0) / iters

    timed(True)
    timed(False)                       # warm both paths (BLAS, caches)
    fused_times, unfused_times = [], []
    for _ in range(rounds):
        fused_times.append(timed(True))
        unfused_times.append(timed(False))
    unfused, fused = min(unfused_times), min(fused_times)
    return unfused * 1e3, fused * 1e3, unfused / fused


# -- fast benchmark cases (default suite) --------------------------------------


@pytest.mark.parametrize("fused", [True, False], ids=["fused", "unfused"])
def test_perf_transformer_block_train(benchmark, fused):
    """One pre-LN block, forward+backward, paper shapes."""
    with nn.default_dtype(np.float32):
        block = nn.TransformerBlock(DIM, HEADS, dropout=0.1,
                                    rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(
        size=(BATCH, SEQ_LEN, DIM)).astype(np.float32)
    mask = nn.causal_mask(SEQ_LEN)[None, None]

    def step():
        with nn.use_fused(fused):
            out = block(Tensor(x, requires_grad=True), mask=mask)
            (out ** 2.0).sum().backward()
        return float(out.data.sum())

    benchmark(step)


@pytest.mark.parametrize("fused", [True, False], ids=["fused", "unfused"])
def test_perf_softmax_cross_entropy(benchmark, fused):
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(BATCH * SEQ_LEN, NUM_ITEMS)).astype(np.float32)
    targets = rng.integers(0, NUM_ITEMS, size=BATCH * SEQ_LEN)

    def step():
        with nn.use_fused(fused):
            t = Tensor(logits, requires_grad=True)
            loss = nn.softmax_cross_entropy(t, targets)
            loss.backward()
        return float(loss.data)

    benchmark(step)


# -- recorded acceptance case (slow: writes results/fusion_bench.txt) ----------


@pytest.mark.slow
@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_fusion_speedup_record():
    """Record the fused-core speedups and enforce the acceptance floors.

    The headline case — a full training step (forward, loss, backward,
    AdamW update) of a paper-depth (12-layer) Transformer encoder at
    paper shapes — must be ≥1.5x faster fused than unfused. The
    supporting cases are recorded with regression floors.
    """
    lines = ["# Fused-kernel autograd core — fused vs unfused (REPRO_FUSED=0)",
             f"# shapes: batch={BATCH} seq={SEQ_LEN} dim={DIM} heads={HEADS} "
             "dropout=0.1 float32",
             "# timing: min over 12 alternating rounds, process-CPU time",
             ""]
    results = {}

    # 0. The acceptance case: the autograd train step (forward+backward)
    #    of a paper-depth Transformer stack — the chain this PR fused.
    enc, head, x, valid, targets, opt = _encoder_setup(PAPER_DEPTH)

    def stack_fwd_bwd():
        out = enc(Tensor(x), valid)
        (out ** 2.0).sum().backward()
        enc.zero_grad()

    u, f, r = _interleaved_ratio(stack_fwd_bwd, iters=4)
    results["train_step_fwd_bwd"] = r
    lines.append(f"train-step (fwd+bwd), 12-block transformer stack: "
                 f"unfused {u:.2f}ms  fused {f:.2f}ms  speedup {r:.2f}x")

    # 1. Full training step at the same depth (adds the CE head loss and
    #    the AdamW update — both shared between the two paths).
    u, f, r = _interleaved_ratio(
        lambda: _train_step(enc, head, x, valid, targets, opt), iters=3)
    results["train_step_paper_depth"] = r
    lines.append(f"train-step, 12-block encoder + CE head + AdamW: "
                 f"unfused {u:.2f}ms  fused {f:.2f}ms  speedup {r:.2f}x")

    # 2. Train step at the user-encoder depth (2 blocks, Eq. 4).
    enc2, head2, x2, valid2, targets2, opt2 = _encoder_setup(USER_DEPTH)
    u, f, r = _interleaved_ratio(
        lambda: _train_step(enc2, head2, x2, valid2, targets2, opt2),
        iters=8)
    results["train_step_user_depth"] = r
    lines.append(f"train-step, 2-block user encoder + CE head + AdamW: "
                 f"unfused {u:.2f}ms  fused {f:.2f}ms  speedup {r:.2f}x")

    # 3. PMMRec end-to-end training step (text+vision+fusion+user towers,
    #    Eq. 5-11 losses) on the smoke dataset.
    dataset = build_dataset("bili_food", profile="smoke")
    model = PMMRec(PMMRecConfig(seed=0))
    model.to_dtype("float32")
    popt = nn.AdamW([p for p in model.parameters() if p.requires_grad],
                    lr=1e-3)
    batch = pad_sequences(dataset.split.train[:16], max_len=20)

    def pmm_step():
        popt.zero_grad()
        loss, _ = model.training_loss(dataset, batch.item_ids, batch.mask)
        loss.backward()
        popt.step()

    u, f, r = _interleaved_ratio(pmm_step, iters=3)
    results["train_step_pmmrec"] = r
    lines.append(f"train-step, PMMRec end-to-end (multi-tower + InfoNCE): "
                 f"unfused {u:.2f}ms  fused {f:.2f}ms  speedup {r:.2f}x")

    # 4. Encoder forward, graph mode (training-time forward).
    enc.train()

    def fwd_graph():
        enc(Tensor(x, requires_grad=True), valid)

    u, f, r = _interleaved_ratio(fwd_graph, iters=6)
    results["encoder_forward_graph"] = r
    lines.append(f"encoder-forward, 12-block, graph mode: "
                 f"unfused {u:.2f}ms  fused {f:.2f}ms  speedup {r:.2f}x")

    # 5. Encoder forward under no_grad (the serving/eval kernel path).
    enc.eval()

    def fwd_eval():
        with nn.no_grad():
            enc(Tensor(x), valid)

    u, f, r = _interleaved_ratio(fwd_eval, iters=6)
    results["encoder_forward_eval"] = r
    lines.append(f"encoder-forward, 12-block, eval no_grad: "
                 f"unfused {u:.2f}ms  fused {f:.2f}ms  speedup {r:.2f}x")

    lines.append("")
    lines.append("# acceptance: train-step (fwd+bwd, paper depth) >= 1.5x; "
                 "other cases carry regression floors")
    emit("fusion_bench", "\n".join(lines))

    if os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1":
        return
    assert results["train_step_fwd_bwd"] >= 1.5, results
    assert results["train_step_paper_depth"] >= 1.3, results
    assert results["train_step_user_depth"] >= 1.2, results
    assert results["train_step_pmmrec"] >= 1.2, results
    assert results["encoder_forward_graph"] >= 1.0, results
    assert results["encoder_forward_eval"] >= 1.0, results
