"""Bench: Table VIII — ablation of the PMMRec objectives."""

import numpy as np

import pytest

from repro.experiments import table8_ablation as mod

from .conftest import emit, run_once

pytestmark = pytest.mark.slow


def _mean(table, label, metric="ndcg@10"):
    return float(np.mean([table[ds][label][metric]
                          for ds in mod.DATASETS]))


def test_table8_ablation(benchmark):
    results = run_once(benchmark, mod.run)
    emit("table8", mod.render(results))
    table = results["table"]

    full = _mean(table, "PMMRec")
    # Paper shape: the full objective is at or near the top on average;
    # removing or degrading any single objective does not help.
    for label in ("w/o NICL", "only VCL", "only NCL", "w/o NID", "w/o RCL"):
        assert _mean(table, label) <= 1.06 * full, label
    # And the full model strictly beats the weakest ablation.
    weakest = min(_mean(table, label) for label in mod.VARIANTS
                  if label != "PMMRec")
    assert full > weakest
