"""Bench: Figure 3 — convergence curves under transfer settings."""

import numpy as np

import pytest

from repro.data import downstream_names
from repro.experiments import figure3_convergence as mod

from .conftest import emit, run_once

pytestmark = pytest.mark.slow


def test_figure3_convergence(benchmark):
    results = run_once(benchmark, mod.run)
    emit("figure3", mod.render(results))
    curves = results["curves"]

    def epoch1(target, label):
        return curves[target][label][0][1]

    def best(target, label):
        return max(v for _, v in curves[target][label])

    def best_epoch(target, label):
        series = curves[target][label]
        values = [v for _, v in series]
        return series[values.index(max(values))][0]

    targets = downstream_names()
    # Paper shapes, averaged over the 10 targets:
    # 1) pre-trained variants start far above from-scratch at epoch 1;
    pt_start = np.mean([epoch1(t, "w. PT") for t in targets])
    scratch_start = np.mean([epoch1(t, "w/o PT") for t in targets])
    assert pt_start > 1.5 * max(scratch_start, 1e-4)
    # 2) full transfer reaches its best within a few epochs, much earlier
    #    than from-scratch training reaches its own best;
    pt_best_ep = np.mean([best_epoch(t, "w. PT") for t in targets])
    scratch_best_ep = np.mean([best_epoch(t, "w/o PT") for t in targets])
    assert pt_best_ep < scratch_best_ep
    # 3) transferring item encoders tracks full transfer far better than
    #    transferring the user encoder does.
    item_best = np.mean([best(t, "w. PT-I") for t in targets])
    user_best = np.mean([best(t, "w. PT-U") for t in targets])
    full_best = np.mean([best(t, "w. PT") for t in targets])
    assert item_best > user_best
    assert item_best > 0.8 * full_best
