"""Bench: Table VI — single-source cross-platform transfer."""

import numpy as np

import pytest

from repro.data import downstream_names, source_names
from repro.experiments import table6_single_source as mod

from .conftest import emit, run_once

pytestmark = pytest.mark.slow


def test_table6_single_source(benchmark):
    results = run_once(benchmark, mod.run)
    emit("table6", mod.render(results))
    table = results["table"]

    # Paper shape 1: single-source pre-training is useful — for a clear
    # majority of targets the best single source matches or beats training
    # from scratch.
    useful = 0
    for target in downstream_names():
        best_source = max(table[target][s]["hr@10"] for s in source_names())
        if best_source >= 0.98 * table[target]["scratch"]["hr@10"]:
            useful += 1
    assert useful >= 7

    # Paper shape 2: complex->simple transfer (Bili/Kwai sources on
    # HM/Amazon targets) holds up — on average at least as good as
    # training from scratch.
    simple_targets = [t for t in downstream_names()
                      if t.startswith(("hm", "amazon"))]
    complex_gain = np.mean([
        max(table[t]["bili"]["hr@10"], table[t]["kwai"]["hr@10"])
        - table[t]["scratch"]["hr@10"]
        for t in simple_targets])
    assert complex_gain > -0.02

    # Known deviation (documented in EXPERIMENTS.md): the paper's
    # homogeneous-source diagonal is not reproduced at this scale — the
    # largest/cleanest source (HM) is the most reliable donor instead. We
    # assert the measured regularity so regressions are caught.
    hm_wins = sum(table[t]["hm"]["hr@10"]
                  >= 0.95 * max(table[t][s]["hr@10"] for s in source_names())
                  for t in downstream_names())
    assert hm_wins >= 6
