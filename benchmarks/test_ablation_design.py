"""Bench: extension ablations over implementation design choices.

Not a paper table — these sweep the two knobs DESIGN.md §6 calls out as
implementation decisions: the contrastive temperature of the alignment
objective and the NID corruption rate. They document how sensitive the
headline behaviour is to those choices.
"""

import numpy as np

import pytest

from repro.data import get_profile
from repro.experiments.formatting import format_table, pct
from repro.experiments.runner import run_cells

from .conftest import emit, run_once

pytestmark = pytest.mark.slow

DATASET = "bili_movie"
TEMPERATURES = (0.05, 0.2, 1.0)
CORRUPTIONS = (0.0, 0.15, 0.35)


def _run(profile=None, workers=None):
    profile_name = get_profile(profile).name
    tasks = {}
    for t in TEMPERATURES:
        tasks[("temperature", t)] = (
            "design_ablation",
            dict(kind="temperature", value=t, dataset_name=DATASET,
                 profile=profile_name, seed=1))
    for c in CORRUPTIONS:
        tasks[("corruption", c)] = (
            "design_ablation",
            dict(kind="corruption", value=c, dataset_name=DATASET,
                 profile=profile_name, seed=1))
    return run_cells(tasks, workers=workers)


def test_ablation_design(benchmark):
    results = run_once(benchmark, _run)
    rows = []
    for (kind, value), res in sorted(results.items()):
        rows.append([kind, f"{value:g}", pct(res["test"]["hr@10"]),
                     pct(res["test"]["ndcg@10"]), str(res["epochs"])])
    rendered = format_table(
        f"Design ablations on {DATASET} (temperature / corruption rate)",
        ["Knob", "Value", "HR@10", "NDCG@10", "epochs"], rows)
    emit("ablation_design", rendered)

    # The paper-adjacent expectations: the default temperature (0.2) is not
    # dominated by the extremes, and moderate corruption (the paper's 15%)
    # is at least as good as no corruption at all.
    by_temp = {v: results[("temperature", v)]["test"]["ndcg@10"]
               for v in TEMPERATURES}
    assert by_temp[0.2] >= 0.9 * max(by_temp.values())
    by_corr = {v: results[("corruption", v)]["test"]["ndcg@10"]
               for v in CORRUPTIONS}
    assert by_corr[0.15] >= 0.9 * by_corr[0.0]
