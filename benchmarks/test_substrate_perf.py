"""Micro-benchmarks of the numpy substrate's hot paths.

Not a paper table — these time the building blocks every experiment cell
spends its budget on (transformer block forward/backward, the shared
InfoNCE primitive, item encoding, dataset generation), so performance
regressions in the substrate are visible in CI.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import PMMRec, PMMRecConfig
from repro.core.losses import batch_structure
from repro.data import build_dataset, pad_sequences
from repro.data.catalog import _build_dataset_cached
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("bili_food", profile="smoke")


def test_perf_transformer_block_forward_backward(benchmark):
    block = nn.TransformerBlock(32, 4)
    x = np.random.default_rng(0).normal(size=(32, 16, 32))

    def step():
        t = Tensor(x, requires_grad=True)
        out = (block(t) ** 2.0).sum()
        out.backward()
        return float(out.data)

    benchmark(step)


def test_perf_info_nce(benchmark):
    rng = np.random.default_rng(0)
    scores = rng.normal(size=(256, 256))
    positive = np.eye(256, dtype=bool)
    candidate = rng.random((256, 256)) > 0.2
    candidate |= positive

    def step():
        t = Tensor(scores, requires_grad=True)
        loss = nn.info_nce(t, positive, candidate)
        loss.backward()
        return loss.item()

    benchmark(step)


def test_perf_gru_unroll(benchmark):
    gru = nn.GRU(32, 32)
    x = np.random.default_rng(0).normal(size=(16, 20, 32))

    def step():
        return float(gru(Tensor(x)).data.sum())

    benchmark(step)


def test_perf_pmmrec_item_encoding(benchmark, dataset):
    model = PMMRec(PMMRecConfig(seed=0))
    model.eval()
    ids = np.arange(1, dataset.num_items + 1)

    def step():
        with nn.no_grad():
            return float(model.encode_items(dataset, ids).sequence.data.sum())

    benchmark(step)


def test_perf_pmmrec_training_step(benchmark, dataset):
    model = PMMRec(PMMRecConfig(seed=0))
    opt = nn.AdamW([p for p in model.parameters() if p.requires_grad],
                   lr=1e-3)
    batch = pad_sequences(dataset.split.train[:16], max_len=20)

    def step():
        opt.zero_grad()
        loss, _ = model.training_loss(dataset, batch.item_ids, batch.mask)
        loss.backward()
        opt.step()
        return float(loss.data)

    benchmark(step)


def test_perf_batch_structure(benchmark):
    rng = np.random.default_rng(0)
    ids = rng.integers(1, 400, size=(64, 25))
    mask = rng.random((64, 25)) > 0.2

    def step():
        return batch_structure(ids, mask)[0].shape[0]

    benchmark(step)


def test_perf_dataset_generation(benchmark):
    """Full pipeline: world rollout + 5-core filter + rendering + splits."""
    def step():
        _build_dataset_cached.cache_clear()
        ds = _build_dataset_cached("kwai_food", "smoke", 0)
        return ds.num_items

    result = benchmark.pedantic(step, rounds=3, iterations=1)
    assert result > 0
