"""Micro-benchmarks of the numpy substrate's hot paths.

Not a paper table — these time the building blocks every experiment cell
spends its budget on (transformer block forward/backward, the shared
InfoNCE primitive, item encoding, dataset generation), so performance
regressions in the substrate are visible in CI.
"""

import os
import time

import numpy as np
import pytest

import repro.nn as nn
from repro.core import PMMRec, PMMRecConfig
from repro.core.losses import batch_structure
from repro.data import build_dataset, pad_sequences
from repro.data.catalog import _build_dataset_cached
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("bili_food", profile="smoke")


def test_perf_transformer_block_forward_backward(benchmark):
    block = nn.TransformerBlock(32, 4)
    x = np.random.default_rng(0).normal(size=(32, 16, 32))

    def step():
        t = Tensor(x, requires_grad=True)
        out = (block(t) ** 2.0).sum()
        out.backward()
        return float(out.data)

    benchmark(step)


def test_perf_info_nce(benchmark):
    rng = np.random.default_rng(0)
    scores = rng.normal(size=(256, 256))
    positive = np.eye(256, dtype=bool)
    candidate = rng.random((256, 256)) > 0.2
    candidate |= positive

    def step():
        t = Tensor(scores, requires_grad=True)
        loss = nn.info_nce(t, positive, candidate)
        loss.backward()
        return loss.item()

    benchmark(step)


def test_perf_gru_unroll(benchmark):
    gru = nn.GRU(32, 32)
    x = np.random.default_rng(0).normal(size=(16, 20, 32))

    def step():
        return float(gru(Tensor(x)).data.sum())

    benchmark(step)


def test_perf_pmmrec_item_encoding(benchmark, dataset):
    model = PMMRec(PMMRecConfig(seed=0))
    model.eval()
    ids = np.arange(1, dataset.num_items + 1)

    def step():
        with nn.no_grad():
            return float(model.encode_items(dataset, ids).sequence.data.sum())

    benchmark(step)


def test_perf_pmmrec_training_step(benchmark, dataset):
    model = PMMRec(PMMRecConfig(seed=0))
    opt = nn.AdamW([p for p in model.parameters() if p.requires_grad],
                   lr=1e-3)
    batch = pad_sequences(dataset.split.train[:16], max_len=20)

    def step():
        opt.zero_grad()
        loss, _ = model.training_loss(dataset, batch.item_ids, batch.mask)
        loss.backward()
        opt.step()
        return float(loss.data)

    benchmark(step)


def _best_of(fn, repeats: int = 7) -> float:
    """Min-of-N wall time — robust to scheduler noise for ratio asserts."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_perf_matmul_graph_by_dtype(benchmark, dtype):
    """Graph-building matmul chain, float64 vs float32."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 256)).astype(dtype)
    w = rng.normal(size=(256, 256)).astype(dtype)

    def step():
        t = Tensor(x, requires_grad=True)
        out = ((t @ Tensor(w)) ** 2.0).sum()
        out.backward()
        return float(out.data)

    benchmark(step)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_perf_matmul_no_grad_fast_path(benchmark, dtype):
    """Closure-free inference matmuls, float64 vs float32."""
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(64, 256)).astype(dtype))
    w = Tensor(rng.normal(size=(256, 256)).astype(dtype))

    def step():
        with nn.no_grad():
            acc = 0.0
            for _ in range(8):
                acc += float((x @ w).data[0, 0])
        return acc

    benchmark(step)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_perf_attention_no_grad_by_dtype(benchmark, dtype):
    """Transformer-block inference under no_grad, float64 vs float32."""
    with nn.default_dtype(dtype):
        block = nn.TransformerBlock(64, 4)
    block.eval()
    x = Tensor(np.random.default_rng(0).normal(size=(16, 32, 64)).astype(dtype))

    def step():
        with nn.no_grad():
            return float(block(x).data.sum())

    benchmark(step)


_skip_perf_assert = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1",
    reason="wall-clock ratio asserts disabled (shared/throttled runner)")


@_skip_perf_assert
def test_float32_fast_path_speedup_matmul():
    """Acceptance: float32 + no_grad beats the float64 graph path ≥1.3×."""
    rng = np.random.default_rng(0)
    x64 = rng.normal(size=(64, 256))
    w64 = rng.normal(size=(256, 256))
    x32, w32 = x64.astype(np.float32), w64.astype(np.float32)

    def graph64():
        t = Tensor(x64, requires_grad=True)
        w = Tensor(w64, requires_grad=True)
        for _ in range(20):
            t @ w

    def fast32():
        t, w = Tensor(x32), Tensor(w32)
        with nn.no_grad():
            for _ in range(20):
                t @ w

    graph64()  # warm up BLAS paths before timing
    fast32()
    ratio = _best_of(graph64) / _best_of(fast32)
    print(f"\nmatmul float32+no_grad speedup over float64 graph: {ratio:.2f}x")
    assert ratio >= 1.3


@_skip_perf_assert
def test_float32_fast_path_speedup_attention():
    """Acceptance: float32 + no_grad attention beats float64 graph ≥1.3×."""
    block64 = nn.TransformerBlock(64, 4)
    with nn.default_dtype(np.float32):
        block32 = nn.TransformerBlock(64, 4)
    block64.eval()
    block32.eval()
    x64 = np.random.default_rng(0).normal(size=(16, 32, 64))
    x32 = x64.astype(np.float32)

    def graph64():
        block64(Tensor(x64, requires_grad=True))

    def fast32():
        with nn.no_grad():
            block32(Tensor(x32))

    graph64()
    fast32()
    ratio = _best_of(graph64) / _best_of(fast32)
    print(f"\nattention float32+no_grad speedup over float64 graph: {ratio:.2f}x")
    assert ratio >= 1.3


@pytest.mark.parametrize("impl", ["add_at", "reduceat"])
def test_perf_embedding_scatter_backward(benchmark, impl):
    """Embedding-gradient scatter: legacy np.add.at vs sort+reduceat.

    The index pattern mirrors a training batch (B*L lookups into a
    catalogue-sized table with heavy repeats) — the shape where the
    engine's embedding backward spends its time.
    """
    from repro.nn.tensor import scatter_add_rows
    rng = np.random.default_rng(0)
    table = np.zeros((5000, 48), dtype=np.float32)
    indices = rng.integers(0, 400, size=24 * 30 * 4)
    grads = rng.normal(size=(indices.size, 48)).astype(np.float32)

    if impl == "add_at":
        def step():
            out = np.zeros_like(table)
            np.add.at(out, indices, grads)
            return out
    else:
        def step():
            return scatter_add_rows(np.zeros_like(table), indices, grads)

    benchmark(step)


@_skip_perf_assert
def test_embedding_scatter_speedup():
    """Acceptance: sort+reduceat beats np.add.at ≥1.3× on batch shapes."""
    from repro.nn.tensor import scatter_add_rows
    rng = np.random.default_rng(0)
    indices = rng.integers(0, 400, size=24 * 30 * 4)
    grads = rng.normal(size=(indices.size, 48)).astype(np.float32)
    out = np.zeros((5000, 48), dtype=np.float32)

    def add_at():
        buf = np.zeros_like(out)
        np.add.at(buf, indices, grads)

    def reduceat():
        scatter_add_rows(np.zeros_like(out), indices, grads)

    add_at()
    reduceat()
    ratio = _best_of(add_at) / _best_of(reduceat)
    print(f"\nembedding scatter sort+reduceat speedup: {ratio:.2f}x")
    assert ratio >= 1.3


def test_no_grad_builds_no_graph_state():
    """The fast path must not allocate parents/closures at all."""
    x = Tensor(np.ones((4, 4)), requires_grad=True)
    with nn.no_grad():
        out = (x @ x + x).relu().sum()
    assert out._backward is None and out._parents == ()
    assert not out.requires_grad


def test_perf_batch_structure(benchmark):
    rng = np.random.default_rng(0)
    ids = rng.integers(1, 400, size=(64, 25))
    mask = rng.random((64, 25)) > 0.2

    def step():
        return batch_structure(ids, mask)[0].shape[0]

    benchmark(step)


def test_perf_dataset_generation(benchmark):
    """Full pipeline: world rollout + 5-core filter + rendering + splits."""
    def step():
        _build_dataset_cached.cache_clear()
        ds = _build_dataset_cached("kwai_food", "smoke", 0)
        return ds.num_items

    result = benchmark.pedantic(step, rounds=3, iterations=1)
    assert result > 0
