"""Benchmark-suite helpers.

Each benchmark regenerates one table/figure of the paper through
``repro.experiments`` (parallel + disk-cached: the first run trains every
model, later runs replay from ``.repro_cache/``) and writes the rendered
artifact under ``results/``.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


def emit(name: str, rendered: str) -> None:
    """Print a rendered table and persist it to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    print()
    print(rendered)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    box: dict = {}

    def call():
        box["result"] = fn()

    benchmark.pedantic(call, rounds=1, iterations=1)
    return box["result"]
