"""Fault-injection demo behind ``results/health_bench.txt``.

Three real injections, each under live request load, each asserting the
self-monitor's contract: the fault flips ``/health`` with the correct
named rule within one sampling interval, and resolves once the fault
clears.

1. **Killed pool worker** — SIGKILL one of two worker processes; the
   ``pool_worker_death`` increase rule fires, requests rebalance, and
   the alert resolves when the death ages out of the rule window.
2. **Latency spike** — wrap a scenario's batcher with an injected
   sleep far above a tightened p99 SLO; ``latency_p99`` fires and then
   resolves after the spike leaves the quantile window.
3. **Poisoned fine-tune batch** — the test_gate.py recipe (poison
   burst at a hot LR, twice) drives a 2-long gate-rejection streak;
   ``swap_rejection_streak`` fires while every served rank stays
   bitwise identical, then a clean publish resolves it.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.obs.health import default_rules
from repro.serve import ModelRegistry, RecommendationService
from repro.serve.pool import PooledRecommendationService
from repro.stream import (StreamConfig, StreamManager, parse_events,
                          poisoned_events, synthetic_interactions)

from .conftest import emit

pytestmark = [pytest.mark.slow,
              pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                                 reason="worker pool needs /dev/shm")]

INTERVAL_S = 0.2
RULE_WINDOW_S = 3.0


class _Load:
    """Background request loop against one scenario (read-only)."""

    def __init__(self, service, dataset, model):
        scenario = service.registry.get(dataset, model)
        self._history = [int(i)
                         for i in scenario.dataset.split.test[0].history]
        self._call = lambda: service.recommend(dataset, model,
                                               self._history, k=10)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.requests = 0
        self.errors = 0

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._call()
                self.requests += 1
            except Exception:
                self.errors += 1
            time.sleep(0.002)

    def __enter__(self) -> "_Load":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=30)


def _await(monitor, predicate, timeout=20.0):
    """Poll the monitor until ``predicate(status_payload)``."""
    deadline = time.time() + timeout
    while True:
        payload = monitor.status()
        if predicate(payload):
            return payload, time.time()
        if time.time() > deadline:
            raise AssertionError(
                f"health stuck at {payload['status']} "
                f"(causes {payload['causes']})")
        time.sleep(0.02)


def _firing(payload, rule):
    return any(c["rule"] == rule for c in payload["causes"])


def _inject_worker_death(lines: list[str]) -> None:
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    service = PooledRecommendationService(registry, workers=2,
                                          max_wait_ms=1.0)
    monitor = service.enable_monitoring(
        interval_s=INTERVAL_S,
        rules=default_rules(window_s=RULE_WINDOW_S, cooldown_s=0.0))
    try:
        with _Load(service, "kwai_food", "sasrec") as load:
            _await(monitor, lambda p: p["samples"] >= 2)
            assert monitor.status()["status"] == "ok"
            t_kill = time.time()
            os.kill(service.pool._workers[0].process.pid, signal.SIGKILL)
            payload, t_detect = _await(
                monitor, lambda p: _firing(p, "pool_worker_death"))
            assert payload["status"] == "degraded"
            _, t_resolve = _await(
                monitor, lambda p: p["status"] == "ok", timeout=30.0)
            lines += [
                "1. killed pool worker (SIGKILL, 1 of 2 processes)",
                f"   rule fired      pool_worker_death "
                f"(degraded) after {t_detect - t_kill:.2f} s "
                f"(sampling interval {INTERVAL_S:.1f} s)",
                f"   resolved        {t_resolve - t_detect:.2f} s later "
                f"(death aged out of the {RULE_WINDOW_S:.0f} s window)",
                f"   during fault    {load.requests} requests answered, "
                f"{load.errors} errors; pool alive "
                f"{service.pool.alive()}/2",
            ]
            assert load.requests > 0
    finally:
        service.close()


def _inject_latency_spike(lines: list[str]) -> None:
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("kwai_food:sasrec", seed=0)
    service = RecommendationService(registry, max_batch=8, cache_size=0)
    monitor = service.enable_monitoring(
        interval_s=INTERVAL_S,
        rules=default_rules(latency_ceiling_s=0.02, window_s=2.0,
                            cooldown_s=0.0))
    try:
        batcher = service._batcher(
            service.registry.get("kwai_food", "sasrec"))
        original = batcher.recommend
        with _Load(service, "kwai_food", "sasrec") as load:
            _await(monitor, lambda p: p["samples"] >= 2)
            assert monitor.status()["status"] == "ok"

            def slow(history, k=10):
                time.sleep(0.06)        # 3x the 20 ms p99 ceiling
                return original(history, k=k)

            t_inject = time.time()
            batcher.recommend = slow
            payload, t_detect = _await(
                monitor, lambda p: _firing(p, "latency_p99"))
            assert payload["status"] == "degraded"
            batcher.recommend = original
            _, t_resolve = _await(
                monitor, lambda p: p["status"] == "ok", timeout=30.0)
            lines += [
                "2. latency spike (injected 60 ms sleep vs 20 ms p99 SLO)",
                f"   rule fired      latency_p99 (degraded) after "
                f"{t_detect - t_inject:.2f} s",
                f"   resolved        {t_resolve - t_detect:.2f} s after "
                f"removing the sleep (2 s quantile window drained)",
                f"   during fault    {load.requests} requests answered, "
                f"{load.errors} errors",
            ]
    finally:
        service.close()


def _inject_poisoned_batch(lines: list[str]) -> None:
    registry = ModelRegistry(profile="smoke", dtype="float32")
    registry.add("hm:pmmrec-text", seed=0)
    service = RecommendationService(registry)
    manager = StreamManager(
        service,
        StreamConfig(batch_size=8, lr=5e-3, steps_per_swap=16,
                     buffer_capacity=64, eval_gate=True,
                     gate_tolerance=0.05, eval_set_size=64,
                     eval_holdout_frac=0.0, seed=0),
        start=False)
    service.attach_stream(manager)
    worker = manager.worker("hm", "pmmrec-text")
    monitor = service.enable_monitoring(
        start=False,
        rules=default_rules(rejection_streak_limit=2, cooldown_s=0.0))
    try:
        monitor.timeline.sample()
        assert monitor.status()["status"] == "ok"
        scenario = service.registry.get("hm", "pmmrec-text")
        dataset = scenario.dataset
        probes = [np.asarray(ex.history) for ex in dataset.split.test[:8]]
        before = {h.tobytes(): scenario.recommender.recommend(h, k=10).items
                  for h in probes}

        rng = np.random.default_rng(1)
        rejections = 0
        t_poison = time.time()
        for _ in range(2):      # streak limit is 2 consecutive rejections
            worker.ingest(parse_events(poisoned_events(dataset, 240, rng)))
            worker.trainer.optimizer.lr = 0.2   # reset on each rejection
            worker.run_steps(16)
            report = worker.swap()
            assert report.kind == "rejected"
            rejections += 1
            monitor.timeline.sample()
        t_detect = time.time()
        payload = monitor.status()
        assert payload["status"] == "degraded"
        assert _firing(payload, "swap_rejection_streak")

        for history in probes:  # serving never saw the poisoned rounds
            np.testing.assert_array_equal(
                scenario.recommender.recommend(history, k=10).items,
                before[history.tobytes()])

        worker.ingest(parse_events(
            synthetic_interactions(dataset, 96, rng)))
        worker.run_steps(16)
        clean = worker.swap()
        assert clean.kind == "full"
        monitor.timeline.sample()
        t_resolve = time.time()
        assert monitor.status()["status"] == "ok"
        lines += [
            "3. poisoned fine-tune batch (240-event poison burst at "
            "lr=0.2, twice)",
            f"   rule fired      swap_rejection_streak (degraded) after "
            f"{rejections} consecutive gate rejections "
            f"({t_detect - t_poison:.2f} s; detection = the sample "
            f"after the 2nd rejection)",
            f"   resolved        {t_resolve - t_detect:.2f} s later "
            f"(clean round published, streak reset to 0)",
            "   during fault    all served ranks bitwise identical to "
            "the pre-poison generation",
        ]
    finally:
        service.close()


def test_health_bench_artifact():
    lines = [
        "self-monitoring fault-injection benchmark",
        "=========================================",
        f"sampling interval {INTERVAL_S:.1f} s; rule window "
        f"{RULE_WINDOW_S:.0f} s; cooldown 0 s",
        "",
    ]
    _inject_worker_death(lines)
    lines.append("")
    _inject_latency_spike(lines)
    lines.append("")
    _inject_poisoned_batch(lines)
    emit("health_bench", "\n".join(lines))
