"""Request micro-batching: coalesce concurrent requests into one pass.

The numpy substrate's throughput scales with batch width (one user
encoder pass over ``(B, L, d)`` costs barely more than over
``(1, L, d)``), so the server queues incoming requests and flushes them
as one ``recommend_batch`` call when either the batch is full (*size*
trigger) or the oldest request has waited ``max_wait_ms`` (*timeout*
trigger). Repeat users hit an LRU cache keyed on the history hash, the
requested ``k`` and the catalogue index version, and never reach the
model at all.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics, trace
from .recommender import Recommendation, Recommender

__all__ = ["BatcherClosed", "BatcherStats", "LRUCache", "MicroBatcher"]


class BatcherClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after :meth:`MicroBatcher.close`.

    A distinct type so the service can tell the benign hot-swap race (a
    request routed to a batcher an instant before its scenario was
    swapped out) from real runtime errors, and transparently retry
    against the replacement batcher instead of dropping the request.
    """


@dataclass
class BatcherStats:
    """Counters for capacity tuning (exposed on the ``/stats`` endpoint)."""

    requests: int = 0
    batches: int = 0
    size_flushes: int = 0
    timeout_flushes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    largest_batch: int = 0

    def to_json(self) -> dict:
        out = dict(self.__dict__)
        out["mean_batch"] = (self.coalesced / self.batches
                             if self.batches else 0.0)
        return out

    @property
    def coalesced(self) -> int:
        """Requests that went through a flushed batch (misses only)."""
        return self.cache_misses


class LRUCache:
    """A small thread-safe LRU mapping request keys to recommendations."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        with self._lock:
            if key not in self._data:
                return None
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key, value) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)


def _request_key(history: np.ndarray, k: int, version: int) -> tuple:
    return (history.tobytes(), int(k), int(version))


@dataclass
class _Pending:
    history: np.ndarray
    k: int
    key: tuple
    enqueued: float = field(default_factory=time.monotonic)
    future: Future = field(default_factory=Future)
    # Trace-context handoff: the HTTP thread that submitted this request
    # parks its sampled context here; the batcher worker thread stamps
    # the queue-wait and batch-stage spans into it. None (the common,
    # unsampled case) costs the worker one attribute check.
    trace: trace.TraceContext | None = None
    enqueued_perf: float = 0.0


class MicroBatcher:
    """Queue + worker thread that turns single requests into batches.

    ``submit`` returns a ``concurrent.futures.Future``; ``recommend`` is
    the blocking convenience wrapper. Construct with ``start=False`` to
    drive flushing manually via :meth:`flush_pending` (used by tests and
    the offline benchmark, where a background thread only adds noise).
    """

    def __init__(self, recommender: Recommender, max_batch: int = 32,
                 max_wait_ms: float = 2.0, cache_size: int = 1024,
                 start: bool = True, metrics_label: str | None = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.recommender = recommender
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1000.0
        self.cache = LRUCache(cache_size)
        self.stats = BatcherStats()
        # BatcherStats stays the per-instance truth (tests and /stats
        # count one batcher generation); the registry instruments are
        # the Prometheus view, scenario-labeled so counters continue
        # monotonically across hot-swap generations of the same key.
        scope = {"scenario": metrics_label or "default"}
        self._m_requests = metrics.counter(
            "repro_serve_batcher_requests_total",
            "requests submitted to the micro-batcher", labels=scope)
        self._m_cache = {
            hit: metrics.counter("repro_serve_cache_total",
                                 "LRU cache lookups by outcome",
                                 labels={**scope, "outcome": hit})
            for hit in ("hit", "miss")}
        self._m_batch_size = metrics.histogram(
            "repro_serve_batch_size", "requests coalesced per flush",
            labels=scope, start=1.0, factor=2 ** 0.25)
        self._m_flushes = {
            kind: metrics.counter("repro_serve_flushes_total",
                                  "batch flushes by trigger",
                                  labels={**scope, "trigger": kind})
            for kind in ("size", "timeout")}
        self._m_queue_wait = metrics.histogram(
            "repro_serve_queue_wait_seconds",
            "submit-to-flush wait of batched requests", labels=scope)
        self._pending: list[_Pending] = []
        self._cond = threading.Condition()
        self._closed = False
        self._thread: threading.Thread | None = None
        if start:
            self._thread = threading.Thread(target=self._worker,
                                            name="repro-serve-batcher",
                                            daemon=True)
            self._thread.start()

    # -- client side ---------------------------------------------------------

    def submit(self, history, k: int = 10) -> Future:
        """Enqueue one request; resolves to a :class:`Recommendation`."""
        history = np.asarray(history, dtype=np.int64)
        key = _request_key(history, k, self.recommender.index_version)
        ctx = trace.current()
        with self._cond:
            if self._closed:
                raise BatcherClosed("MicroBatcher is closed")
            self.stats.requests += 1
            self._m_requests.inc()
            # A stale index means the current version number still names
            # the pre-update snapshot: bypass the cache so the flush
            # rebuilds and the result is cached under the new version.
            hit = (None if getattr(self.recommender, "index_stale", False)
                   else self.cache.get(key))
            if hit is not None:
                self.stats.cache_hits += 1
                self._m_cache["hit"].inc()
                future: Future = Future()
                future.set_result(Recommendation(
                    items=hit.items, scores=hit.scores,
                    index_version=hit.index_version, cached=True))
                return future
            self.stats.cache_misses += 1
            self._m_cache["miss"].inc()
            request = _Pending(history=history, k=k, key=key, trace=ctx)
            if ctx is not None:
                request.enqueued_perf = time.perf_counter()
            self._pending.append(request)
            self._cond.notify_all()
            return request.future

    @property
    def queue_depth(self) -> int:
        """Requests queued and not yet flushed (approximate, lock-free).

        A sustained non-zero depth on ``/stats`` means flushes cannot
        keep up with arrivals — the signal to raise ``max_batch`` or add
        pool workers.
        """
        return len(self._pending)

    def recommend(self, history, k: int = 10,
                  timeout: float | None = 30.0) -> Recommendation:
        """Blocking submit; flushes inline when no worker thread runs."""
        future = self.submit(history, k=k)
        if self._thread is None and not future.done():
            self.flush_pending()
        return future.result(timeout=timeout)

    # -- flushing ------------------------------------------------------------

    def _drain(self) -> list[_Pending]:
        batch = self._pending[:self.max_batch]
        self._pending = self._pending[self.max_batch:]
        return batch

    def _execute(self, batch: list[_Pending], trigger: str) -> None:
        if not batch:
            return
        self.stats.batches += 1
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        if trigger == "size":
            self.stats.size_flushes += 1
        else:
            self.stats.timeout_flushes += 1
        self._m_flushes[trigger].inc()
        self._m_batch_size.observe(float(len(batch)))
        now_mono = time.monotonic()
        for pending in batch:
            self._m_queue_wait.observe(now_mono - pending.enqueued)
        # Sampled requests get a shared batch context: the model stages
        # (encode/shortlist/rerank/topk) are recorded once against it and
        # then copied into every traced request, because batch members
        # genuinely share that work.
        traced = [p for p in batch if p.trace is not None]
        batch_ctx: trace.TraceContext | None = None
        if traced:
            flush_tick = time.perf_counter()
            for pending in traced:
                pending.trace.add_span("queue_wait", pending.enqueued_perf,
                                       flush_tick)
            batch_ctx = trace.TraceContext(
                "batch", "micro_batch", meta={"batch_size": len(batch)})
        # All requests in a batch share one k so the top-k pass is a single
        # matrix operation; mixed-k batches use the largest and truncate.
        k_max = max(p.k for p in batch)
        try:
            with trace.activate(batch_ctx):
                results = self.recommender.recommend_batch(
                    [p.history for p in batch], k=k_max)
        except Exception as exc:  # propagate to every waiter
            for pending in batch:
                if not pending.future.cancelled():
                    pending.future.set_exception(exc)
            return
        if batch_ctx is not None:
            for pending in traced:
                pending.trace.extend(batch_ctx.spans)
        for pending, result in zip(batch, results):
            if pending.k < len(result.items):
                result = Recommendation(items=result.items[:pending.k],
                                        scores=result.scores[:pending.k],
                                        index_version=result.index_version)
            # Cache under the index version that actually produced the
            # answer — a refresh may have landed after submit keyed it.
            self.cache.put((pending.key[0], pending.k,
                            result.index_version), result)
            if not pending.future.cancelled():
                pending.future.set_result(result)

    def flush_pending(self) -> int:
        """Flush everything queued right now (manual mode); returns count."""
        flushed = 0
        while True:
            with self._cond:
                batch = self._drain()
            if not batch:
                return flushed
            trigger = "size" if len(batch) >= self.max_batch else "timeout"
            self._execute(batch, trigger)
            flushed += len(batch)

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed and not self._pending:
                    return
                # The clock runs from the *oldest request's arrival*, not
                # from when the worker woke up — a request that queued
                # while the previous batch executed must not wait a full
                # extra max_wait.
                deadline = self._pending[0].enqueued + self.max_wait
                while (len(self._pending) < self.max_batch
                       and not self._closed):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                trigger = ("size" if len(self._pending) >= self.max_batch
                           else "timeout")
                batch = self._drain()
            self._execute(batch, trigger)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the worker after draining anything still queued."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.flush_pending()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
