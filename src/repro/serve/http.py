"""Stdlib JSON-over-HTTP endpoint for the recommendation service.

No web framework — ``http.server.ThreadingHTTPServer`` is enough for a
reproduction-scale deployment and keeps the dependency surface at zero.

Endpoint contract (all bodies JSON):

``GET /health``
    ``{"status": "ok", "scenarios": <count>}``
``GET /scenarios``
    list of scenario descriptors (dataset, model, catalogue size, index
    version/bytes)
``GET /stats``
    per-scenario micro-batcher counters + service settings
``POST /recommend``
    request ``{"dataset": str, "model": str, "history": [int, ...],
    "k": int?}`` → ``{"items": [...], "scores": [...],
    "index_version": int, "cached": bool, "latency_ms": float, ...}``
``POST /refresh``
    request ``{"dataset": str, "model": str}`` → ``{"index_version": int}``
``POST /events`` (streaming services only — ``repro stream``)
    request ``{"dataset": str, "model": str, "events": [
    {"user": int, "item": int} | {"user": int?, "item":
    {"text_tokens": [...], "image": [[...]]?, "topic": int?}}, ...]}``
    → ingestion receipt ``{"accepted": int, "cold_item_ids": [...], ...}``
``POST /swap``
    request ``{"dataset": str, "model": str}`` → hot-swap report
    (``{"version": int, "kind": "full"|"catalog", "latency_ms": ...}``)

Errors come back as ``{"error": <message>}`` with status 400 (bad
request), 404 (unknown route/scenario) or 500; unexpected failures
additionally carry ``"error_type"`` (the exception class) and the full
traceback is logged server-side — the client gets a well-formed JSON
500, never a hung connection or a silent swallow.
"""

from __future__ import annotations

import json
import sys
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .service import RecommendationService

__all__ = ["RecommendationServer", "make_server", "serve_forever"]


class _Handler(BaseHTTPRequestHandler):
    """Route table over the service owned by the server."""

    server: "RecommendationServer"
    protocol_version = "HTTP/1.1"

    # -- helpers -------------------------------------------------------------

    def _send(self, payload: dict | list, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int,
               error_type: str | None = None) -> None:
        body: dict = {"error": message}
        if error_type is not None:
            body["error_type"] = error_type
        self._send(body, status=status)

    def _internal_error(self, exc: Exception) -> None:
        """Unexpected failure: JSON 500 with the class, traceback logged.

        The traceback goes to stderr unconditionally (not through the
        verbose-gated access log): a 500 is an operator event, and the
        class name alone — which is all the client body carries — is not
        enough to debug one.
        """
        sys.stderr.write(
            f"unhandled {type(exc).__name__} serving {self.path}:\n"
            f"{traceback.format_exc()}")
        self._error(f"internal error: {exc}", 500,
                    error_type=type(exc).__name__)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("request body required")
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:  # pragma: no cover - manual servers only
            super().log_message(format, *args)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        service = self.server.service
        try:
            if self.path == "/health":
                self._send({"status": "ok",
                            "scenarios": len(service.registry)})
            elif self.path == "/scenarios":
                self._send(service.scenarios())
            elif self.path == "/stats":
                self._send(service.stats())
            else:
                self._error(f"unknown route {self.path!r}", 404)
        except Exception as exc:  # noqa: BLE001 - boundary of the server
            self._internal_error(exc)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        service = self.server.service
        try:
            payload = self._read_json()
        except ValueError as exc:
            return self._error(str(exc), 400)
        try:
            if self.path == "/recommend":
                history = payload.get("history")
                if not isinstance(history, list) or not history:
                    raise ValueError("'history' must be a non-empty list "
                                     "of item ids")
                result = service.recommend(
                    str(payload.get("dataset", "")),
                    str(payload.get("model", "")),
                    history, k=int(payload.get("k", 10)))
                self._send(result)
            elif self.path == "/refresh":
                version = service.refresh(str(payload.get("dataset", "")),
                                          str(payload.get("model", "")))
                self._send({"index_version": version})
            elif self.path == "/events":
                events = payload.get("events")
                if not isinstance(events, list) or not events:
                    raise ValueError("'events' must be a non-empty list")
                receipt = service.ingest_events(
                    str(payload.get("dataset", "")),
                    str(payload.get("model", "")), events)
                self._send(receipt)
            elif self.path == "/swap":
                report = service.trigger_swap(
                    str(payload.get("dataset", "")),
                    str(payload.get("model", "")))
                self._send(report)
            else:
                self._error(f"unknown route {self.path!r}", 404)
        except KeyError as exc:
            self._error(str(exc.args[0]) if exc.args else str(exc), 404)
        except (ValueError, TypeError) as exc:
            self._error(str(exc), 400)
        except Exception as exc:  # noqa: BLE001 - boundary of the server
            self._internal_error(exc)


class RecommendationServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`RecommendationService`."""

    daemon_threads = True
    # socketserver's default listen backlog of 5 resets connections the
    # moment a burst of clients arrives together — exactly the traffic
    # the micro-batcher exists to coalesce.
    request_queue_size = 128

    def __init__(self, service: RecommendationService,
                 address: tuple[str, int], verbose: bool = False):
        self.service = service
        self.verbose = verbose
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests / in-process smoke checks)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serve-http", daemon=True)
        thread.start()
        return thread


def make_server(service: RecommendationService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> RecommendationServer:
    """Bind (port 0 picks a free ephemeral port) without serving yet."""
    return RecommendationServer(service, (host, port), verbose=verbose)


def serve_forever(service: RecommendationService, host: str = "127.0.0.1",
                  port: int = 8765, verbose: bool = True) -> None:
    """Blocking entry point used by ``repro serve``."""
    server = make_server(service, host=host, port=port, verbose=verbose)
    print(f"serving {len(service.registry)} scenario(s) on {server.url}")
    for line in service.scenarios():
        print(f"  {line['dataset']}:{line['model']} "
              f"({line['num_items']} items, "
              f"index v{line['index_version']})")
    print("POST /recommend  "
          '{"dataset": ..., "model": ..., "history": [...], "k": 10}')
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
