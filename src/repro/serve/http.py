"""Stdlib JSON-over-HTTP endpoint for the recommendation service.

No web framework — ``http.server.ThreadingHTTPServer`` is enough for a
reproduction-scale deployment and keeps the dependency surface at zero.

Endpoint contract (all bodies JSON):

``GET /health``
    readiness + liveness: ``{"status": "ok"|"degraded"|"failing",
    "causes": [...], "scenarios": <count>, ...}`` from the service's
    self-monitor (``repro.obs.health``) — HTTP **503** when failing so
    load balancers can eject the instance; services without monitoring
    enabled answer the legacy unconditional ``ok``
``GET /alerts``
    active alerts + the bounded fired/resolved edge history + the rule
    set (``{"monitoring": false, ...}`` when self-monitoring is off)
``GET /timeline?metric=NAME&window=SECONDS``
    ring-buffer time-series export from the self-monitor's timeline —
    delta-rates for counters, values for gauges, rate/p50/p99 per tick
    for histograms; without ``metric`` lists the sampled metric names.
    Merged across pool workers exactly like ``/metrics``
``GET /scenarios``
    list of scenario descriptors (dataset, model, catalogue size, index
    version/bytes)
``GET /stats``
    per-scenario micro-batcher counters + latency quantiles + service
    settings
``GET /metrics``
    Prometheus text exposition of the process metrics registry
    (``repro.obs.metrics``) — serving, streaming and profiling series
``POST /recommend``
    request ``{"dataset": str, "model": str, "history": [int, ...],
    "k": int?}`` → ``{"items": [...], "scores": [...],
    "index_version": int, "cached": bool, "latency_ms": float, ...}``
``POST /refresh``
    request ``{"dataset": str, "model": str}`` → ``{"index_version": int}``
``POST /events`` (streaming services only — ``repro stream``)
    request ``{"dataset": str, "model": str, "events": [
    {"user": int, "item": int} | {"user": int?, "item":
    {"text_tokens": [...], "image": [[...]]?, "topic": int?}}, ...]}``
    → ingestion receipt ``{"accepted": int, "cold_item_ids": [...], ...}``
``POST /swap``
    request ``{"dataset": str, "model": str}`` → hot-swap report
    (``{"version": int, "kind": "full"|"catalog", "latency_ms": ...}``)

Errors come back as ``{"error": <message>}`` with status 400 (bad
request), 404 (unknown route/scenario) or 500; unexpected failures
additionally carry ``"error_type"`` (the exception class) and the full
traceback is logged server-side — the client gets a well-formed JSON
500, never a hung connection or a silent swallow.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from ..obs import metrics, trace
from .service import RecommendationService

__all__ = ["RecommendationServer", "make_server", "serve_forever"]

#: Routes counted individually on ``repro_http_requests_total``; anything
#: else collapses into ``other`` so label cardinality stays bounded no
#: matter what paths clients probe.
_KNOWN_ROUTES = frozenset({"/health", "/alerts", "/timeline", "/scenarios",
                           "/stats", "/metrics",
                           "/recommend", "/refresh", "/events", "/swap"})


class _Handler(BaseHTTPRequestHandler):
    """Route table over the service owned by the server."""

    server: "RecommendationServer"
    # HTTP/1.1 + Content-Length on every response (see _send_bytes) means
    # persistent connections: a bench client or scraper reuses one TCP
    # connection across requests instead of paying a handshake each.
    protocol_version = "HTTP/1.1"
    # Keep-alive needs an idle bound, or an abandoned connection parks a
    # handler thread in readline() forever; the stdlib turns a socket
    # timeout into close_connection for us.
    timeout = 120
    # Recommend responses are single small writes on a latency-sensitive
    # path: never let the kernel hold them back for coalescing.
    disable_nagle_algorithm = True

    # -- helpers -------------------------------------------------------------

    def _send(self, payload: dict | list, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self._send_bytes(body, "application/json", status)

    def _send_bytes(self, body: bytes, content_type: str,
                    status: int = 200) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int,
               error_type: str | None = None) -> None:
        body: dict = {"error": message}
        if error_type is not None:
            body["error_type"] = error_type
        self._send(body, status=status)

    def _internal_error(self, exc: Exception) -> None:
        """Unexpected failure: JSON 500 with the class, traceback logged.

        The traceback goes to stderr unconditionally (not through the
        verbose-gated access log): a 500 is an operator event, and the
        class name alone — which is all the client body carries — is not
        enough to debug one.
        """
        sys.stderr.write(
            f"unhandled {type(exc).__name__} serving {self.path}:\n"
            f"{traceback.format_exc()}")
        self._error(f"internal error: {exc}", 500,
                    error_type=type(exc).__name__)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("request body required")
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:  # pragma: no cover - manual servers only
            super().log_message(format, *args)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._observed(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._observed(self._route_post)

    def _observed(self, route) -> None:
        """Time one request, count it, and emit the access-log line."""
        tick = time.perf_counter()
        self._last_status = 0       # left 0 if the handler dies mid-write
        self._trace_id = None
        try:
            route()
        finally:
            elapsed = time.perf_counter() - tick
            # Strip the query string so /timeline?metric=... collapses
            # into the /timeline label (bounded cardinality).
            bare = self.path.partition("?")[0]
            path = bare if bare in _KNOWN_ROUTES else "other"
            metrics.counter(
                "repro_http_requests_total", "HTTP requests served",
                labels={"path": path, "method": self.command,
                        "status": str(self._last_status)}).inc()
            self.server.log_access(
                method=self.command, path=self.path,
                status=self._last_status, latency_ms=elapsed * 1e3,
                trace_id=self._trace_id)

    def _route_get(self) -> None:
        service = self.server.service
        path, _, query = self.path.partition("?")
        try:
            if path == "/health":
                # The service's self-monitor decides readiness; duck
                # services without the hook answer the legacy shape.
                health = getattr(service, "health", None)
                payload = health() if health is not None else \
                    {"status": "ok", "monitoring": False,
                     "scenarios": len(service.registry)}
                status = 503 if payload.get("status") == "failing" else 200
                self._send(payload, status=status)
            elif path == "/alerts":
                alerts = getattr(service, "alerts", None)
                self._send(alerts() if alerts is not None else
                           {"monitoring": False, "status": "ok",
                            "active": [], "history": [], "rules": []})
            elif path == "/timeline":
                params = parse_qs(query)
                metric = params.get("metric", [None])[0]
                window = params.get("window", [None])[0]
                exporter = getattr(service, "timeline_export", None)
                if exporter is None:
                    self._send({"monitoring": False, "metrics": [],
                                "series": []})
                else:
                    self._send(exporter(
                        metric,
                        window_s=float(window) if window else None))
            elif path == "/scenarios":
                self._send(service.scenarios())
            elif path == "/stats":
                self._send(service.stats())
            elif path == "/metrics":
                # The service decides what one scrape means: in-process
                # renders the global registry, the pooled tier merges
                # per-worker expositions into it. Duck services without
                # the hook fall back to the process-global render.
                renderer = getattr(service, "metrics_text",
                                   metrics.render_prometheus)
                self._send_bytes(renderer().encode(),
                                 "text/plain; version=0.0.4")
            else:
                self._error(f"unknown route {self.path!r}", 404)
        except ValueError as exc:
            self._error(str(exc), 400)
        except Exception as exc:  # noqa: BLE001 - boundary of the server
            self._internal_error(exc)

    def _recommend(self, payload: dict, t_request: float,
                   t_parsed: float) -> None:
        """The traced hot route: parse → (batcher) → respond spans."""
        service = self.server.service
        history = payload.get("history")
        if not isinstance(history, list) or not history:
            raise ValueError("'history' must be a non-empty list "
                             "of item ids")
        dataset = str(payload.get("dataset", ""))
        model = str(payload.get("model", ""))
        ctx = trace.start("request", "/recommend",
                          meta={"scenario": f"{dataset}:{model}"})
        if ctx is not None:
            # Re-anchor the trace at socket-read time so the parse span
            # (which predates the sampling decision) sits inside it.
            ctx.t0 = t_request
            ctx.add_span("parse", t_request, t_parsed)
            self._trace_id = ctx.trace_id
        with trace.activate(ctx):
            result = service.recommend(dataset, model, history,
                                       k=int(payload.get("k", 10)))
        if ctx is None:
            self._send(result)
            return
        result["trace_id"] = ctx.trace_id
        t_respond = time.perf_counter()
        self._send(result)
        done = time.perf_counter()
        ctx.add_span("respond", t_respond, done)
        trace.finish(ctx, done - t_request, status=200)

    def _route_post(self) -> None:
        service = self.server.service
        t_request = time.perf_counter()
        try:
            payload = self._read_json()
        except ValueError as exc:
            return self._error(str(exc), 400)
        t_parsed = time.perf_counter()
        try:
            if self.path == "/recommend":
                self._recommend(payload, t_request, t_parsed)
            elif self.path == "/refresh":
                version = service.refresh(str(payload.get("dataset", "")),
                                          str(payload.get("model", "")))
                self._send({"index_version": version})
            elif self.path == "/events":
                events = payload.get("events")
                if not isinstance(events, list) or not events:
                    raise ValueError("'events' must be a non-empty list")
                receipt = service.ingest_events(
                    str(payload.get("dataset", "")),
                    str(payload.get("model", "")), events)
                self._send(receipt)
            elif self.path == "/swap":
                report = service.trigger_swap(
                    str(payload.get("dataset", "")),
                    str(payload.get("model", "")))
                self._send(report)
            else:
                self._error(f"unknown route {self.path!r}", 404)
        except KeyError as exc:
            self._error(str(exc.args[0]) if exc.args else str(exc), 404)
        except (ValueError, TypeError) as exc:
            self._error(str(exc), 400)
        except Exception as exc:  # noqa: BLE001 - boundary of the server
            self._internal_error(exc)


class RecommendationServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`RecommendationService`."""

    daemon_threads = True
    # socketserver's default listen backlog of 5 resets connections the
    # moment a burst of clients arrives together — exactly the traffic
    # the micro-batcher exists to coalesce.
    request_queue_size = 128

    def __init__(self, service: RecommendationService,
                 address: tuple[str, int], verbose: bool = False,
                 access_log: str | None = None):
        self.service = service
        self.verbose = verbose
        self.access_log = access_log
        self._access_handle = None
        self._access_lock = threading.Lock()
        super().__init__(address, _Handler)

    def log_access(self, **record) -> None:
        """Append one structured access-log line (JSONL) if enabled.

        Replaces the silent ``log_message`` suppression: operators opt in
        with ``--access-log PATH`` and get machine-parseable lines
        (method, path, status, latency_ms, trace_id) instead of the
        stdlib's stderr format or nothing.
        """
        if self.access_log is None:
            return
        record = {"time": time.time(), **record}
        line = json.dumps(record) + "\n"
        with self._access_lock:
            if self._access_handle is None:
                self._access_handle = open(self.access_log, "a",
                                           encoding="utf-8")
            self._access_handle.write(line)
            self._access_handle.flush()

    def server_close(self) -> None:
        super().server_close()
        with self._access_lock:
            if self._access_handle is not None:
                self._access_handle.close()
                self._access_handle = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests / in-process smoke checks)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serve-http", daemon=True)
        thread.start()
        return thread


def make_server(service: RecommendationService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                access_log: str | None = None) -> RecommendationServer:
    """Bind (port 0 picks a free ephemeral port) without serving yet."""
    return RecommendationServer(service, (host, port), verbose=verbose,
                                access_log=access_log)


def serve_forever(service: RecommendationService, host: str = "127.0.0.1",
                  port: int = 8765, verbose: bool = True,
                  access_log: str | None = None) -> None:
    """Blocking entry point used by ``repro serve``."""
    server = make_server(service, host=host, port=port, verbose=verbose,
                        access_log=access_log)
    print(f"serving {len(service.registry)} scenario(s) on {server.url}")
    for line in service.scenarios():
        print(f"  {line['dataset']}:{line['model']} "
              f"({line['num_items']} items, "
              f"index v{line['index_version']})")
    print("POST /recommend  "
          '{"dataset": ..., "model": ..., "history": [...], "k": 10}')
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
