"""Approximate nearest-neighbour retrieval over the catalogue index.

Exact serving scores every request against the whole catalogue —
``O(n·d)`` per query plus a top-k over ``n`` — which stops fitting the
latency budget as the catalogue grows to NineRec scale. This module
provides the approximate layer: an :class:`AnnIndex` maps a user query
vector (the encoder's final hidden state, see
:func:`repro.eval.scoring.encode_queries`) to a *candidate shortlist*
of item ids; the recommender then scores only the shortlist exactly and
re-ranks, so the answer is always genuine model scores — approximation
affects which items are considered, never how they are ranked.

Two interchangeable backends implement the protocol:

* :class:`IVFIndex` — an inverted-file index: k-means coarse quantizer
  over the item embeddings, queries scan the ``nprobe`` most promising
  clusters (ranked by query·centroid) and widen automatically when a
  probe comes back short;
* :class:`LSHIndex` — random-hyperplane sign codes; queries shortlist
  the hamming-nearest items with an oversampling factor that buys
  recall back from the binary quantization.

Both rebuild *incrementally* on :meth:`CatalogIndex.refresh`: IVF
warm-starts k-means from the previous centroids, LSH keeps its
hyperplanes and only re-encodes. Every fit stamps the catalogue version
it was built from, so stale structures are detectable and the
recommender can fall back to exact scoring (see
``Recommender._retrieval_plan``) instead of serving low-recall answers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..obs import metrics
from ..nn.cluster import hamming_distances, kmeans, sign_codes

__all__ = ["AnnIndex", "AnnSearch", "IVFIndex", "LSHIndex",
           "make_ann_index", "ANN_KINDS"]

#: CLI / registry spelling of the retrieval backends ("exact" means none).
ANN_KINDS = ("exact", "ivf", "lsh")


@dataclass(frozen=True)
class _Fitted:
    """One fit's outcome: the structure and the catalogue version it
    was built from, swapped as a single reference so no reader can ever
    pair an old structure with a new version stamp (or vice versa)."""

    state: object
    version: int


class AnnIndex:
    """Protocol base for approximate candidate generation.

    Subclasses implement :meth:`_fit_state` and :meth:`_candidate_ids`.
    Each fit publishes one immutable ``(state, version)`` record swapped
    atomically on refit, so concurrent readers always see a coherent
    index — structure and version stamp included — even while a refresh
    is re-fitting.
    """

    kind: str = "none"

    def __init__(self) -> None:
        self._fitted: _Fitted | None = None

    # -- protocol -----------------------------------------------------------

    def fit(self, matrix: np.ndarray, version: int = 0) -> None:
        """(Re)build from an ``encode_catalog`` matrix (row 0 = padding)."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] < 2:
            raise ValueError("ANN index needs a (num_items+1, d) matrix "
                             f"with at least one item, got {matrix.shape}")
        tick = time.perf_counter()
        previous = self._fitted
        state = self._fit_state(matrix[1:],
                                None if previous is None else previous.state)
        self._fitted = _Fitted(state=state, version=int(version))
        kind = type(self).__name__
        metrics.counter("repro_serve_ann_fits_total",
                        "ANN structure (re)builds",
                        labels={"kind": kind}).inc()
        metrics.histogram("repro_serve_ann_fit_seconds",
                          "ANN structure build latency",
                          labels={"kind": kind}
                          ).observe(time.perf_counter() - tick)
        metrics.gauge("repro_serve_ann_items", "items the ANN index covers",
                      labels={"kind": kind}).set(matrix.shape[0] - 1)

    def candidates(self, query: np.ndarray, count: int) -> np.ndarray:
        """At least ``count`` candidate item ids for one query vector.

        Ids are in ``[1, num_items]`` (the padding pseudo-item is never
        a candidate) and returned ascending, so downstream tie-breaking
        by lower item id matches the exact path's stable sort.
        """
        fitted = self._fitted
        if fitted is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        return self._search(fitted.state, query, count)

    def search_snapshot(self) -> "AnnSearch | None":
        """An immutable search view over the *current* fitted state.

        A concurrent :meth:`fit` swaps the fitted record atomically, so
        a request that captured a view keeps shortlisting against the
        structure built for the catalogue snapshot it is scoring —
        never against a half-adopted newer one. ``None`` when unfitted.
        """
        fitted = self._fitted
        if fitted is None:
            return None
        return AnnSearch(index=self, state=fitted.state,
                         version=fitted.version)

    def _search(self, state, query: np.ndarray, count: int) -> np.ndarray:
        count = int(count)
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        n = state.num_items
        if count >= n:
            return np.arange(1, n + 1)
        return self._candidate_ids(state, np.asarray(query), count)

    # -- introspection ------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self._fitted is not None

    @property
    def fitted_version(self) -> int:
        """Catalogue version the structure was last built from (0 = never)."""
        fitted = self._fitted
        return 0 if fitted is None else fitted.version

    @property
    def num_items(self) -> int:
        fitted = self._fitted
        return 0 if fitted is None else fitted.state.num_items

    @property
    def nbytes(self) -> int:
        fitted = self._fitted
        return 0 if fitted is None else fitted.state.nbytes

    def describe(self) -> dict:
        """JSON-serializable summary for ``/scenarios`` and the CLI."""
        return {"kind": self.kind, "fitted_version": self.fitted_version,
                "num_items": self.num_items, "nbytes": self.nbytes,
                **self._params()}

    def _params(self) -> dict:
        return {}

    # -- to be provided by subclasses ---------------------------------------

    def _fit_state(self, items: np.ndarray, previous):
        raise NotImplementedError

    def _candidate_ids(self, state, query: np.ndarray,
                       count: int) -> np.ndarray:
        """Return >= ``count`` item ids, ascending (see :meth:`candidates`)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(fitted_version={self.fitted_version}, "
                f"num_items={self.num_items})")


@dataclass(frozen=True)
class AnnSearch:
    """One index bound to one fitted state: safe across concurrent refits."""

    index: AnnIndex
    state: object
    version: int

    def candidates(self, query: np.ndarray, count: int) -> np.ndarray:
        """Same contract as :meth:`AnnIndex.candidates`, pinned state."""
        return self.index._search(self.state, query, count)


# -- IVF ---------------------------------------------------------------------


@dataclass(frozen=True)
class _IVFState:
    """One fitted IVF structure: centroids + CSR-packed inverted lists.

    Query cost is ``O(nlist·d + |shortlist|)``: slice the probed cells
    out of ``member_ids`` and sort the concatenation — never an ``O(n)``
    pass over the whole catalogue.
    """

    centroids: np.ndarray      # (nlist, d)
    member_ids: np.ndarray     # (n,) item ids grouped by cell
    starts: np.ndarray         # (nlist + 1,) offsets into member_ids

    @property
    def num_items(self) -> int:
        return len(self.member_ids)

    @property
    def nbytes(self) -> int:
        return (self.centroids.nbytes + self.member_ids.nbytes
                + self.starts.nbytes)


def default_nlist(num_items: int) -> int:
    """The ``4·sqrt(n)`` rule of thumb, clamped to keep lists non-trivial."""
    return int(np.clip(round(4.0 * math.sqrt(max(num_items, 1))),
                       1, max(num_items // 8, 1)))


class IVFIndex(AnnIndex):
    """Inverted-file index: k-means cells, ``nprobe``-controlled scan.

    ``nlist`` defaults to the ``4·sqrt(n)`` rule; ``nprobe`` to 1/32 of
    the cells (floor 4) — a ~3% catalogue scan that holds recall@10
    above 0.95 on realistically clustered embeddings while leaving the
    per-query cost dominated by the shortlist re-rank, not the probe. A
    probe that yields fewer than the requested candidate count widens to
    further cells (in query-affinity order), so small or lopsided cells
    degrade to a broader scan instead of a short answer.
    """

    kind = "ivf"

    def __init__(self, nlist: int | None = None, nprobe: int | None = None,
                 iters: int = 10, refresh_iters: int = 3, seed: int = 0):
        super().__init__()
        self.nlist = nlist
        self.nprobe = nprobe
        self.iters = iters
        self.refresh_iters = refresh_iters
        self.seed = seed

    def _fit_state(self, items: np.ndarray, previous) -> _IVFState:
        nlist = (self.nlist if self.nlist is not None
                 else default_nlist(len(items)))
        nlist = max(1, min(int(nlist), len(items)))
        init = previous.centroids if isinstance(previous, _IVFState) else None
        iters = self.iters if init is None else self.refresh_iters
        centroids, assign = kmeans(items, nlist, iters=iters, seed=self.seed,
                                   init=init)
        order = np.argsort(assign, kind="stable")
        member_ids = (order + 1).astype(np.int64)    # row i = item id i+1
        counts = np.bincount(assign, minlength=len(centroids))
        starts = np.concatenate([[0], np.cumsum(counts)])
        return _IVFState(centroids=centroids, member_ids=member_ids,
                         starts=starts)

    def _probe_count(self, nlist: int) -> int:
        if self.nprobe is not None:
            return max(1, min(int(self.nprobe), nlist))
        return min(nlist, max(4, int(math.ceil(nlist / 32))))

    def _candidate_ids(self, state: _IVFState, query: np.ndarray,
                       count: int) -> np.ndarray:
        affinity = state.centroids @ query
        nlist = len(affinity)
        nprobe = self._probe_count(nlist)
        # argpartition, not argsort: probe membership is all that
        # matters, and the hot path should stay O(nlist + |shortlist|).
        if nprobe < nlist:
            cells = np.argpartition(-affinity, nprobe - 1)[:nprobe]
        else:
            cells = np.arange(nlist)
        chunks = [state.member_ids[state.starts[c]:state.starts[c + 1]]
                  for c in cells]
        total = sum(len(chunk) for chunk in chunks)
        if total < count:
            # Widen in affinity order until the shortlist can satisfy
            # the request; lopsided or empty cells then cost breadth,
            # not answer length. Rare, so the full sort is fine here.
            probe_order = np.argsort(-affinity, kind="stable")
            probed = set(cells.tolist())
            for cell in probe_order:
                if total >= count:
                    break
                if int(cell) in probed:
                    continue
                chunk = state.member_ids[state.starts[cell]:
                                         state.starts[cell + 1]]
                chunks.append(chunk)
                total += len(chunk)
        return np.sort(np.concatenate(chunks))

    def _params(self) -> dict:
        fitted = self._fitted
        if fitted is None:
            return {"nlist": self.nlist, "nprobe": self.nprobe}
        nlist = len(fitted.state.centroids)
        return {"nlist": nlist, "nprobe": self._probe_count(nlist)}


# -- LSH ---------------------------------------------------------------------


@dataclass(frozen=True)
class _LSHState:
    """One fitted LSH structure: hyperplanes + packed item codes."""

    hyperplanes: np.ndarray    # (d, bits)
    codes: np.ndarray          # (n, ceil(bits/8)) uint8

    @property
    def num_items(self) -> int:
        return len(self.codes)

    @property
    def nbytes(self) -> int:
        return self.hyperplanes.nbytes + self.codes.nbytes


class LSHIndex(AnnIndex):
    """Random-hyperplane LSH: shortlist by hamming distance, re-rank exact.

    ``bits`` controls code fidelity; ``oversample`` multiplies the
    requested candidate count (with an absolute ``min_candidates``
    floor) before the hamming shortlist, which is what recovers recall
    lost to binary quantization. Hyperplanes are drawn once per index
    lifetime, so an online refresh only re-encodes the item codes and
    codes stay comparable across versions.
    """

    kind = "lsh"

    def __init__(self, bits: int = 128, oversample: int = 16,
                 min_candidates: int = 256, seed: int = 0):
        super().__init__()
        if bits < 8:
            raise ValueError(f"bits must be >= 8, got {bits}")
        self.bits = int(bits)
        self.oversample = max(1, int(oversample))
        self.min_candidates = max(1, int(min_candidates))
        self.seed = seed

    def _fit_state(self, items: np.ndarray, previous) -> _LSHState:
        if (isinstance(previous, _LSHState)
                and previous.hyperplanes.shape[0] == items.shape[1]):
            hyperplanes = previous.hyperplanes
        else:
            rng = np.random.default_rng(self.seed)
            hyperplanes = rng.normal(
                size=(items.shape[1], self.bits)).astype(items.dtype,
                                                         copy=False)
        return _LSHState(hyperplanes=hyperplanes,
                         codes=sign_codes(items, hyperplanes))

    def _candidate_ids(self, state: _LSHState, query: np.ndarray,
                       count: int) -> np.ndarray:
        shortlist = min(state.num_items,
                        max(count * self.oversample, self.min_candidates,
                            count))
        query_code = sign_codes(query, state.hyperplanes)[0]
        distances = hamming_distances(state.codes, query_code)
        if shortlist >= state.num_items:
            return np.arange(1, state.num_items + 1)
        return np.sort(np.argpartition(distances, shortlist - 1)[:shortlist]
                       + 1)

    def _params(self) -> dict:
        return {"bits": self.bits, "oversample": self.oversample,
                "min_candidates": self.min_candidates}


# -- factory -----------------------------------------------------------------


def make_ann_index(kind: str | None, **params) -> AnnIndex | None:
    """Build a backend by CLI name; ``exact``/``none``/``None`` mean none.

    ``params`` are forwarded to the backend constructor with ``None``
    values dropped, so CLI defaults pass through untouched.
    """
    if kind is None:
        return None
    lowered = kind.lower()
    if lowered in ("exact", "none", ""):
        return None
    kwargs = {name: value for name, value in params.items()
              if value is not None}
    if lowered == "ivf":
        return IVFIndex(**kwargs)
    if lowered == "lsh":
        return LSHIndex(**kwargs)
    raise ValueError(f"unknown retrieval backend {kind!r}; "
                     f"choose from {ANN_KINDS}")
