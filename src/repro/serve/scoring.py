"""Serving-side alias of the shared batch-scoring kernel.

The kernel itself lives in :mod:`repro.eval.scoring` — a lower layer
that only depends on ``data.batching`` and ``nn.tensor`` — so models
and the evaluator import it without depending on the serving stack.
This module re-exports it under the serve namespace for the serving
code and its callers.
"""

from ..eval.scoring import (ScoreFn, batch_scorer, encode_queries,
                            model_max_len, score_batch, supports_kernel)

__all__ = ["ScoreFn", "supports_kernel", "model_max_len", "encode_queries",
           "score_batch", "batch_scorer"]
