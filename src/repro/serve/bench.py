"""Latency / throughput benchmarking for the serving stack.

Drives a :class:`~repro.serve.recommender.Recommender` with a stream of
request histories and reports p50/p99 latency and QPS, comparing the
serving hot path (batched scoring + argpartition top-k) against the
naive reference (one request at a time, full-catalogue ``argsort``).
Used by ``repro bench-serve`` and ``benchmarks/test_serve_perf.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .recommender import Recommender

__all__ = ["BenchReport", "bench_topk_path", "bench_full_sort_path",
           "compare_paths", "request_stream", "render_comparison"]


@dataclass
class BenchReport:
    """Latency distribution and throughput of one benchmarked path."""

    name: str
    requests: int
    batch_size: int
    p50_ms: float
    p99_ms: float
    mean_ms: float
    total_s: float
    qps: float

    def to_json(self) -> dict:
        return dict(self.__dict__)


def request_stream(dataset, count: int, seed: int = 0,
                   repeat_frac: float = 0.0) -> list[np.ndarray]:
    """Sample request histories from a dataset's evaluation split.

    ``repeat_frac`` re-issues a fraction of earlier requests, modelling
    repeat users (this is what the serving LRU cache feeds on).
    """
    rng = np.random.default_rng(seed)
    examples = dataset.split.test
    picks = rng.integers(0, len(examples), size=count)
    histories = [np.asarray(examples[i].history) for i in picks]
    if repeat_frac > 0.0 and count > 1:
        repeats = rng.random(count) < repeat_frac
        repeats[0] = False
        for pos in np.flatnonzero(repeats):
            histories[pos] = histories[int(rng.integers(0, pos))]
    return histories


def _report(name: str, latencies_s: list[float], requests: int,
            batch_size: int, total_s: float) -> BenchReport:
    lat_ms = np.asarray(latencies_s) * 1e3
    return BenchReport(
        name=name, requests=requests, batch_size=batch_size,
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        mean_ms=float(lat_ms.mean()),
        total_s=total_s,
        qps=requests / total_s if total_s > 0 else float("inf"))


def bench_topk_path(recommender: Recommender, histories: list[np.ndarray],
                    k: int = 10, batch_size: int = 32) -> BenchReport:
    """The serving path: micro-batched scoring + argpartition top-k.

    Per-request latency within a batch is the batch wall time (every
    request in a coalesced flush waits for the whole batch) — the same
    accounting a real queue would produce.
    """
    latencies: list[float] = []
    start = time.perf_counter()
    for lo in range(0, len(histories), batch_size):
        chunk = histories[lo:lo + batch_size]
        tick = time.perf_counter()
        recommender.recommend_batch(chunk, k=k)
        elapsed = time.perf_counter() - tick
        latencies.extend([elapsed] * len(chunk))
    total = time.perf_counter() - start
    return _report(f"batched-top{k}", latencies, len(histories), batch_size,
                   total)


def bench_full_sort_path(recommender: Recommender,
                         histories: list[np.ndarray],
                         k: int = 10) -> BenchReport:
    """The naive reference: one request per pass, full-catalogue argsort."""
    latencies: list[float] = []
    start = time.perf_counter()
    for history in histories:
        tick = time.perf_counter()
        scores = recommender.score([np.asarray(history)])[0]
        scores[0] = -np.inf
        order = np.argsort(-scores, kind="stable")   # full O(n log n) sort
        order = order[:k]                            # the answer it would ship
        latencies.append(time.perf_counter() - tick)
    total = time.perf_counter() - start
    return _report("sequential-full-sort", latencies, len(histories), 1,
                   total)


def compare_paths(recommender: Recommender, histories: list[np.ndarray],
                  k: int = 10, batch_size: int = 32) -> dict:
    """Run both paths on the same request stream; returns both reports."""
    recommender.refresh()      # index build paid up front, outside timing
    batched = bench_topk_path(recommender, histories, k=k,
                              batch_size=batch_size)
    sequential = bench_full_sort_path(recommender, histories, k=k)
    speedup = (sequential.total_s / batched.total_s
               if batched.total_s > 0 else float("inf"))
    return {"batched": batched, "sequential": sequential,
            "throughput_speedup": speedup}


def render_comparison(comparison: dict, title: str = "serve benchmark") -> str:
    """Human-readable table for the CLI and the results/ artifact."""
    rows = [comparison["batched"], comparison["sequential"]]
    lines = [title,
             f"{'path':<24} {'req':>5} {'batch':>5} {'p50 ms':>8} "
             f"{'p99 ms':>8} {'QPS':>8}"]
    for report in rows:
        lines.append(f"{report.name:<24} {report.requests:>5} "
                     f"{report.batch_size:>5} {report.p50_ms:>8.2f} "
                     f"{report.p99_ms:>8.2f} {report.qps:>8.1f}")
    lines.append(f"throughput speedup (batched top-k vs sequential "
                 f"full sort): {comparison['throughput_speedup']:.2f}x")
    return "\n".join(lines)
