"""Latency / throughput benchmarking for the serving stack.

Drives a :class:`~repro.serve.recommender.Recommender` with a stream of
request histories and reports p50/p99 latency and QPS, comparing the
serving hot path (batched scoring + argpartition top-k) against the
naive reference (one request at a time, full-catalogue ``argsort``).
Used by ``repro bench-serve`` and ``benchmarks/test_serve_perf.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..nn.ops import topk
from ..obs import metrics
from .ann import AnnIndex
from .recommender import Recommender

__all__ = ["BenchReport", "bench_topk_path", "bench_full_sort_path",
           "compare_paths", "request_stream", "render_comparison",
           "stage_snapshots",
           "RetrievalReport", "synthetic_catalog", "synthetic_queries",
           "bench_retrieval", "render_retrieval",
           "KeepAliveClient", "bench_pool_scaling", "render_pool_report"]


@dataclass
class BenchReport:
    """Latency distribution and throughput of one benchmarked path."""

    name: str
    requests: int
    batch_size: int
    p50_ms: float
    p99_ms: float
    mean_ms: float
    total_s: float
    qps: float

    def to_json(self) -> dict:
        return dict(self.__dict__)


def request_stream(dataset, count: int, seed: int = 0,
                   repeat_frac: float = 0.0) -> list[np.ndarray]:
    """Sample request histories from a dataset's evaluation split.

    ``repeat_frac`` re-issues a fraction of earlier requests, modelling
    repeat users (this is what the serving LRU cache feeds on).
    """
    rng = np.random.default_rng(seed)
    examples = dataset.split.test
    picks = rng.integers(0, len(examples), size=count)
    histories = [np.asarray(examples[i].history) for i in picks]
    if repeat_frac > 0.0 and count > 1:
        repeats = rng.random(count) < repeat_frac
        repeats[0] = False
        for pos in np.flatnonzero(repeats):
            histories[pos] = histories[int(rng.integers(0, pos))]
    return histories


def _report(name: str, latencies_s: list[float], requests: int,
            batch_size: int, total_s: float) -> BenchReport:
    lat_ms = np.asarray(latencies_s) * 1e3
    return BenchReport(
        name=name, requests=requests, batch_size=batch_size,
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        mean_ms=float(lat_ms.mean()),
        total_s=total_s,
        qps=requests / total_s if total_s > 0 else float("inf"))


def bench_topk_path(recommender: Recommender, histories: list[np.ndarray],
                    k: int = 10, batch_size: int = 32) -> BenchReport:
    """The serving path: micro-batched scoring + argpartition top-k.

    Per-request latency within a batch is the batch wall time (every
    request in a coalesced flush waits for the whole batch) — the same
    accounting a real queue would produce. The report is labelled with
    the retrieval backend only when the ANN path served *every* batch;
    a configured backend that fell back on some batches is labelled
    ``mixed``, and on all of them ``exact-fallback``, so the table never
    attributes exact-path numbers to an index that was not consulted.
    """
    stats = getattr(recommender, "retrieval_stats", None)
    ann_before = stats.ann_batches if stats is not None else 0
    exact_before = stats.exact_batches if stats is not None else 0
    latencies: list[float] = []
    start = time.perf_counter()
    for lo in range(0, len(histories), batch_size):
        chunk = histories[lo:lo + batch_size]
        tick = time.perf_counter()
        recommender.recommend_batch(chunk, k=k)
        elapsed = time.perf_counter() - tick
        latencies.extend([elapsed] * len(chunk))
    total = time.perf_counter() - start
    retrieval = getattr(recommender, "retrieval", "exact")
    if retrieval == "exact":
        tag = ""
    else:
        ann_used = stats is not None and stats.ann_batches > ann_before
        exact_used = stats is not None and stats.exact_batches > exact_before
        if ann_used and not exact_used:
            tag = f"-{retrieval}"
        elif ann_used:
            tag = "-mixed"
        else:
            tag = "-exact-fallback"
    return _report(f"batched{tag}-top{k}", latencies, len(histories),
                   batch_size, total)


def bench_full_sort_path(recommender: Recommender,
                         histories: list[np.ndarray],
                         k: int = 10) -> BenchReport:
    """The naive reference: one request per pass, full-catalogue argsort."""
    latencies: list[float] = []
    start = time.perf_counter()
    for history in histories:
        tick = time.perf_counter()
        scores = recommender.score([np.asarray(history)])[0]
        scores[0] = -np.inf
        order = np.argsort(-scores, kind="stable")   # full O(n log n) sort
        order = order[:k]                            # the answer it would ship
        latencies.append(time.perf_counter() - tick)
    total = time.perf_counter() - start
    return _report("sequential-full-sort", latencies, len(histories), 1,
                   total)


def stage_snapshots(before: dict | None = None,
                    prefix: str = "repro_serve_") -> dict:
    """Registry histograms under ``prefix``, optionally diffed vs ``before``.

    With ``before=None``, returns ``{(name, labelset): HistogramSnapshot}``
    — the "before" marker. Called again with that marker, returns only
    what the run in between observed (``minus``), as JSON summaries in
    milliseconds (sizes stay unscaled). This is how bench reports carve
    per-run breakdowns out of process-lifetime instruments.
    """
    current = {}
    for hist in metrics.REGISTRY.histograms(prefix):
        label = ",".join(f"{k}={v}" for k, v in hist.label_key)
        current[(hist.name, label)] = hist.snapshot()
    if before is None:
        return current
    out = {}
    for key, snap in current.items():
        delta = snap.minus(before[key]) if key in before else snap
        if delta.total > 0:
            name, label = key
            scale = 1.0 if name.endswith(("_size", "_depth")) else 1e3
            out[f"{name}{{{label}}}" if label else name] = \
                delta.to_json(scale=scale)
    return out


def compare_paths(recommender: Recommender, histories: list[np.ndarray],
                  k: int = 10, batch_size: int = 32) -> dict:
    """Run both paths on the same request stream; returns both reports."""
    recommender.refresh()      # index build paid up front, outside timing
    before = stage_snapshots()
    batched = bench_topk_path(recommender, histories, k=k,
                              batch_size=batch_size)
    stages = stage_snapshots(before)
    sequential = bench_full_sort_path(recommender, histories, k=k)
    speedup = (sequential.total_s / batched.total_s
               if batched.total_s > 0 else float("inf"))
    return {"batched": batched, "sequential": sequential,
            "throughput_speedup": speedup, "stages": stages}


# -- retrieval-layer benchmark (exact vs IVF vs LSH) -------------------------


@dataclass
class RetrievalReport:
    """Recall/latency trade-off of one retrieval backend."""

    name: str
    requests: int
    k: int
    recall_at_k: float
    p50_ms: float
    p99_ms: float
    qps: float
    build_s: float
    nbytes: int

    def to_json(self) -> dict:
        return dict(self.__dict__)


def synthetic_catalog(num_items: int, dim: int = 48, num_clusters: int = 256,
                      spread: float = 0.35, seed: int = 0) -> np.ndarray:
    """A clustered item-embedding matrix standing in for a trained catalogue.

    Real item embeddings cluster by category/style — the structure both
    the paper's modality encoders and any IVF index exploit — so the
    benchmark catalogue is a mixture of Gaussians: ``num_clusters``
    centres on the unit sphere, items scattered around them with
    ``spread`` controlling intra-cluster variance. Row 0 is the padding
    item (all-zero), matching the ``encode_catalog`` contract.
    """
    rng = np.random.default_rng(seed)
    # Centres stay at their natural ~sqrt(dim) norm so inter-cluster
    # distance dominates the intra-cluster ``spread`` — the regime
    # trained embeddings live in. Normalizing them to unit length would
    # drown the structure in noise and make every ANN index look bad.
    centers = rng.normal(size=(num_clusters, dim))
    owner = rng.integers(0, num_clusters, size=num_items)
    matrix = np.zeros((num_items + 1, dim), dtype=np.float32)
    matrix[1:] = (centers[owner]
                  + spread * rng.normal(size=(num_items, dim)))
    return matrix


def synthetic_queries(catalog: np.ndarray, count: int,
                      seed: int = 1) -> np.ndarray:
    """User-state query vectors aimed at the catalogue's cluster structure.

    Each query is a perturbed catalogue item — the "user is close to
    some region of the catalogue" regime a trained user encoder
    produces — so ground-truth neighbours are non-degenerate.
    """
    rng = np.random.default_rng(seed)
    picks = rng.integers(1, len(catalog), size=count)
    noise = 0.25 * rng.normal(size=(count, catalog.shape[1]))
    return (catalog[picks] + noise).astype(catalog.dtype)


def _exact_top_ids(catalog: np.ndarray, query: np.ndarray,
                   k: int) -> np.ndarray:
    scores = catalog @ query
    scores[0] = -np.inf
    return topk(scores, k)[1]


def bench_retrieval(catalog: np.ndarray, queries: np.ndarray, k: int,
                    backends: dict[str, AnnIndex | None]) -> list[RetrievalReport]:
    """Measure recall@k and per-query QPS for each retrieval backend.

    ``backends`` maps a display name to an :class:`AnnIndex` (fitted
    here, build time reported) or ``None`` for the exact reference.
    Every backend answers the same queries; recall@k counts overlap with
    the exact top-k. ANN timings include the full serving work — code
    lookup, candidate gather, exact re-rank — not just the probe.
    """
    truth = [set(_exact_top_ids(catalog, q, k).tolist()) for q in queries]
    reports = []
    for name, index in backends.items():
        build_s = 0.0
        if index is not None:
            tick = time.perf_counter()
            index.fit(catalog, version=1)
            build_s = time.perf_counter() - tick
        latencies: list[float] = []
        hits = 0
        start = time.perf_counter()
        for query, expected in zip(queries, truth):
            tick = time.perf_counter()
            if index is None:
                ids = _exact_top_ids(catalog, query, k)
            else:
                candidates = index.candidates(query, k)
                scores = catalog[candidates] @ query
                ids = candidates[topk(scores, min(k, len(scores)))[1]]
            latencies.append(time.perf_counter() - tick)
            hits += len(expected.intersection(ids.tolist()))
        total = time.perf_counter() - start
        lat_ms = np.asarray(latencies) * 1e3
        reports.append(RetrievalReport(
            name=name, requests=len(queries), k=k,
            recall_at_k=hits / (len(queries) * k),
            p50_ms=float(np.percentile(lat_ms, 50)),
            p99_ms=float(np.percentile(lat_ms, 99)),
            qps=len(queries) / total if total > 0 else float("inf"),
            build_s=build_s,
            nbytes=catalog.nbytes if index is None else index.nbytes))
    return reports


def render_retrieval(reports: list[RetrievalReport],
                     title: str = "ann benchmark") -> str:
    """Human-readable recall/QPS table for the CLI and results/ artifact."""
    lines = [title,
             f"{'backend':<14} {'req':>5} {'recall@k':>9} {'p50 ms':>8} "
             f"{'p99 ms':>8} {'QPS':>9} {'build s':>8} {'MiB':>7}"]
    for r in reports:
        lines.append(f"{r.name:<14} {r.requests:>5} {r.recall_at_k:>9.4f} "
                     f"{r.p50_ms:>8.3f} {r.p99_ms:>8.3f} {r.qps:>9.1f} "
                     f"{r.build_s:>8.2f} {r.nbytes / 2**20:>7.2f}")
    exact = next((r for r in reports if r.name == "exact"), None)
    if exact is not None:
        for r in reports:
            if r is not exact:
                lines.append(f"{r.name}: {r.qps / exact.qps:.2f}x exact QPS "
                             f"at recall@{r.k} = {r.recall_at_k:.4f}")
    return "\n".join(lines)


def render_comparison(comparison: dict, title: str = "serve benchmark") -> str:
    """Human-readable table for the CLI and the results/ artifact."""
    rows = [comparison["batched"], comparison["sequential"]]
    lines = [title,
             f"{'path':<24} {'req':>5} {'batch':>5} {'p50 ms':>8} "
             f"{'p99 ms':>8} {'QPS':>8}"]
    for report in rows:
        lines.append(f"{report.name:<24} {report.requests:>5} "
                     f"{report.batch_size:>5} {report.p50_ms:>8.2f} "
                     f"{report.p99_ms:>8.2f} {report.qps:>8.1f}")
    lines.append(f"throughput speedup (batched top-k vs sequential "
                 f"full sort): {comparison['throughput_speedup']:.2f}x")
    stages = comparison.get("stages") or {}
    stage_rows = sorted(
        (name.split("stage=")[1].rstrip("}"), summary)
        for name, summary in stages.items()
        if name.startswith("repro_serve_stage_seconds"))
    if stage_rows:
        lines.append(f"{'stage':<12} {'count':>6} {'p50 ms':>8} "
                     f"{'p99 ms':>8} {'mean ms':>8}")
        for stage, s in stage_rows:
            lines.append(f"{stage:<12} {s['count']:>6} {s['p50']:>8.3f} "
                         f"{s['p99']:>8.3f} {s['mean']:>8.3f}")
    return "\n".join(lines)


# -- worker-pool scaling ------------------------------------------------------

class KeepAliveClient:
    """Persistent-connection JSON client for benchmarking the HTTP front.

    One TCP connection carries many requests (HTTP/1.1 keep-alive),
    which is how a real load balancer or SDK talks to the service —
    and what the per-request ``urllib`` pattern used to measure before
    the connection-churn fix. A server-side idle close is absorbed by
    one transparent reconnect.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        import http.client
        self._factory = lambda: http.client.HTTPConnection(
            host, port, timeout=timeout)
        self._conn = None
        #: Connections re-established mid-stream. Stays 0 against a
        #: healthy keep-alive server — a regression in connection churn
        #: shows up here before it shows up in latency.
        self.reconnects = 0

    def _request(self, method: str, path: str, body: str | None) -> dict:
        import http.client
        import json as _json
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = self._factory()
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
            except (http.client.RemoteDisconnected, ConnectionResetError,
                    BrokenPipeError, ConnectionAbortedError):
                self.close()
                self.reconnects += 1
                if attempt:
                    raise
                continue
            if response.status >= 400:
                raise RuntimeError(
                    f"HTTP {response.status} on {path}: {data[:200]!r}")
            return _json.loads(data)
        raise RuntimeError("unreachable")  # pragma: no cover

    def get_json(self, path: str) -> dict:
        return self._request("GET", path, None)

    def post_json(self, path: str, payload: dict) -> dict:
        import json as _json
        return self._request("POST", path, _json.dumps(payload))

    def close(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass


def bench_pool_scaling(dataset_name: str, model_name: str, *,
                       profile: str | None = None,
                       worker_counts: tuple = (1, 2, 4),
                       requests: int = 512, client_threads: int = 8,
                       k: int = 10, dtype: str = "float32",
                       max_batch: int = 32, max_wait_ms: float = 2.0,
                       checkpoint: str | None = None,
                       include_inprocess: bool = True,
                       seed: int = 0) -> dict:
    """Measure ``/recommend`` QPS over HTTP at several pool sizes.

    Each leg stands up the full serving stack — pooled service, HTTP
    server, ``client_threads`` keep-alive clients — and drives the same
    request stream through it. The registry (datasets + models + warmed
    index) is built once and reused across legs; only the pool is
    reforked per worker count. An in-process leg (no pool) rides along
    as the dispatch-overhead baseline and runs *last* so its batcher
    threads never precede a fork.
    """
    import threading
    from dataclasses import replace as _replace

    from .http import make_server
    from .pool import PooledRecommendationService
    from .registry import ModelRegistry, ScenarioSpec
    from .service import RecommendationService

    registry = ModelRegistry(profile=profile, dtype=dtype)
    scenario = registry.add(ScenarioSpec(dataset=dataset_name,
                                         model=model_name,
                                         checkpoint=checkpoint), seed=seed)
    histories = request_stream(scenario.dataset, requests, seed=seed,
                               repeat_frac=0.2)

    def run_leg(name: str, service) -> BenchReport:
        server = make_server(service)
        server.start_background()
        host, port = server.server_address[:2]
        latencies: list[list[float]] = [[] for _ in range(client_threads)]
        errors: list[str] = []
        slices = np.array_split(np.arange(len(histories)), client_threads)

        def client(tid: int, indices: np.ndarray) -> None:
            conn = KeepAliveClient(host, port)
            try:
                for i in indices:
                    payload = {"dataset": dataset_name, "model": model_name,
                               "history": [int(x) for x in
                                           histories[int(i)]],
                               "k": k}
                    tick = time.perf_counter()
                    conn.post_json("/recommend", payload)
                    latencies[tid].append(time.perf_counter() - tick)
            except Exception as exc:  # noqa: BLE001 - collected, reraised
                errors.append(f"{type(exc).__name__}: {exc}")
            finally:
                conn.close()

        threads = [threading.Thread(target=client, args=(tid, idx),
                                    daemon=True)
                   for tid, idx in enumerate(slices)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = time.perf_counter() - start
        server.shutdown()
        server.server_close()
        if errors:
            raise RuntimeError(f"pool bench leg {name!r} failed: "
                               f"{errors[:3]}")
        flat = [value for per_thread in latencies for value in per_thread]
        return _replace(_report(name, flat, len(flat), 0, total),
                        batch_size=client_threads)

    reports: list[BenchReport] = []
    for count in worker_counts:
        service = PooledRecommendationService(
            registry, workers=int(count), max_batch=max_batch,
            max_wait_ms=max_wait_ms)
        try:
            reports.append(run_leg(f"pool-{count}w", service))
        finally:
            service.close()
    if include_inprocess:
        service = RecommendationService(registry, max_batch=max_batch,
                                        max_wait_ms=max_wait_ms)
        try:
            reports.append(run_leg("in-process", service))
        finally:
            service.close()
    base = next((r for r in reports if r.name == "pool-1w"), reports[0])
    import os
    return {"scenario": f"{dataset_name}:{model_name}",
            "profile": profile, "requests": requests,
            "clients": client_threads, "k": k,
            "cpu_count": os.cpu_count() or 1,
            "worker_counts": [int(c) for c in worker_counts],
            "reports": reports,
            "scaling": {r.name: (r.qps / base.qps if base.qps else 0.0)
                        for r in reports if r.name.startswith("pool-")}}


def render_pool_report(sweep: dict,
                       title: str = "worker-pool scaling sweep") -> str:
    """Human-readable table for the CLI and the results/ artifact."""
    lines = [title,
             f"scenario {sweep['scenario']} (profile={sweep['profile']}); "
             f"{sweep['requests']} requests over HTTP keep-alive, "
             f"{sweep['clients']} client threads; host has "
             f"{sweep['cpu_count']} cpu core(s)",
             f"{'leg':<14} {'req':>5} {'p50 ms':>8} {'p99 ms':>8} "
             f"{'QPS':>8}"]
    for report in sweep["reports"]:
        lines.append(f"{report.name:<14} {report.requests:>5} "
                     f"{report.p50_ms:>8.2f} {report.p99_ms:>8.2f} "
                     f"{report.qps:>8.1f}")
    for name, ratio in sweep["scaling"].items():
        if name != "pool-1w":
            lines.append(f"{name}: {ratio:.2f}x pool-1w QPS")
    if sweep["cpu_count"] < max(sweep["worker_counts"], default=1):
        lines.append(
            f"note: host exposes only {sweep['cpu_count']} core(s) — QPS "
            "cannot scale past the physical cores; the >=2.5x @ 4 workers "
            "target needs a >=4-core host")
    return "\n".join(lines)
