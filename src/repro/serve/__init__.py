"""``repro.serve`` — the online recommendation serving subsystem.

Turns any model exposing the ``encode_catalog`` / ``sequence_hidden``
protocol (PMMRec and every sequential baseline) into an online service:

* :mod:`~repro.serve.scoring` — the batch-scoring kernel shared with
  offline evaluation (one hot path for tables and traffic);
* :class:`CatalogIndex` — precomputed, versioned item representations;
* :mod:`~repro.serve.ann` — approximate retrieval (:class:`IVFIndex` /
  :class:`LSHIndex` behind the :class:`AnnIndex` protocol) with exact
  fallback, rebuilt incrementally on index refresh;
* :class:`Recommender` — ``recommend(history, k)`` with argpartition
  top-k, seen-item exclusion and ANN/exact retrieval routing;
* :class:`MicroBatcher` — size/timeout request coalescing + LRU cache;
* :class:`ModelRegistry` — many (dataset, model) scenarios, one process;
* :class:`RecommendationService` + :mod:`~repro.serve.http` — the JSON
  endpoint behind ``repro serve``;
* :mod:`~repro.serve.bench` — p50/p99/QPS measurement for
  ``repro bench-serve`` plus the recall@k-vs-QPS retrieval benchmark.

See ``docs/serving.md`` for the architecture and the endpoint contract.
"""

from .ann import (ANN_KINDS, AnnIndex, AnnSearch, IVFIndex, LSHIndex,
                  make_ann_index)
from .batcher import BatcherClosed, BatcherStats, LRUCache, MicroBatcher
from .bench import (BenchReport, KeepAliveClient, RetrievalReport,
                    bench_full_sort_path, bench_pool_scaling,
                    bench_retrieval, bench_topk_path, compare_paths,
                    render_comparison, render_pool_report,
                    render_retrieval, request_stream, stage_snapshots,
                    synthetic_catalog, synthetic_queries)
from .http import RecommendationServer, make_server, serve_forever
from .index import CatalogIndex, FrozenCatalogIndex
from .recommender import Recommendation, Recommender, RetrievalStats
from .registry import ModelRegistry, Scenario, ScenarioSpec, build_model
from .scoring import (batch_scorer, encode_queries, model_max_len,
                      score_batch, supports_kernel)
from .service import RecommendationService

# After .service: the pool builds on the in-process service and would
# otherwise form an import cycle through the package root.
from .pool import (PoolError, PooledRecommendationService,  # noqa: E402
                   SharedCatalogStore, WorkerDied, WorkerPool)

__all__ = [
    "score_batch", "encode_queries", "batch_scorer", "supports_kernel",
    "model_max_len",
    "CatalogIndex", "FrozenCatalogIndex",
    "ANN_KINDS", "AnnIndex", "AnnSearch", "IVFIndex", "LSHIndex",
    "make_ann_index",
    "Recommendation", "Recommender", "RetrievalStats",
    "MicroBatcher", "LRUCache", "BatcherStats", "BatcherClosed",
    "ModelRegistry", "Scenario", "ScenarioSpec", "build_model",
    "RecommendationService",
    "PooledRecommendationService", "WorkerPool", "SharedCatalogStore",
    "PoolError", "WorkerDied",
    "RecommendationServer", "make_server", "serve_forever",
    "BenchReport", "bench_topk_path", "bench_full_sort_path",
    "compare_paths", "render_comparison", "request_stream",
    "stage_snapshots",
    "RetrievalReport", "bench_retrieval", "render_retrieval",
    "synthetic_catalog", "synthetic_queries",
    "KeepAliveClient", "bench_pool_scaling", "render_pool_report",
]
