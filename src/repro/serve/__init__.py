"""``repro.serve`` — the online recommendation serving subsystem.

Turns any model exposing the ``encode_catalog`` / ``sequence_hidden``
protocol (PMMRec and every sequential baseline) into an online service:

* :mod:`~repro.serve.scoring` — the batch-scoring kernel shared with
  offline evaluation (one hot path for tables and traffic);
* :class:`CatalogIndex` — precomputed, versioned item representations;
* :class:`Recommender` — ``recommend(history, k)`` with argpartition
  top-k and seen-item exclusion;
* :class:`MicroBatcher` — size/timeout request coalescing + LRU cache;
* :class:`ModelRegistry` — many (dataset, model) scenarios, one process;
* :class:`RecommendationService` + :mod:`~repro.serve.http` — the JSON
  endpoint behind ``repro serve``;
* :mod:`~repro.serve.bench` — p50/p99/QPS measurement for
  ``repro bench-serve``.

See ``docs/serving.md`` for the architecture and the endpoint contract.
"""

from .batcher import BatcherStats, LRUCache, MicroBatcher
from .bench import (BenchReport, bench_full_sort_path, bench_topk_path,
                    compare_paths, render_comparison, request_stream)
from .http import RecommendationServer, make_server, serve_forever
from .index import CatalogIndex
from .recommender import Recommendation, Recommender
from .registry import ModelRegistry, Scenario, ScenarioSpec, build_model
from .scoring import batch_scorer, model_max_len, score_batch, supports_kernel
from .service import RecommendationService

__all__ = [
    "score_batch", "batch_scorer", "supports_kernel", "model_max_len",
    "CatalogIndex",
    "Recommendation", "Recommender",
    "MicroBatcher", "LRUCache", "BatcherStats",
    "ModelRegistry", "Scenario", "ScenarioSpec", "build_model",
    "RecommendationService",
    "RecommendationServer", "make_server", "serve_forever",
    "BenchReport", "bench_topk_path", "bench_full_sort_path",
    "compare_paths", "render_comparison", "request_stream",
]
