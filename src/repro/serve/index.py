"""Versioned in-memory catalogue index for one (model, dataset) pair.

Online retrieval never encodes items per request: the whole item
catalogue is encoded once into a dense ``(num_items+1, d)`` matrix and
held in memory, and every request is a gather + matmul against it. The
index is *versioned* — ``refresh()`` republishes the matrix and bumps
the version, and downstream caches (e.g. the micro-batcher's LRU) key
on the version so stale entries miss naturally after a model update.

An optional :class:`~repro.serve.ann.AnnIndex` can be attached; it is
refit inside every ``refresh()`` (incrementally — IVF warm-starts from
the previous centroids, LSH only re-encodes) and stamped with the
version of the matrix it was built from, so consumers can tell a
current ANN structure from a stale one.
"""

from __future__ import annotations

import threading

import numpy as np

from .ann import AnnIndex, AnnSearch

__all__ = ["CatalogIndex", "FrozenCatalogIndex"]


class CatalogIndex:
    """Precomputed, versioned item-representation matrix.

    ``dtype`` optionally down-casts the published matrix (float32 halves
    the memory footprint and speeds up the scoring matmuls; the paper's
    metrics are rank-based and insensitive to the cast). The matrix is
    built lazily on first use and marked read-only, so every consumer
    shares one buffer safely across threads.
    """

    def __init__(self, model, dataset, dtype=None, chunk_size: int = 256,
                 ann: AnnIndex | None = None, start_version: int = 0):
        if not hasattr(model, "encode_catalog"):
            raise TypeError(
                f"{type(model).__name__} does not expose encode_catalog, "
                "which indexed serving requires")
        self.model = model
        self.dataset = dataset
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.chunk_size = chunk_size
        self._matrix: np.ndarray | None = None
        self._ann = ann
        # start_version lets a hot-swapped scenario's fresh index continue
        # the retired index's version sequence, keeping the version a
        # client sees monotonic across model generations.
        self._version = start_version
        self._stale = True
        self._stale_epoch = 0
        # _lock guards the published state and is only ever held briefly;
        # _refresh_lock serializes builders, which do the expensive
        # encode + ANN fit *outside* _lock so concurrent readers never
        # stall behind a rebuild.
        self._lock = threading.RLock()
        self._refresh_lock = threading.Lock()

    # -- state ---------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic publication counter (0 until the first build)."""
        return self._version

    @property
    def num_items(self) -> int:
        return self.dataset.num_items

    @property
    def nbytes(self) -> int:
        """Memory held by the published matrix (0 before the first build)."""
        return 0 if self._matrix is None else self._matrix.nbytes

    @property
    def stale(self) -> bool:
        """True when the next access will rebuild (version will change)."""
        return self._stale or self._matrix is None

    @property
    def ann(self) -> AnnIndex | None:
        """The attached approximate-retrieval structure, if any."""
        return self._ann

    def mark_stale(self) -> None:
        """Request a rebuild on next access (e.g. after a weight update).

        Caches keyed on the version must treat a stale index as
        uncacheable (see ``MicroBatcher.submit``): the current version
        number still names the *old* snapshot until the rebuild runs.
        The epoch counter makes the request durable against an in-flight
        rebuild: a build that started before this call cannot clear it.
        """
        with self._lock:
            self._stale = True
            self._stale_epoch += 1

    def attach_ann(self, ann: AnnIndex | None) -> None:
        """Attach (or detach, with ``None``) the ANN structure.

        When a matrix is already published the structure is fitted to it
        immediately, so attaching never leaves a window where retrieval
        sees an unfitted index. Attaching serializes with builders on
        ``_refresh_lock``: an attach landing mid-rebuild would otherwise
        be stamped with the about-to-be-superseded version and fall back
        to exact scoring forever after. The fit itself runs outside the
        reader lock — readers keep serving (exactly) while it builds.
        """
        with self._refresh_lock:
            with self._lock:
                self._ann = ann
                matrix, version = self._matrix, self._version
            if ann is not None and matrix is not None:
                ann.fit(matrix, version=version)

    # -- building ------------------------------------------------------------

    def publish_partial(self, base_matrix: np.ndarray,
                        changed_ids: np.ndarray) -> int:
        """Publish a version that reuses ``base_matrix`` rows, re-encoding
        only ``changed_ids``; returns the new version.

        This is the hot-swap fast path for catalogue *growth without
        weight change*: when new (cold) items arrive but the model that
        produced ``base_matrix`` is unchanged, every existing row is
        still exact, so only the new/changed rows are encoded —
        ``O(|changed|)`` instead of ``O(num_items)``. The caller is
        responsible for the precondition (same weights); a weight update
        invalidates every row and must use :meth:`refresh`. Falls back
        to a full rebuild for models without the row-encode protocol.
        """
        if not hasattr(self.model, "encode_item_rows"):
            return self.refresh()
        with self._refresh_lock:
            with self._lock:
                next_version = self._version + 1
                ann = self._ann
                epoch = self._stale_epoch
            rows = self.dataset.num_items + 1
            dtype = self.dtype if self.dtype is not None \
                else base_matrix.dtype
            matrix = np.zeros((rows, base_matrix.shape[1]), dtype=dtype)
            keep = min(base_matrix.shape[0], rows)
            matrix[:keep] = base_matrix[:keep]
            changed = np.asarray(changed_ids, dtype=np.int64)
            if changed.size:
                for start in range(0, changed.size, self.chunk_size):
                    ids = changed[start:start + self.chunk_size]
                    fresh = self.model.encode_item_rows(self.dataset, ids)
                    matrix[ids] = fresh.astype(dtype, copy=False)
            matrix.flags.writeable = False
            if ann is not None:
                ann.fit(matrix, version=next_version)
            with self._lock:
                self._matrix = matrix
                self._stale = self._stale_epoch != epoch
                self._version = next_version
                return next_version

    def refresh(self) -> int:
        """Re-encode the catalogue and publish a new version; returns it.

        The build — catalogue encode plus ANN refit, the multi-second
        part at scale — runs outside the reader lock: concurrent
        requests keep snapshotting the previous version until the new
        one is adopted in a brief critical section. The ANN structure is
        fitted and stamped with the version *before* publication, so no
        reader can pair the new matrix with the old structure; a reader
        that races the window between fit and publication sees the old
        matrix with a not-yet-matching structure stamp and simply scores
        exactly (see :meth:`snapshot_retrieval`).
        """
        with self._refresh_lock:
            return self._rebuild()

    def _rebuild(self) -> int:
        """Build + publish one version; caller holds ``_refresh_lock``."""
        with self._lock:
            next_version = self._version + 1
            ann = self._ann
            epoch = self._stale_epoch
        matrix = self.model.encode_catalog(self.dataset,
                                           chunk_size=self.chunk_size)
        if self.dtype is not None and matrix.dtype != self.dtype:
            matrix = matrix.astype(self.dtype)
        matrix.flags.writeable = False
        if ann is not None:
            ann.fit(matrix, version=next_version)
        with self._lock:
            self._matrix = matrix
            # A mark_stale() that landed while we were encoding refers
            # to weights this build may not have seen: keep the index
            # stale so the next access rebuilds again rather than
            # serving the superseded snapshot as fresh.
            self._stale = self._stale_epoch != epoch
            self._version = next_version
            return next_version

    @property
    def matrix(self) -> np.ndarray:
        """The current ``(num_items+1, d)`` matrix, building if stale."""
        return self.snapshot()[0]

    def snapshot(self) -> tuple[np.ndarray, int]:
        """Atomically read ``(matrix, version)``, building if stale.

        Scoring code must label results with the version from the same
        snapshot it scored against — reading ``matrix`` and ``version``
        separately can interleave with a concurrent :meth:`refresh`.
        """
        with self._lock:
            if not (self._stale or self._matrix is None):
                return self._matrix, self._version
        self._refresh_if_stale()
        with self._lock:
            return self._matrix, self._version

    def _refresh_if_stale(self) -> None:
        """Rebuild once if still stale; concurrent callers coalesce."""
        with self._refresh_lock:
            with self._lock:
                if not (self._stale or self._matrix is None):
                    return             # another builder already published
            self._rebuild()

    def snapshot_retrieval(self) -> tuple[np.ndarray, int, AnnSearch | None]:
        """Like :meth:`snapshot` plus a search view *for that version*.

        The third slot is an :class:`AnnSearch` pinned to the fitted
        state matching the returned matrix — a refresh landing after
        this call refits the live index but cannot swap the state under
        a request already scoring the old snapshot. It is ``None`` when
        no structure is attached or the attached one was fitted against
        a different version (e.g. a rebuild is mid-flight) — the caller
        must then score exactly rather than trust stale cells.
        """
        matrix, version = self.snapshot()
        ann = self._ann
        search = None if ann is None else ann.search_snapshot()
        if search is not None and search.version != version:
            search = None
        return matrix, version, search

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = None if self._matrix is None else self._matrix.shape
        return (f"CatalogIndex(dataset={self.dataset.name!r}, "
                f"version={self._version}, shape={shape})")


class FrozenCatalogIndex:
    """A read-only :class:`CatalogIndex` over an externally published matrix.

    Pool worker processes (``repro.serve.pool``) never encode: the parent
    publishes the catalogue matrix into shared memory, and each worker
    wraps its zero-copy view in this class so the rest of the serving
    stack (:class:`~repro.serve.recommender.Recommender`, the
    micro-batcher's version-keyed cache) works unchanged. The index is
    never stale — a new generation arrives as a *new* frozen index via
    the generation fence, not as a rebuild of this one — so the mutating
    half of the ``CatalogIndex`` surface (``mark_stale``,
    ``publish_partial``) raises, and ``refresh`` is a no-op returning the
    pinned version. No locks: every field is immutable after the
    (single-threaded) ANN fit in ``attach_ann``.
    """

    def __init__(self, matrix: np.ndarray, version: int,
                 num_items: int | None = None):
        matrix = np.asarray(matrix)
        if matrix.flags.writeable:
            matrix = matrix.view()
            matrix.flags.writeable = False
        self._matrix = matrix
        self._version = int(version)
        self._num_items = (int(num_items) if num_items is not None
                           else matrix.shape[0] - 1)
        self._ann: AnnIndex | None = None

    # -- state ---------------------------------------------------------------

    @property
    def version(self) -> int:
        return self._version

    @property
    def num_items(self) -> int:
        return self._num_items

    @property
    def nbytes(self) -> int:
        return self._matrix.nbytes

    @property
    def stale(self) -> bool:
        return False

    @property
    def ann(self) -> AnnIndex | None:
        return self._ann

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix

    def mark_stale(self) -> None:
        raise RuntimeError("FrozenCatalogIndex cannot rebuild; publish a "
                           "new generation through the pool fence instead")

    def publish_partial(self, base_matrix, changed_ids) -> int:
        raise RuntimeError("FrozenCatalogIndex cannot rebuild; publish a "
                           "new generation through the pool fence instead")

    def attach_ann(self, ann: AnnIndex | None) -> None:
        """Attach and immediately fit an ANN structure to the frozen matrix.

        Fitting is per-worker duplicated work (each process builds its
        own centroids/tables over the shared matrix), which is the price
        of keeping ANN structures plain process-local objects.
        """
        self._ann = ann
        if ann is not None:
            ann.fit(self._matrix, version=self._version)

    # -- reads ---------------------------------------------------------------

    def refresh(self) -> int:
        """No-op: frozen generations are replaced, never rebuilt."""
        return self._version

    def snapshot(self) -> tuple[np.ndarray, int]:
        return self._matrix, self._version

    def snapshot_retrieval(self) -> tuple[np.ndarray, int, AnnSearch | None]:
        ann = self._ann
        search = None if ann is None else ann.search_snapshot()
        if search is not None and search.version != self._version:
            search = None          # pragma: no cover - fit pins the version
        return self._matrix, self._version, search

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FrozenCatalogIndex(version={self._version}, "
                f"shape={self._matrix.shape})")
