"""Versioned in-memory catalogue index for one (model, dataset) pair.

Online retrieval never encodes items per request: the whole item
catalogue is encoded once into a dense ``(num_items+1, d)`` matrix and
held in memory, and every request is a gather + matmul against it. The
index is *versioned* — ``refresh()`` republishes the matrix and bumps
the version, and downstream caches (e.g. the micro-batcher's LRU) key
on the version so stale entries miss naturally after a model update.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["CatalogIndex"]


class CatalogIndex:
    """Precomputed, versioned item-representation matrix.

    ``dtype`` optionally down-casts the published matrix (float32 halves
    the memory footprint and speeds up the scoring matmuls; the paper's
    metrics are rank-based and insensitive to the cast). The matrix is
    built lazily on first use and marked read-only, so every consumer
    shares one buffer safely across threads.
    """

    def __init__(self, model, dataset, dtype=None, chunk_size: int = 256):
        if not hasattr(model, "encode_catalog"):
            raise TypeError(
                f"{type(model).__name__} does not expose encode_catalog, "
                "which indexed serving requires")
        self.model = model
        self.dataset = dataset
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.chunk_size = chunk_size
        self._matrix: np.ndarray | None = None
        self._version = 0
        self._stale = True
        self._lock = threading.RLock()

    # -- state ---------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic publication counter (0 until the first build)."""
        return self._version

    @property
    def num_items(self) -> int:
        return self.dataset.num_items

    @property
    def nbytes(self) -> int:
        """Memory held by the published matrix (0 before the first build)."""
        return 0 if self._matrix is None else self._matrix.nbytes

    @property
    def stale(self) -> bool:
        """True when the next access will rebuild (version will change)."""
        return self._stale or self._matrix is None

    def mark_stale(self) -> None:
        """Request a rebuild on next access (e.g. after a weight update).

        Caches keyed on the version must treat a stale index as
        uncacheable (see ``MicroBatcher.submit``): the current version
        number still names the *old* snapshot until the rebuild runs.
        """
        self._stale = True

    # -- building ------------------------------------------------------------

    def refresh(self) -> int:
        """Re-encode the catalogue and publish a new version; returns it."""
        with self._lock:
            matrix = self.model.encode_catalog(self.dataset,
                                               chunk_size=self.chunk_size)
            if self.dtype is not None and matrix.dtype != self.dtype:
                matrix = matrix.astype(self.dtype)
            matrix.flags.writeable = False
            self._matrix = matrix
            self._stale = False
            self._version += 1
            return self._version

    @property
    def matrix(self) -> np.ndarray:
        """The current ``(num_items+1, d)`` matrix, building if stale."""
        return self.snapshot()[0]

    def snapshot(self) -> tuple[np.ndarray, int]:
        """Atomically read ``(matrix, version)``, building if stale.

        Scoring code must label results with the version from the same
        snapshot it scored against — reading ``matrix`` and ``version``
        separately can interleave with a concurrent :meth:`refresh`.
        """
        with self._lock:
            if self._stale or self._matrix is None:
                self.refresh()
            return self._matrix, self._version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = None if self._matrix is None else self._matrix.shape
        return (f"CatalogIndex(dataset={self.dataset.name!r}, "
                f"version={self._version}, shape={shape})")
