"""Multi-scenario model registry: many (dataset, model) pairs, one process.

The paper's whole pitch is *transferability* — one architecture serving
many platforms and catalogues — and NineRec-style evaluation makes that
a many-scenario problem. The registry makes it a *serving* concern:
each scenario pairs a dataset with a model (PMMRec variant or any
baseline), optionally warm-started from a checkpoint, and owns a
catalogue index + recommender so one process can route requests across
every scenario it hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..data import build_dataset
from .recommender import Recommender

__all__ = ["ScenarioSpec", "Scenario", "ModelRegistry", "build_model"]


def build_model(name: str, dataset, seed: int = 0):
    """Instantiate any method by its CLI name for ``dataset``.

    ``pmmrec*`` names (modalities and ablation variants) resolve through
    the shared :func:`repro.core.make_pmmrec` factory; every other name
    resolves through :func:`repro.baselines.make_baseline`.
    """
    if name.startswith("pmmrec"):
        from ..core import make_pmmrec
        return make_pmmrec(name, seed=seed)
    from ..baselines import make_baseline
    return make_baseline(name, dataset, seed=seed)


@dataclass(frozen=True)
class ScenarioSpec:
    """One serving scenario: ``dataset:model[:checkpoint]``."""

    dataset: str
    model: str
    checkpoint: str | None = None
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "ScenarioSpec":
        """Parse a CLI spec like ``kwai_food:sasrec[:path/to/ckpt.npz]``."""
        parts = text.strip().split(":", 2)
        if len(parts) < 2 or not parts[0] or not parts[1]:
            raise ValueError(
                f"scenario spec {text!r} must look like "
                "'dataset:model' or 'dataset:model:checkpoint'")
        checkpoint = parts[2] if len(parts) == 3 and parts[2] else None
        return cls(dataset=parts[0], model=parts[1], checkpoint=checkpoint,
                   seed=seed)

    @property
    def key(self) -> tuple[str, str]:
        return (self.dataset, self.model)


@dataclass
class Scenario:
    """A loaded scenario: data, model and its recommender."""

    spec: ScenarioSpec
    dataset: object
    model: object
    recommender: Recommender

    def describe(self) -> dict:
        """JSON-serializable summary for the ``/scenarios`` endpoint."""
        index = self.recommender.index
        return {"dataset": self.spec.dataset,
                "model": self.spec.model,
                "checkpoint": self.spec.checkpoint,
                "num_items": self.dataset.num_items,
                "num_users": self.dataset.num_users,
                "indexed": index is not None,
                "index_version": self.recommender.index_version,
                "index_nbytes": 0 if index is None else index.nbytes,
                "retrieval": self.recommender.describe_retrieval()}


class ModelRegistry:
    """Load checkpoints for many scenarios behind one routing surface."""

    def __init__(self, profile: str | None = None, dtype: str | None = "float32",
                 exclude_seen: bool = True, warm: bool = True,
                 retrieval: str = "exact", ann_params: dict | None = None,
                 min_ann_items: int | None = None):
        self.profile = profile
        self.dtype = dtype
        self.exclude_seen = exclude_seen
        self.warm = warm
        self.retrieval = retrieval
        self.ann_params = ann_params
        self.min_ann_items = min_ann_items
        self._scenarios: dict[tuple[str, str], Scenario] = {}

    # -- loading -------------------------------------------------------------

    def add(self, spec: ScenarioSpec | str, seed: int | None = None) -> Scenario:
        """Load one scenario (dataset + model + optional checkpoint).

        ``seed``, when given, overrides the spec's seed (and seeds specs
        parsed from strings). With ``warm`` (the default) the catalogue
        index is built eagerly so the first request doesn't pay the
        encode; otherwise it builds lazily. Re-adding an existing
        (dataset, model) key replaces it.
        """
        if isinstance(spec, str):
            spec = ScenarioSpec.parse(spec, seed=seed or 0)
        elif seed is not None and seed != spec.seed:
            spec = replace(spec, seed=seed)
        dataset = build_dataset(spec.dataset, profile=self.profile)
        model = build_model(spec.model, dataset, seed=spec.seed)
        if spec.checkpoint is not None:
            if not hasattr(model, "load_state_dict"):
                raise TypeError(f"model {spec.model!r} does not support "
                                "checkpoint loading")
            from ..nn.serialization import load_checkpoint
            model.load_state_dict(load_checkpoint(spec.checkpoint))
        if self.dtype is not None and hasattr(model, "to_dtype"):
            model.to_dtype(self.dtype)
        recommender = self.build_recommender(model, dataset)
        scenario = Scenario(spec=spec, dataset=dataset, model=model,
                            recommender=recommender)
        if self.warm and recommender.index is not None:
            recommender.refresh()
        self._scenarios[spec.key] = scenario
        return scenario

    def add_all(self, specs: str | list,
                seed: int | None = None) -> list[Scenario]:
        """Add many scenarios (a comma-separated string or a list)."""
        if isinstance(specs, str):
            specs = [s for s in specs.split(",") if s.strip()]
        return [self.add(spec, seed=seed) for spec in specs]

    def build_recommender(self, model, dataset, index=None) -> Recommender:
        """One :class:`Recommender` wired with this registry's settings.

        The single place the retrieval configuration (exclude-seen,
        dtype, ANN backend/knobs) turns into a recommender — used by
        :meth:`add` and by the hot-swap path (``repro.stream``), so a
        swapped-in generation can never serve with different retrieval
        configuration than a freshly loaded one.
        """
        extra = ({} if self.min_ann_items is None
                 else {"min_ann_items": self.min_ann_items})
        return Recommender(model, dataset, index=index,
                           exclude_seen=self.exclude_seen,
                           index_dtype=self.dtype,
                           retrieval=self.retrieval,
                           ann_params=self.ann_params, **extra)

    def build_scenario(self, spec: ScenarioSpec, dataset, model,
                       index=None) -> Scenario:
        """Assemble a :class:`Scenario` around pre-built parts.

        The counterpart of :meth:`build_recommender` one level up: hot
        swaps (``repro.stream``) and pool workers (``repro.serve.pool``)
        bring their own dataset snapshot, model generation and —
        worker-side — a frozen shared-memory index, but the recommender
        wiring must still come from this registry's retrieval settings.
        """
        recommender = self.build_recommender(model, dataset, index=index)
        return Scenario(spec=spec, dataset=dataset, model=model,
                        recommender=recommender)

    # -- hot swap ------------------------------------------------------------

    def publish(self, scenario: Scenario) -> Scenario:
        """Atomically replace a loaded scenario with a new generation.

        This is the registry half of a hot swap (``repro.stream``): the
        caller builds a fully warmed :class:`Scenario` (model + dataset
        snapshot + recommender whose index is already encoded) off the
        request path, then publishes it here. Routing flips on a single
        dict assignment — requests already scoring against the old
        generation finish against it; the serving facade retires the old
        generation's batcher separately (see
        ``RecommendationService.retire_batcher``). Returns the scenario
        it replaced, or raises if the key was never loaded (a swap must
        target a serving scenario, not create one).
        """
        key = scenario.spec.key
        if key not in self._scenarios:
            known = sorted(f"{d}:{m}" for d, m in self._scenarios)
            raise KeyError(f"cannot publish {key[0]}:{key[1]}: scenario "
                           f"not loaded; loaded scenarios: {known}")
        previous = self._scenarios[key]
        self._scenarios[key] = scenario
        return previous

    # -- routing -------------------------------------------------------------

    def get(self, dataset: str, model: str) -> Scenario:
        key = (dataset, model)
        if key not in self._scenarios:
            known = sorted(f"{d}:{m}" for d, m in self._scenarios)
            raise KeyError(f"no scenario {dataset}:{model}; "
                           f"loaded scenarios: {known}")
        return self._scenarios[key]

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self):
        return iter(self._scenarios.values())

    def keys(self) -> list[tuple[str, str]]:
        return list(self._scenarios)

    def describe(self) -> list[dict]:
        return [scenario.describe() for scenario in self._scenarios.values()]
