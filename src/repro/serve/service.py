"""The serving facade: registry routing + per-scenario micro-batchers.

:class:`RecommendationService` is what the HTTP endpoint (and the CLI)
talk to: it owns a :class:`~repro.serve.registry.ModelRegistry`, lazily
attaches a :class:`~repro.serve.batcher.MicroBatcher` to each scenario,
and answers ``recommend(dataset, model, history, k)`` with a
JSON-serializable payload including the request latency.

A streaming manager (``repro.stream``) can be attached to close the
train→serve loop online: the service then accepts ``POST /events``
ingestion and exposes swap/staleness counters on ``/stats``, and its
routing survives hot swaps — a request that races a scenario
replacement is transparently retried against the new generation, so
swaps never drop traffic. The service only knows the small duck-typed
protocol (``ingest`` / ``swap`` / ``stats`` / ``close``), keeping the
layering one-directional (stream imports serve, never the reverse).
"""

from __future__ import annotations

import threading
import time

from ..obs import metrics, trace
from .batcher import BatcherClosed, MicroBatcher
from .recommender import Recommendation
from .registry import ModelRegistry, Scenario

__all__ = ["RecommendationService", "SelfMonitoring"]


class SelfMonitoring:
    """Health/timeline surface shared by both serving tiers.

    Mixed into :class:`RecommendationService` and the pooled service so
    ``GET /health`` / ``GET /alerts`` / ``GET /timeline`` read the same
    on every deployment shape. Without :meth:`enable_monitoring` the
    surface degrades gracefully: ``/health`` stays the legacy
    unconditional-``ok`` payload, the other endpoints report
    ``monitoring: false``.
    """

    monitor = None      # set by enable_monitoring()

    def enable_monitoring(self, interval_s: float = 1.0,
                          window_s: float = 300.0, rules=None,
                          start: bool = True):
        """Attach a timeline + SLO health monitor (idempotent).

        The monitor samples this service's own ``metrics_text()`` —
        already merged across pool workers on the pooled tier — every
        ``interval_s`` seconds and evaluates its rules after each
        sample. ``start=False`` skips the background thread so tests
        can drive ``monitor.timeline.sample()`` deterministically.
        """
        if self.monitor is None:
            from ..obs.health import monitor_service
            self.monitor = monitor_service(
                self, interval_s=interval_s, window_s=window_s,
                rules=rules, start=start)
        return self.monitor

    def health(self) -> dict:
        """The ``GET /health`` body; 503-worthy iff status is failing."""
        if self.monitor is None:
            return {"status": "ok", "monitoring": False, "causes": [],
                    "scenarios": len(self.registry)}
        payload = self.monitor.status()
        payload["scenarios"] = len(self.registry)
        return payload

    def alerts(self) -> dict:
        if self.monitor is None:
            return {"monitoring": False, "status": "ok",
                    "active": [], "history": [], "rules": []}
        return self.monitor.alerts()

    def timeline_export(self, metric: str | None = None,
                        window_s: float | None = None) -> dict:
        if self.monitor is None:
            return {"monitoring": False, "metrics": [], "series": []}
        return self.monitor.timeline.export(metric, window_s=window_s)

    def _close_monitor(self) -> None:
        monitor, self.monitor = self.monitor, None
        if monitor is not None:
            monitor.close()


class RecommendationService(SelfMonitoring):
    """Route requests to scenarios, micro-batching each scenario's load."""

    def __init__(self, registry: ModelRegistry, max_batch: int = 32,
                 max_wait_ms: float = 2.0, cache_size: int = 1024,
                 batching: bool = True):
        self.registry = registry
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self.batching = batching
        self.stream = None          # attached via attach_stream()
        self._batchers: dict[tuple[str, str], MicroBatcher] = {}
        self._lock = threading.Lock()
        self._swap_race_retries = 0
        self._closed = False
        # End-to-end latency per scenario lives in log-bucketed histograms:
        # /stats reads p50/p99 in O(1) over ~64 buckets instead of sorting
        # an ever-growing latency list (the pre-obs implementation kept
        # raw per-request floats).
        self._latency: dict[tuple[str, str], metrics.Histogram] = {}
        self._m_swap_races = metrics.counter(
            "repro_serve_swap_race_retries_total",
            "requests retried because they raced a hot swap")

    def _latency_hist(self, dataset: str, model: str) -> metrics.Histogram:
        key = (dataset, model)
        hist = self._latency.get(key)
        if hist is None:
            # Registry get-or-create is idempotent, so a benign double
            # create under race just returns the same instrument.
            hist = metrics.histogram(
                "repro_serve_request_seconds",
                "end-to-end recommend() latency",
                labels={"scenario": f"{dataset}:{model}"})
            self._latency[key] = hist
        return hist

    # -- internals -----------------------------------------------------------

    def _batcher(self, scenario: Scenario) -> MicroBatcher:
        key = scenario.spec.key
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            existing = self._batchers.get(key)
            if (existing is not None
                    and existing.recommender is not scenario.recommender):
                # The registry hot-swapped this scenario (re-add replaces
                # it); retire the batcher bound to the old recommender.
                existing.close()
                existing = None
            if existing is None:
                existing = MicroBatcher(
                    scenario.recommender, max_batch=self.max_batch,
                    max_wait_ms=self.max_wait_ms, cache_size=self.cache_size,
                    start=self.batching,
                    metrics_label=f"{key[0]}:{key[1]}")
                self._batchers[key] = existing
            return existing

    # -- request API ---------------------------------------------------------

    def recommend(self, dataset: str, model: str, history,
                  k: int = 10) -> dict:
        """Answer one request; returns the JSON payload for the endpoint."""
        if self._closed:
            raise RuntimeError("service is closed")
        start = time.perf_counter()
        # A request can race a hot swap: it resolves the scenario, the
        # swap publishes a new generation and retires the old batcher,
        # then the request submits to the now-closed batcher. The old
        # batcher drained everything already queued before closing, so
        # the only casualty is this not-yet-queued request — retry it
        # against the replacement generation instead of dropping it.
        for attempt in range(5):
            scenario = self.registry.get(dataset, model)
            try:
                result: Recommendation = self._batcher(scenario).recommend(
                    history, k=k)
                break
            except BatcherClosed:
                if attempt == 4:  # pragma: no cover - would need 5 swaps
                    raise
                # Observable on /stats: a spike means swaps are so
                # frequent requests keep landing on retiring batchers.
                with self._lock:
                    self._swap_race_retries += 1
                self._m_swap_races.inc()
        elapsed = time.perf_counter() - start
        self._latency_hist(dataset, model).observe(elapsed)
        ctx = trace.current()
        if ctx is not None:
            ctx.meta.setdefault("cached", result.cached)
        payload = result.to_json()
        payload.update(dataset=dataset, model=model,
                       latency_ms=elapsed * 1e3)
        return payload

    def refresh(self, dataset: str, model: str) -> int:
        """Rebuild one scenario's catalogue index; returns the new version."""
        return self.registry.get(dataset, model).recommender.refresh()

    # -- streaming / hot swap ------------------------------------------------

    def attach_stream(self, manager) -> None:
        """Attach a continual-learning manager (see ``repro.stream``).

        ``manager`` must provide ``ingest(dataset, model, events)``,
        ``swap(dataset, model)``, ``stats()`` and ``close()``. Once
        attached, the manager's lifecycle is tied to the service's.
        """
        self.stream = manager

    def ingest_events(self, dataset: str, model: str, events: list) -> dict:
        """Feed interaction/cold-item events to the streaming pipeline."""
        if self.stream is None:
            raise ValueError("streaming is not enabled on this service; "
                             "start it with `repro stream`")
        return self.stream.ingest(dataset, model, events)

    def trigger_swap(self, dataset: str, model: str) -> dict:
        """Force a hot swap of one scenario's model/index generation."""
        if self.stream is None:
            raise ValueError("streaming is not enabled on this service; "
                             "start it with `repro stream`")
        return self.stream.swap(dataset, model)

    def publish_generation(self, scenario: Scenario) -> dict:
        """Flip routing to ``scenario`` and retire the old batcher.

        The single entry point the hot-swap path (``repro.stream``)
        calls to make a new generation live. The pooled service
        (``repro.serve.pool``) overrides this with a shared-memory
        publish + generation fence; the in-process version is just
        ``registry.publish`` plus :meth:`retire_batcher`, timed with
        the same keys (``publish_s`` / ``fence_s`` / ``drain_s``) so
        the swap-phase observability reads identically in both tiers.
        """
        tick = time.perf_counter()
        self.registry.publish(scenario)
        published = time.perf_counter()
        self.retire_batcher(scenario.spec.key)
        done = time.perf_counter()
        return {"workers": 0, "acked": 0, "errors": [],
                "publish_s": published - tick, "fence_s": 0.0,
                "drain_s": done - published}

    def retire_batcher(self, key: tuple[str, str]) -> None:
        """Close (drain) the batcher bound to a swapped-out scenario.

        Called by the hot-swap path right after ``registry.publish`` so
        the old generation stops serving promptly instead of on the next
        request. Every request already queued in the old batcher is
        flushed against the old (still fully consistent) model+index
        before it closes; new requests build a fresh batcher bound to
        the new generation on arrival.
        """
        with self._lock:
            batcher = self._batchers.pop(key, None)
        if batcher is not None:
            batcher.close()

    # -- introspection -------------------------------------------------------

    def scenarios(self) -> list[dict]:
        return self.registry.describe()

    def stats(self) -> dict:
        """Per-scenario batcher counters plus service-level settings."""
        with self._lock:
            snapshot = list(self._batchers.items())
        per_scenario = {}
        for (d, m), batcher in snapshot:
            counters = batcher.stats.to_json()
            counters["retrieval"] = \
                batcher.recommender.describe_retrieval()
            hist = self._latency.get((d, m))
            if hist is not None and hist.count:
                counters["latency_ms"] = hist.snapshot().to_json(scale=1e3)
            per_scenario[f"{d}:{m}"] = counters
        with self._lock:
            swap_races = self._swap_race_retries
        payload = {"scenarios": per_scenario,
                   "swap_race_retries": swap_races,
                   # Topology parity with the pooled tier: consumers can
                   # branch on mode instead of sniffing for pool keys.
                   "pool": {"mode": "in-process", "workers": 0},
                   "settings": {"max_batch": self.max_batch,
                                "max_wait_ms": self.max_wait_ms,
                                "cache_size": self.cache_size,
                                "batching": self.batching}}
        if self.stream is not None:
            payload["stream"] = self.stream.stats()
        return payload

    def metrics_text(self) -> str:
        """The Prometheus exposition for ``GET /metrics``.

        The in-process service has exactly one process, so this is the
        global registry's render; the pooled service overrides it with
        a cross-process merge.
        """
        return metrics.render_prometheus()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._close_monitor()       # stop the sampler before its sources
        stream, self.stream = self.stream, None
        if stream is not None:
            stream.close()          # stop fine-tune workers first
        with self._lock:
            self._closed = True
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for batcher in batchers:
            batcher.close()

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
