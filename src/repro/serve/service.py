"""The serving facade: registry routing + per-scenario micro-batchers.

:class:`RecommendationService` is what the HTTP endpoint (and the CLI)
talk to: it owns a :class:`~repro.serve.registry.ModelRegistry`, lazily
attaches a :class:`~repro.serve.batcher.MicroBatcher` to each scenario,
and answers ``recommend(dataset, model, history, k)`` with a
JSON-serializable payload including the request latency.
"""

from __future__ import annotations

import threading
import time

from .batcher import MicroBatcher
from .recommender import Recommendation
from .registry import ModelRegistry, Scenario

__all__ = ["RecommendationService"]


class RecommendationService:
    """Route requests to scenarios, micro-batching each scenario's load."""

    def __init__(self, registry: ModelRegistry, max_batch: int = 32,
                 max_wait_ms: float = 2.0, cache_size: int = 1024,
                 batching: bool = True):
        self.registry = registry
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self.batching = batching
        self._batchers: dict[tuple[str, str], MicroBatcher] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- internals -----------------------------------------------------------

    def _batcher(self, scenario: Scenario) -> MicroBatcher:
        key = scenario.spec.key
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            existing = self._batchers.get(key)
            if (existing is not None
                    and existing.recommender is not scenario.recommender):
                # The registry hot-swapped this scenario (re-add replaces
                # it); retire the batcher bound to the old recommender.
                existing.close()
                existing = None
            if existing is None:
                existing = MicroBatcher(
                    scenario.recommender, max_batch=self.max_batch,
                    max_wait_ms=self.max_wait_ms, cache_size=self.cache_size,
                    start=self.batching)
                self._batchers[key] = existing
            return existing

    # -- request API ---------------------------------------------------------

    def recommend(self, dataset: str, model: str, history,
                  k: int = 10) -> dict:
        """Answer one request; returns the JSON payload for the endpoint."""
        if self._closed:
            raise RuntimeError("service is closed")
        scenario = self.registry.get(dataset, model)
        start = time.perf_counter()
        result: Recommendation = self._batcher(scenario).recommend(
            history, k=k)
        payload = result.to_json()
        payload.update(dataset=dataset, model=model,
                       latency_ms=(time.perf_counter() - start) * 1e3)
        return payload

    def refresh(self, dataset: str, model: str) -> int:
        """Rebuild one scenario's catalogue index; returns the new version."""
        return self.registry.get(dataset, model).recommender.refresh()

    # -- introspection -------------------------------------------------------

    def scenarios(self) -> list[dict]:
        return self.registry.describe()

    def stats(self) -> dict:
        """Per-scenario batcher counters plus service-level settings."""
        with self._lock:
            snapshot = list(self._batchers.items())
        per_scenario = {}
        for (d, m), batcher in snapshot:
            counters = batcher.stats.to_json()
            counters["retrieval"] = \
                batcher.recommender.describe_retrieval()
            per_scenario[f"{d}:{m}"] = counters
        return {"scenarios": per_scenario,
                "settings": {"max_batch": self.max_batch,
                             "max_wait_ms": self.max_wait_ms,
                             "cache_size": self.cache_size,
                             "batching": self.batching}}

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for batcher in batchers:
            batcher.close()

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
