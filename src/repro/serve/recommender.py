"""The online recommendation session API: ``recommend(history, k)``.

Wraps one (model, dataset) pair behind a request-shaped interface:
score the user's history against the catalogue index under ``no_grad``,
mask out the padding item and (optionally) everything the user has
already seen, and return the top-k via the argpartition-backed
:func:`repro.nn.ops.topk` instead of a full-catalogue sort.

With ``retrieval="ivf"`` or ``"lsh"`` the top-k is routed through an
approximate index (:mod:`repro.serve.ann`): the user's query vector
shortlists candidates, only the shortlist is scored exactly, and the
answer is re-ranked genuine model scores. The recommender falls back to
exact full-catalogue scoring whenever approximate recall would be
unsafe — tiny catalogues, an ANN structure stale relative to the
catalogue version, models outside the scoring-kernel protocol, or a
``k`` so large the shortlist would approach the whole catalogue — and
counts every routing decision in :attr:`retrieval_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..nn.ops import topk
from ..obs import metrics, trace
from .ann import AnnIndex, make_ann_index
from .index import CatalogIndex
from .scoring import (encode_queries, model_max_len, score_batch,
                      supports_kernel)

__all__ = ["Recommendation", "Recommender", "RetrievalStats",
           "DEFAULT_MIN_ANN_ITEMS"]

# Per-stage latency histograms, recorded once per *batch* (a handful of
# perf_counter calls amortized over the whole flush — the per-request
# cost budget lives in benchmarks/test_obs_perf.py). A sampled request
# additionally gets the same boundaries stamped into its trace context
# as spans, at zero extra timing cost.
_STAGES = ("encode", "shortlist", "rerank", "topk", "score", "mask")
_STAGE_HIST = {name: metrics.histogram(
    "repro_serve_stage_seconds",
    "per-batch serving stage latency", labels={"stage": name})
    for name in _STAGES}


def _stage(name: str, start: float, end: float,
           ctx: trace.TraceContext | None) -> None:
    """Record one stage boundary: histogram always, span when sampled."""
    _STAGE_HIST[name].observe(end - start)
    if ctx is not None:
        ctx.add_span(name, start, end)

#: Below this catalogue size exact scoring is both safer and faster than
#: any shortlist (one small matmul beats candidate bookkeeping).
DEFAULT_MIN_ANN_ITEMS = 1024


@dataclass
class Recommendation:
    """Top-k answer for one request.

    ``items`` are catalogue item ids best-first; ``scores`` the matching
    model scores. When exclusion leaves fewer than ``k`` candidates the
    answer is simply shorter than ``k`` — excluded/padding slots are
    never shipped. ``index_version`` identifies the catalogue snapshot
    that produced the answer; ``cached`` is set by the micro-batcher
    when the answer came from its LRU.
    """

    items: np.ndarray
    scores: np.ndarray
    index_version: int
    cached: bool = field(default=False, compare=False)

    def to_json(self) -> dict:
        """JSON-serializable form used by the HTTP endpoint."""
        return {"items": [int(i) for i in self.items],
                "scores": [float(s) for s in self.scores],
                "index_version": self.index_version,
                "cached": self.cached}


@dataclass
class RetrievalStats:
    """How batches were routed: approximate, exact, or exact-by-fallback."""

    ann_batches: int = 0
    exact_batches: int = 0
    fallbacks: dict = field(default_factory=dict)

    def record(self, used_ann: bool, reason: str | None) -> None:
        if used_ann:
            self.ann_batches += 1
            metrics.counter("repro_serve_batches_total",
                            "scored batches by retrieval path",
                            labels={"path": "ann"}).inc()
        else:
            self.exact_batches += 1
            metrics.counter("repro_serve_batches_total",
                            "scored batches by retrieval path",
                            labels={"path": "exact"}).inc()
            if reason is not None:
                self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
                metrics.counter("repro_serve_ann_fallbacks_total",
                                "exact-scoring fallbacks by reason",
                                labels={"reason": reason}).inc()

    def to_json(self) -> dict:
        return {"ann_batches": self.ann_batches,
                "exact_batches": self.exact_batches,
                "fallbacks": dict(self.fallbacks)}


class Recommender:
    """Session-style top-k retrieval for one (dataset, model) scenario.

    Kernel-capable models score through a :class:`CatalogIndex` (built
    lazily, shared, versioned); heuristic models without the catalogue
    protocol fall back to their own ``score_histories``. The model is
    put in eval mode once at construction so the request path never
    touches training state.

    ``retrieval`` selects the top-k backend: ``"exact"`` (default) or an
    ANN kind from :data:`repro.serve.ann.ANN_KINDS`; ``ann_params`` are
    forwarded to the backend constructor (``nlist``, ``nprobe``,
    ``bits``, ...). ``min_ann_items`` is the catalogue-size floor below
    which the ANN path is never taken.
    """

    def __init__(self, model, dataset, index: CatalogIndex | None = None,
                 exclude_seen: bool = True, index_dtype=None,
                 retrieval: str = "exact", ann_params: dict | None = None,
                 min_ann_items: int = DEFAULT_MIN_ANN_ITEMS):
        self.model = model
        self.dataset = dataset
        self.exclude_seen = exclude_seen
        # Normalized so routing's kind comparison can never disagree
        # with the case-insensitive make_ann_index factory.
        self.retrieval = (retrieval or "exact").lower()
        self.min_ann_items = min_ann_items
        self.retrieval_stats = RetrievalStats()
        if hasattr(model, "eval"):
            model.eval()
        if index is None and hasattr(model, "encode_catalog"):
            index = CatalogIndex(model, dataset, dtype=index_dtype)
        self.index = index
        self._use_kernel = supports_kernel(model)
        self._max_len = model_max_len(model)
        # Only kernel-capable indexed models can form the query vectors
        # ANN retrieval shortlists with; for anything else the structure
        # would never be consulted, so don't pay its build cost. A
        # structure already attached to a shared index is reused only
        # when it matches the configured backend and the caller supplied
        # no explicit knobs — otherwise this recommender's configuration
        # wins and the index is re-attached (stats must never report one
        # backend while routing through another).
        if index is not None and self._use_kernel:
            wanted = make_ann_index(retrieval, **(ann_params or {}))
            if wanted is not None and (index.ann is None or ann_params
                                       or index.ann.kind != wanted.kind):
                index.attach_ann(wanted)

    @property
    def ann(self) -> AnnIndex | None:
        """The attached approximate-retrieval structure, if any."""
        return None if self.index is None else self.index.ann

    @property
    def index_version(self) -> int:
        """Version of the catalogue snapshot (0 for fallback models)."""
        return 0 if self.index is None else self.index.version

    @property
    def index_stale(self) -> bool:
        """True when the next request will rebuild the index."""
        return self.index is not None and self.index.stale

    def refresh(self) -> int:
        """Rebuild the catalogue index (no-op for fallback models)."""
        return 0 if self.index is None else self.index.refresh()

    def describe_retrieval(self) -> dict:
        """Backend + routing counters for ``/scenarios`` and ``/stats``."""
        out = {"retrieval": self.retrieval,
               "min_ann_items": self.min_ann_items,
               **self.retrieval_stats.to_json()}
        if self.ann is not None:
            out["ann"] = self.ann.describe()
        return out

    # -- scoring -------------------------------------------------------------

    def score(self, histories: list[np.ndarray]) -> np.ndarray:
        """Raw full-catalogue scores ``(N, num_items+1)`` for histories."""
        return self._score_snapshot(histories)[0]

    def _score_snapshot(self,
                        histories: list[np.ndarray]) -> tuple[np.ndarray, int]:
        """Score and return the index version of the matrix actually used."""
        if self.index is None:
            return self.model.score_histories(self.dataset, histories), 0
        matrix, version = self.index.snapshot()
        if self._use_kernel:
            return score_batch(self.model, matrix, histories,
                               max_seq_len=self._max_len), version
        # Custom inference (e.g. BERT4Rec's mask-token query) keeps its
        # own scoring but still reuses the precomputed index.
        return self.model.score_histories(self.dataset, histories,
                                          catalog=matrix), version

    def _mask_scores(self, scores: np.ndarray,
                     histories: list[np.ndarray],
                     owned: bool) -> np.ndarray:
        # The kernel path hands us a freshly allocated matrix we can mask
        # in place — it is the largest per-request buffer, so avoid a
        # second copy. Fallback models may return shared state: copy.
        if not owned:
            scores = np.array(scores, copy=True)
        scores[:, 0] = -np.inf                      # padding pseudo-item
        if self.exclude_seen:
            rows = np.repeat(np.arange(len(histories)),
                             [len(h) for h in histories])
            cols = np.concatenate([np.asarray(h) for h in histories])
            scores[rows, cols] = -np.inf
        return scores

    # -- retrieval routing ---------------------------------------------------

    def _retrieval_plan(self, histories: list[np.ndarray],
                        k: int) -> tuple[bool, str | None]:
        """Decide ANN vs exact for one batch: ``(use_ann, fallback_reason)``.

        The reason is ``None`` when exact scoring was *chosen* (backend
        is ``"exact"``) rather than fallen back to.
        """
        if self.retrieval == "exact":
            return False, None
        if self.index is None or not self._use_kernel:
            return False, "no_kernel"
        ann = self.index.ann
        if ann is None:                  # backend resolved to exact/none
            return False, None
        if ann.kind != self.retrieval:
            # A sibling recommender re-attached its own backend to the
            # shared index; routing through it would make this
            # recommender's stats a lie, so score exactly and say why.
            return False, "backend_mismatch"
        num_items = self.index.num_items
        if num_items < self.min_ann_items:
            return False, "small_catalog"
        needed = k + (max(len(h) for h in histories)
                      if self.exclude_seen else 0)
        if needed >= num_items // 2:
            return False, "k_near_catalog"
        return True, None

    def _recommend_ann(self, histories: list[np.ndarray],
                       k: int) -> tuple[list[Recommendation] | None,
                                        str | None]:
        """The approximate path; ``(None, reason)`` means fall back.

        One query-encoder pass covers the batch; each row then scores
        only its shortlist, so per-row work is ``O(|shortlist|·d)``
        instead of ``O(n·d)``. Candidates arrive id-ascending from the
        index, so the stable top-k tie-break (lower item id wins) is the
        same one the exact path applies. The backend kind is re-checked
        against the snapshot actually taken: a sibling recommender can
        swap the shared index's structure between the plan check and
        here, and routing through it would falsify this recommender's
        stats.
        """
        matrix, version, ann = self.index.snapshot_retrieval()
        if ann is None:
            return None, "stale_index"
        if ann.index.kind != self.retrieval:
            return None, "backend_mismatch"
        ctx = trace.current()
        tick = perf_counter()
        queries = encode_queries(self.model, matrix, histories,
                                 max_seq_len=self._max_len)
        _stage("encode", tick, perf_counter(), ctx)
        out = []
        t_short = t_rerank = t_topk = 0.0
        for query, history in zip(queries, histories):
            needed = k + (len(history) if self.exclude_seen else 0)
            t0 = perf_counter()
            candidates = ann.candidates(query, needed)
            t1 = perf_counter()
            scores = matrix[candidates] @ query
            if self.exclude_seen:
                keep = ~np.isin(candidates, history)
                candidates, scores = candidates[keep], scores[keep]
            t2 = perf_counter()
            values, order = topk(scores, min(k, len(scores)) or 1)
            t3 = perf_counter()
            t_short += t1 - t0
            t_rerank += t2 - t1
            t_topk += t3 - t2
            items = candidates[order]
            items.setflags(write=False)
            values.setflags(write=False)
            out.append(Recommendation(items=items, scores=values,
                                      index_version=version))
        # The per-row stage times interleave; report them as contiguous
        # synthetic intervals ending at the batch end — durations (what
        # histograms and span sums consume) are exact, only the span
        # offsets are condensed.
        end = perf_counter()
        _stage("shortlist", end - t_short - t_rerank - t_topk,
               end - t_rerank - t_topk, ctx)
        _stage("rerank", end - t_rerank - t_topk, end - t_topk, ctx)
        _stage("topk", end - t_topk, end, ctx)
        return out, None

    # -- request API ---------------------------------------------------------

    def recommend(self, history, k: int = 10) -> Recommendation:
        """Top-k next items for one user history."""
        return self.recommend_batch([history], k=k)[0]

    def recommend_batch(self, histories, k: int = 10) -> list[Recommendation]:
        """Top-k for many histories in one batched scoring pass."""
        histories = [np.asarray(h, dtype=np.int64) for h in histories]
        for h in histories:
            if h.size == 0:
                raise ValueError("history must contain at least one item")
            if h.min() < 1 or h.max() > self.dataset.num_items:
                raise ValueError(
                    f"history items must be in [1, {self.dataset.num_items}]")
        use_ann, reason = self._retrieval_plan(histories, k)
        if use_ann:
            results, reason = self._recommend_ann(histories, k)
            if results is not None:
                self.retrieval_stats.record(True, None)
                return results
        self.retrieval_stats.record(False, reason)
        ctx = trace.current()
        tick = perf_counter()
        raw, version = self._score_snapshot(histories)
        _stage("score", tick, (tick := perf_counter()), ctx)
        scores = self._mask_scores(raw, histories,
                                   owned=(self.index is not None
                                          and self._use_kernel))
        _stage("mask", tick, (tick := perf_counter()), ctx)
        values, indices = topk(scores, k)
        _stage("topk", tick, perf_counter(), ctx)
        out = []
        for row in range(len(histories)):
            keep = np.isfinite(values[row])  # drop excluded/padding slots
            items, top = indices[row][keep], values[row][keep]
            # Served results are shared via the LRU cache; freeze them so
            # one caller's mutation cannot corrupt another's answer.
            items.setflags(write=False)
            top.setflags(write=False)
            out.append(Recommendation(items=items, scores=top,
                                      index_version=version))
        return out
