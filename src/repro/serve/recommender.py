"""The online recommendation session API: ``recommend(history, k)``.

Wraps one (model, dataset) pair behind a request-shaped interface:
score the user's history against the catalogue index under ``no_grad``,
mask out the padding item and (optionally) everything the user has
already seen, and return the top-k via the argpartition-backed
:func:`repro.nn.ops.topk` instead of a full-catalogue sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.ops import topk
from .index import CatalogIndex
from .scoring import model_max_len, score_batch, supports_kernel

__all__ = ["Recommendation", "Recommender"]


@dataclass
class Recommendation:
    """Top-k answer for one request.

    ``items`` are catalogue item ids best-first; ``scores`` the matching
    model scores. When exclusion leaves fewer than ``k`` candidates the
    answer is simply shorter than ``k`` — excluded/padding slots are
    never shipped. ``index_version`` identifies the catalogue snapshot
    that produced the answer; ``cached`` is set by the micro-batcher
    when the answer came from its LRU.
    """

    items: np.ndarray
    scores: np.ndarray
    index_version: int
    cached: bool = field(default=False, compare=False)

    def to_json(self) -> dict:
        """JSON-serializable form used by the HTTP endpoint."""
        return {"items": [int(i) for i in self.items],
                "scores": [float(s) for s in self.scores],
                "index_version": self.index_version,
                "cached": self.cached}


class Recommender:
    """Session-style top-k retrieval for one (model, dataset) scenario.

    Kernel-capable models score through a :class:`CatalogIndex` (built
    lazily, shared, versioned); heuristic models without the catalogue
    protocol fall back to their own ``score_histories``. The model is
    put in eval mode once at construction so the request path never
    touches training state.
    """

    def __init__(self, model, dataset, index: CatalogIndex | None = None,
                 exclude_seen: bool = True, index_dtype=None):
        self.model = model
        self.dataset = dataset
        self.exclude_seen = exclude_seen
        if hasattr(model, "eval"):
            model.eval()
        if index is None and hasattr(model, "encode_catalog"):
            index = CatalogIndex(model, dataset, dtype=index_dtype)
        self.index = index
        self._use_kernel = supports_kernel(model)
        self._max_len = model_max_len(model)

    @property
    def index_version(self) -> int:
        """Version of the catalogue snapshot (0 for fallback models)."""
        return 0 if self.index is None else self.index.version

    @property
    def index_stale(self) -> bool:
        """True when the next request will rebuild the index."""
        return self.index is not None and self.index.stale

    def refresh(self) -> int:
        """Rebuild the catalogue index (no-op for fallback models)."""
        return 0 if self.index is None else self.index.refresh()

    # -- scoring -------------------------------------------------------------

    def score(self, histories: list[np.ndarray]) -> np.ndarray:
        """Raw full-catalogue scores ``(N, num_items+1)`` for histories."""
        return self._score_snapshot(histories)[0]

    def _score_snapshot(self,
                        histories: list[np.ndarray]) -> tuple[np.ndarray, int]:
        """Score and return the index version of the matrix actually used."""
        if self.index is None:
            return self.model.score_histories(self.dataset, histories), 0
        matrix, version = self.index.snapshot()
        if self._use_kernel:
            return score_batch(self.model, matrix, histories,
                               max_seq_len=self._max_len), version
        # Custom inference (e.g. BERT4Rec's mask-token query) keeps its
        # own scoring but still reuses the precomputed index.
        return self.model.score_histories(self.dataset, histories,
                                          catalog=matrix), version

    def _mask_scores(self, scores: np.ndarray,
                     histories: list[np.ndarray],
                     owned: bool) -> np.ndarray:
        # The kernel path hands us a freshly allocated matrix we can mask
        # in place — it is the largest per-request buffer, so avoid a
        # second copy. Fallback models may return shared state: copy.
        if not owned:
            scores = np.array(scores, copy=True)
        scores[:, 0] = -np.inf                      # padding pseudo-item
        if self.exclude_seen:
            rows = np.repeat(np.arange(len(histories)),
                             [len(h) for h in histories])
            cols = np.concatenate([np.asarray(h) for h in histories])
            scores[rows, cols] = -np.inf
        return scores

    # -- request API ---------------------------------------------------------

    def recommend(self, history, k: int = 10) -> Recommendation:
        """Top-k next items for one user history."""
        return self.recommend_batch([history], k=k)[0]

    def recommend_batch(self, histories, k: int = 10) -> list[Recommendation]:
        """Top-k for many histories in one batched scoring pass."""
        histories = [np.asarray(h, dtype=np.int64) for h in histories]
        for h in histories:
            if h.size == 0:
                raise ValueError("history must contain at least one item")
            if h.min() < 1 or h.max() > self.dataset.num_items:
                raise ValueError(
                    f"history items must be in [1, {self.dataset.num_items}]")
        raw, version = self._score_snapshot(histories)
        scores = self._mask_scores(raw, histories,
                                   owned=(self.index is not None
                                          and self._use_kernel))
        values, indices = topk(scores, k)
        out = []
        for row in range(len(histories)):
            keep = np.isfinite(values[row])  # drop excluded/padding slots
            items, top = indices[row][keep], values[row][keep]
            # Served results are shared via the LRU cache; freeze them so
            # one caller's mutation cannot corrupt another's answer.
            items.setflags(write=False)
            top.setflags(write=False)
            out.append(Recommendation(items=items, scores=top,
                                      index_version=version))
        return out
