"""Multi-process serving tier: shared-memory catalogues + worker pool.

One python process is the QPS ceiling: the fused scoring kernels
saturate a core while the GIL serializes everything around them. This
module scales ``/recommend`` across cores without giving up the
old-or-new-ranks-only hot-swap contract (PR 5/6):

* :class:`SharedCatalogStore` owns ``multiprocessing.shared_memory``
  segments. Each segment carries a tiny JSON layout header followed by
  64-byte-aligned arrays — the catalogue matrix of one generation,
  plus (for full swaps) the model's state dict — so workers map them
  as zero-copy read-only ``np.ndarray`` views. The parent creates and
  unlinks; workers only attach.
* :class:`WorkerPool` forks N worker processes (fork, not spawn: the
  registry's datasets and models transfer by copy-on-write page, never
  by pickle) and dispatches requests over per-worker pipes. Each worker
  runs its own :class:`~repro.serve.batcher.MicroBatcher`, so batching
  still amortizes GEMMs inside every process.
* Hot swaps run through a **generation fence**: the parent publishes
  the new generation's segment, sends a ``swap`` control message down
  every worker pipe, and waits for every live worker to ack before the
  old segment is unlinked. Pipe FIFO ordering is the correctness
  argument — every request a worker received before the ``swap``
  message is drained by the retiring batcher (old generation), every
  request after it lands on the new one. No request is dropped, and no
  response ever mixes generations.
* :class:`PooledRecommendationService` is a drop-in for
  :class:`~repro.serve.service.RecommendationService`: the HTTP front,
  the CLI and the streaming manager talk to the same duck surface.

Requires POSIX ``fork`` and scenarios whose models expose
``encode_catalog`` (there is no matrix to share otherwise). Workers
must be forked *before* any thread the parent will rely on (HTTP
server, fine-tune workers) — the CLI and benches order construction
accordingly.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import secrets
import struct
import threading
import time
from concurrent.futures import Future
from multiprocessing import shared_memory

import numpy as np

from ..obs import metrics
from .batcher import MicroBatcher
from .index import FrozenCatalogIndex
from .registry import ModelRegistry, Scenario
from .service import SelfMonitoring

__all__ = ["PoolError", "WorkerDied", "SharedCatalogStore", "WorkerPool",
           "PooledRecommendationService"]


class PoolError(RuntimeError):
    """The worker pool cannot serve (no workers, bad scenario, ...)."""


class WorkerDied(PoolError):
    """A request or control exchange was lost to a worker process death."""


def _fork_context():
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise PoolError("the multi-process serving tier requires the "
                        "'fork' start method (POSIX only)") from exc


# -- shared-memory segments ---------------------------------------------------

_ALIGN = 64
_HEADER_LEN = struct.Struct("<Q")
_TAG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


class SharedCatalogStore:
    """Create, name and unlink the shared segments of one serving parent.

    Segment layout: an 8-byte little-endian header length, a JSON header
    ``{"arrays": [{"name", "dtype", "shape", "offset", "nbytes"}, ...]}``
    with offsets relative to the (aligned) end of the header, then the
    array payloads. Readers recompute the data start from the header
    length, so the header needs no self-referential offsets.

    The parent process owns every segment's lifetime: :meth:`publish`
    creates, :meth:`unlink` (per generation) and :meth:`close` (on
    shutdown) remove the ``/dev/shm`` names. Workers :meth:`attach`
    read-only and immediately unregister from the resource tracker —
    on this python version attachers register too, and a worker exit
    would otherwise unlink a segment the parent still serves from.
    """

    def __init__(self, prefix: str | None = None):
        self.prefix = prefix or f"repro-{os.getpid()}-{secrets.token_hex(3)}"
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._seq = itertools.count(1)
        self._lock = threading.Lock()

    def publish(self, tag: str, arrays: dict[str, np.ndarray]) -> str:
        """Write ``arrays`` into a fresh segment; returns its name."""
        clean: list[tuple[str, np.ndarray]] = [
            (name, np.ascontiguousarray(arr)) for name, arr in arrays.items()]
        entries, cursor = [], 0
        for name, arr in clean:
            cursor = _aligned(cursor)
            entries.append({"name": name, "dtype": arr.dtype.str,
                            "shape": list(arr.shape), "offset": cursor,
                            "nbytes": int(arr.nbytes)})
            cursor += arr.nbytes
        header = json.dumps({"arrays": entries}).encode()
        data_start = _aligned(_HEADER_LEN.size + len(header))
        total = max(data_start + cursor, 1)
        short_tag = _TAG_RE.sub("-", tag)[:48]
        name = f"{self.prefix}-{next(self._seq)}-{short_tag}"
        segment = shared_memory.SharedMemory(name=name, create=True,
                                             size=total)
        segment.buf[:_HEADER_LEN.size] = _HEADER_LEN.pack(len(header))
        segment.buf[_HEADER_LEN.size:_HEADER_LEN.size + len(header)] = header
        for (_, arr), entry in zip(clean, entries):
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf,
                              offset=data_start + entry["offset"])
            view[...] = arr
            del view               # release the buffer export before close
        with self._lock:
            self._segments[name] = segment
        return name

    @staticmethod
    def attach(name: str) -> tuple[shared_memory.SharedMemory,
                                   dict[str, np.ndarray]]:
        """Map a segment read-only; returns the handle and its arrays.

        Workers are forked, so they share the parent's resource_tracker
        process: the attach-side ``register`` this SharedMemory() call
        performs lands in the tracker's set-based cache where the
        creator's entry already sits — a no-op. The creator's
        ``unlink()`` is the one balanced unregister; do NOT unregister
        here or the shared cache loses the entry early and the real
        unlink trips a KeyError inside the tracker.
        """
        segment = shared_memory.SharedMemory(name=name)
        (header_len,) = _HEADER_LEN.unpack_from(segment.buf, 0)
        raw = bytes(segment.buf[_HEADER_LEN.size:_HEADER_LEN.size
                                + header_len])
        entries = json.loads(raw.decode())["arrays"]
        data_start = _aligned(_HEADER_LEN.size + header_len)
        views: dict[str, np.ndarray] = {}
        for entry in entries:
            view = np.ndarray(tuple(entry["shape"]),
                              dtype=np.dtype(entry["dtype"]),
                              buffer=segment.buf,
                              offset=data_start + entry["offset"])
            view.flags.writeable = False
            views[entry["name"]] = view
        return segment, views

    def unlink(self, name: str) -> None:
        """Remove one segment's ``/dev/shm`` name (worker maps persist)."""
        with self._lock:
            segment = self._segments.pop(name, None)
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:  # pragma: no cover - parent holds no views
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def segments(self) -> list[str]:
        with self._lock:
            return list(self._segments)

    def close(self) -> None:
        for name in self.segments():
            self.unlink(name)


# -- worker-process side ------------------------------------------------------

class _DatasetView:
    """A dataset proxy whose ``num_items`` tracks the served generation.

    Workers never see the parent's grown ``GrowableDataset`` snapshots —
    only the catalogue matrix travels through shared memory — but the
    recommender validates history ids against ``dataset.num_items``.
    This proxy pins the generation's item count over the (read-only)
    base dataset the worker inherited at fork.
    """

    __slots__ = ("_base", "_num_items")

    def __init__(self, base, num_items: int):
        self._base = base
        self._num_items = int(num_items)

    @property
    def num_items(self) -> int:
        return self._num_items

    def __getattr__(self, name):
        return getattr(self._base, name)


class _WorkerScenario:
    """One scenario's serving state inside a worker process."""

    __slots__ = ("spec", "model", "base_dataset", "segment", "recommender",
                 "batcher", "generation", "version")

    def __init__(self, spec, model, base_dataset, segment, recommender,
                 batcher, generation, version):
        self.spec = spec
        self.model = model
        self.base_dataset = base_dataset
        self.segment = segment
        self.recommender = recommender
        self.batcher = batcher
        self.generation = generation
        self.version = version

    def release(self) -> None:
        """Drop every reference into the segment, then unmap it."""
        self.recommender = None
        self.batcher = None
        segment, self.segment = self.segment, None
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - lingering view
                # Something still borrows the buffer; the parent already
                # unlinked the name, so the pages die with the process.
                pass


def _adopt(registry: ModelRegistry, spec, model, base_dataset,
           segment_name: str, version: int, num_items: int, generation: int,
           model_changed: bool, settings: dict) -> _WorkerScenario:
    """Attach one generation's segment and build the serving stack on it."""
    segment, views = SharedCatalogStore.attach(segment_name)
    weights = {name[2:]: array for name, array in views.items()
               if name.startswith("w:")}
    if model_changed and weights:
        model.load_state_dict(weights)      # copies out of the segment
    dataset = _DatasetView(base_dataset, num_items)
    index = FrozenCatalogIndex(views["catalog"], version=version,
                               num_items=num_items)
    scenario = registry.build_scenario(spec, dataset, model, index=index)
    batcher = MicroBatcher(scenario.recommender,
                           max_batch=settings["max_batch"],
                           max_wait_ms=settings["max_wait_ms"],
                           cache_size=settings["cache_size"],
                           start=settings["batching"],
                           metrics_label=f"{spec.key[0]}:{spec.key[1]}")
    return _WorkerScenario(spec=spec, model=model, base_dataset=base_dataset,
                           segment=segment, recommender=scenario.recommender,
                           batcher=batcher, generation=generation,
                           version=version)


def _flip(registry: ModelRegistry, state: _WorkerScenario, segment_name: str,
          version: int, num_items: int, generation: int, model_changed: bool,
          settings: dict) -> _WorkerScenario:
    """Swap one worker scenario to a new generation (old-or-new contract).

    Closing the old batcher *first* drains every request received before
    the ``swap`` control message against the old generation; requests
    received after it build against the new one. Both sides of the fence
    therefore serve whole-generation ranks only.
    """
    state.batcher.close()
    fresh = _adopt(registry, state.spec, state.model, state.base_dataset,
                   segment_name, version, num_items, generation,
                   model_changed, settings)
    state.release()
    return fresh


def _worker_stats(states: dict) -> dict:
    out: dict = {"pid": os.getpid(), "scenarios": {}}
    for (dataset, model), state in states.items():
        counters = state.batcher.stats.to_json()
        counters.update(
            generation=state.generation,
            index_version=state.version,
            queue_depth=state.batcher.queue_depth,
            retrieval=state.recommender.describe_retrieval())
        out["scenarios"][f"{dataset}:{model}"] = counters
    return out


def _worker_main(worker_id: int, conn, parent_conn, registry: ModelRegistry,
                 boot: dict, settings: dict) -> None:
    """Entry point of one forked worker process."""
    try:
        parent_conn.close()        # our copy of the parent's pipe end
    except Exception:  # pragma: no cover - already closed
        pass
    # The fork copied the parent's metric shards; zero them so the
    # cross-process merge never double-counts pre-fork history.
    metrics.REGISTRY.reset()
    states: dict[tuple[str, str], _WorkerScenario] = {}
    for key, info in boot.items():
        scenario = registry.get(*key)
        states[key] = _adopt(registry, scenario.spec, scenario.model,
                             scenario.dataset, info["segment"],
                             info["version"], info["num_items"],
                             info["generation"], model_changed=False,
                             settings=settings)
    send_lock = threading.Lock()

    def reply(message) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass

    def deliver(req_id: int, future: Future) -> None:
        error = future.exception()
        if error is not None:
            reply(("err", req_id, type(error).__name__, str(error)))
        else:
            reply(("res", req_id, future.result().to_json()))

    running = True
    while running:
        try:
            message = conn.recv()
        except (EOFError, OSError):        # parent died or closed us out
            break
        kind = message[0]
        if kind == "req":
            _, req_id, key, history, k = message
            state = states.get(tuple(key))
            if state is None:
                reply(("err", req_id, "KeyError",
                       f"no scenario {key[0]}:{key[1]} in worker"))
                continue
            try:
                future = state.batcher.submit(history, k=k)
            except Exception as exc:
                reply(("err", req_id, type(exc).__name__, str(exc)))
                continue
            future.add_done_callback(
                lambda f, rid=req_id: deliver(rid, f))
        elif kind == "swap":
            (_, token, key, generation, segment_name, version, num_items,
             model_changed) = message
            error = None
            try:
                states[tuple(key)] = _flip(
                    registry, states[tuple(key)], segment_name, version,
                    num_items, generation, model_changed, settings)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
            reply(("ack", token, error))
        elif kind == "stats":
            reply(("stats", message[1], _worker_stats(states)))
        elif kind == "metrics":
            reply(("metrics", message[1], metrics.render_prometheus()))
        elif kind == "stop":
            for state in states.values():
                state.batcher.close()      # drain everything still queued
            reply(("bye", message[1]))
            running = False
    for state in states.values():
        try:
            state.batcher.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        state.release()
    try:
        conn.close()
    except Exception:  # pragma: no cover - teardown best effort
        pass


# -- parent side --------------------------------------------------------------

_EXCEPTION_TYPES = {"ValueError": ValueError, "TypeError": TypeError,
                    "KeyError": KeyError, "RuntimeError": RuntimeError}


def _remote_exception(type_name: str, message: str) -> Exception:
    cls = _EXCEPTION_TYPES.get(type_name)
    if cls is None:
        return PoolError(f"{type_name}: {message}")
    return cls(message)


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, worker_id: int, process, conn):
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()       # guards pending/control/alive
        self.pending: dict[int, Future] = {}
        self.control: dict[str, Future] = {}
        self.alive = True
        self.requests = 0
        self.reader: threading.Thread | None = None

    def inflight(self) -> int:
        with self.lock:
            return len(self.pending)


class WorkerPool:
    """Fork N serving processes and dispatch requests/fences over pipes."""

    def __init__(self, registry: ModelRegistry, workers: int = 2,
                 max_batch: int = 32, max_wait_ms: float = 2.0,
                 cache_size: int = 1024, batching: bool = True,
                 fence_timeout_s: float = 60.0):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if len(registry) == 0:
            raise PoolError("cannot start a worker pool over an empty "
                            "registry")
        context = _fork_context()
        self.registry = registry
        self.fence_timeout_s = fence_timeout_s
        self._settings = {"max_batch": max_batch, "max_wait_ms": max_wait_ms,
                          "cache_size": cache_size, "batching": batching}
        self._store = SharedCatalogStore()
        self._seq = itertools.count(1)
        self._rr = 0
        self._rr_lock = threading.Lock()
        self._fence_lock = threading.Lock()  # one fence at a time
        self._fence_state: dict = {"state": "idle"}
        self._generation: dict[tuple[str, str], int] = {}
        self._segment: dict[tuple[str, str], str] = {}
        self._closed = False
        boot: dict[tuple[str, str], dict] = {}
        for scenario in registry:
            index = scenario.recommender.index
            if index is None:
                raise PoolError(
                    f"scenario {scenario.spec.dataset}:{scenario.spec.model} "
                    "has no catalogue index; the worker pool can only serve "
                    "indexed models (encode_catalog protocol)")
            matrix, version = index.snapshot()
            key = scenario.spec.key
            name = self._store.publish(f"g1-{key[0]}-{key[1]}",
                                       {"catalog": matrix})
            self._generation[key] = 1
            self._segment[key] = name
            boot[key] = {"segment": name, "version": version,
                         "num_items": scenario.dataset.num_items,
                         "generation": 1}
        self._m_fence = metrics.histogram(
            "repro_pool_fence_seconds",
            "generation-fence wall time (publish ack wait)")
        self._m_publishes = metrics.counter(
            "repro_pool_publishes_total",
            "generations published through the pool fence")
        self._m_retries = metrics.counter(
            "repro_pool_retries_total",
            "requests retried on another worker after a worker death")
        self._m_flip_errors = metrics.counter(
            "repro_pool_flip_errors_total",
            "workers that failed to adopt a published generation")
        metrics.gauge(
            "repro_pool_workers_alive",
            "live worker processes in the serving pool").set_function(
                lambda: sum(h.alive for h in self._workers))
        metrics.gauge(
            "repro_pool_workers_total",
            "worker processes the pool was started with").set_function(
                lambda: len(self._workers))
        self._m_deaths = metrics.counter(
            "repro_pool_worker_deaths_total",
            "pool worker processes that died unexpectedly "
            "(clean shutdown is not counted)")
        self._workers: list[_WorkerHandle] = []
        for worker_id in range(workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(worker_id, child_conn, parent_conn, registry, boot,
                      self._settings),
                name=f"repro-pool-{worker_id}", daemon=True)
            process.start()
            child_conn.close()             # parent keeps only its own end
            handle = _WorkerHandle(worker_id, process, parent_conn)
            handle.reader = threading.Thread(
                target=self._read_loop, args=(handle,),
                name=f"repro-pool-reader-{worker_id}", daemon=True)
            handle.reader.start()
            self._workers.append(handle)

    # -- properties ----------------------------------------------------------

    @property
    def shm_prefix(self) -> str:
        return self._store.prefix

    @property
    def size(self) -> int:
        return len(self._workers)

    def alive(self) -> int:
        return sum(handle.alive for handle in self._workers)

    def generations(self) -> dict[str, int]:
        return {f"{d}:{m}": gen for (d, m), gen in self._generation.items()}

    # -- reader threads ------------------------------------------------------

    def _read_loop(self, handle: _WorkerHandle) -> None:
        conn, process = handle.conn, handle.process
        while True:
            try:
                # poll+is_alive instead of a blocking recv: a sibling
                # worker forked later inherits this pipe's write end, so
                # EOF alone cannot be trusted to signal this worker's
                # death.
                if conn.poll(0.2):
                    self._dispatch(handle, conn.recv())
                elif not process.is_alive() and not conn.poll(0):
                    break
            except (EOFError, OSError):
                break
        self._mark_dead(handle)

    def _dispatch(self, handle: _WorkerHandle, message) -> None:
        kind = message[0]
        if kind in ("res", "err"):
            with handle.lock:
                future = handle.pending.pop(message[1], None)
            if future is None:             # pragma: no cover - late reply
                return
            if kind == "res":
                future.set_result(message[2])
            else:
                future.set_exception(_remote_exception(message[2],
                                                       message[3]))
        else:                              # ack / stats / metrics / bye
            with handle.lock:
                future = handle.control.pop(message[1], None)
            if future is not None:
                future.set_result(message[2] if len(message) > 2 else None)

    def _mark_dead(self, handle: _WorkerHandle) -> None:
        with handle.lock:
            if not handle.alive:
                return
            handle.alive = False
            pending = list(handle.pending.values())
            handle.pending.clear()
            control = list(handle.control.values())
            handle.control.clear()
        if not self._closed:
            # An unexpected death is a health event (the increase rule
            # `pool_worker_death` watches this counter); the mass
            # _mark_dead sweep inside close() is not.
            self._m_deaths.inc()
        error = WorkerDied(f"pool worker {handle.id} died")
        for future in pending + control:
            if not future.done():
                future.set_exception(error)

    # -- request path --------------------------------------------------------

    def _pick(self) -> _WorkerHandle | None:
        with self._rr_lock:
            count = len(self._workers)
            for _ in range(count):
                handle = self._workers[self._rr % count]
                self._rr += 1
                if handle.alive:
                    return handle
        return None

    def recommend(self, key: tuple[str, str], history: list, k: int,
                  timeout: float = 30.0) -> dict:
        """Dispatch one request; returns the worker's JSON payload.

        Requests are read-only and idempotent, so a request lost to a
        worker death is transparently retried on another worker.
        """
        attempts = max(2, len(self._workers) + 1)
        last_error: Exception | None = None
        for _ in range(attempts):
            handle = self._pick()
            if handle is None:
                break
            req_id = next(self._seq)
            future: Future = Future()
            with handle.lock:
                if not handle.alive:
                    continue
                handle.pending[req_id] = future
                handle.requests += 1
            try:
                with handle.send_lock:
                    handle.conn.send(("req", req_id, key, history, k))
            except (BrokenPipeError, OSError):
                with handle.lock:
                    handle.pending.pop(req_id, None)
                self._mark_dead(handle)
                continue
            try:
                return future.result(timeout=timeout)
            except WorkerDied as exc:
                last_error = exc
                self._m_retries.inc()
                continue
        raise last_error or PoolError("no live pool workers")

    # -- control path --------------------------------------------------------

    def _control(self, handle: _WorkerHandle, kind: str,
                 payload: tuple = ()) -> Future:
        token = f"c{next(self._seq)}"
        future: Future = Future()
        with handle.lock:
            if not handle.alive:
                raise WorkerDied(f"pool worker {handle.id} died")
            handle.control[token] = future
        try:
            with handle.send_lock:
                handle.conn.send((kind, token) + payload)
        except (BrokenPipeError, OSError):
            self._mark_dead(handle)
            raise WorkerDied(f"pool worker {handle.id} died") from None
        return future

    def _broadcast(self, kind: str, payload: tuple = ()) -> list:
        waits = []
        for handle in self._workers:
            if not handle.alive:
                continue
            try:
                waits.append((handle, self._control(handle, kind, payload)))
            except WorkerDied:
                continue
        return waits

    # -- generation fence ----------------------------------------------------

    def publish(self, scenario: Scenario, model_changed: bool) -> dict:
        """Publish one scenario's new generation and fence every worker.

        Returns timing/ack info: ``publish_s`` (segment write),
        ``fence_s`` (ack wait), ``drain_s`` (old-segment unlink). The
        old segment is unlinked only after every live worker acked the
        flip — by then each worker's old batcher has drained its last
        old-generation request, so nothing still *needs* the name (and
        existing maps survive an unlink regardless).
        """
        key = scenario.spec.key
        index = scenario.recommender.index
        if index is None:
            raise PoolError(f"scenario {key[0]}:{key[1]} has no catalogue "
                            "index; cannot publish to the pool")
        with self._fence_lock:
            tick = time.perf_counter()
            generation = self._generation.get(key, 0) + 1
            matrix, version = index.snapshot()
            arrays: dict[str, np.ndarray] = {"catalog": matrix}
            if model_changed:
                for name, value in scenario.model.state_dict().items():
                    arrays[f"w:{name}"] = value
            segment_name = self._store.publish(
                f"g{generation}-{key[0]}-{key[1]}", arrays)
            published = time.perf_counter()
            self._fence_state = {"state": "fencing",
                                 "scenario": f"{key[0]}:{key[1]}",
                                 "generation": generation}
            waits = self._broadcast(
                "swap", (key, generation, segment_name, version,
                         scenario.dataset.num_items, model_changed))
            acked, errors = 0, []
            deadline = time.monotonic() + self.fence_timeout_s
            for handle, future in waits:
                remaining = max(deadline - time.monotonic(), 0.001)
                try:
                    error = future.result(timeout=remaining)
                except WorkerDied:
                    continue               # dead workers cannot hold a fence
                except TimeoutError:
                    errors.append(f"worker {handle.id}: fence timeout")
                    self._m_flip_errors.inc()
                    continue
                if error is None:
                    acked += 1
                else:
                    errors.append(f"worker {handle.id}: {error}")
                    self._m_flip_errors.inc()
            fenced = time.perf_counter()
            old_segment = self._segment.get(key)
            self._generation[key] = generation
            self._segment[key] = segment_name
            if old_segment is not None:
                self._store.unlink(old_segment)
            done = time.perf_counter()
            info = {"generation": generation, "version": version,
                    "workers": len(self._workers), "acked": acked,
                    "errors": errors,
                    "publish_s": published - tick,
                    "fence_s": fenced - published,
                    "drain_s": done - fenced,
                    "fence_ms": (fenced - published) * 1e3}
            self._fence_state = {"state": "complete",
                                 "scenario": f"{key[0]}:{key[1]}",
                                 "generation": generation, "acked": acked,
                                 "errors": errors,
                                 "ms": round((done - tick) * 1e3, 3)}
            self._m_fence.observe(fenced - published)
            self._m_publishes.inc()
            return info

    # -- introspection -------------------------------------------------------

    def stats(self, timeout: float = 10.0) -> dict:
        waits: dict[int, Future] = {}
        for handle in self._workers:
            if handle.alive:
                try:
                    waits[handle.id] = self._control(handle, "stats")
                except WorkerDied:
                    pass
        per_worker = []
        for handle in self._workers:
            entry = {"worker": handle.id, "pid": handle.process.pid,
                     "alive": handle.alive, "requests": handle.requests,
                     "inflight": handle.inflight()}
            future = waits.get(handle.id)
            if future is not None:
                try:
                    data = future.result(timeout=timeout)
                    entry["scenarios"] = data["scenarios"]
                except (WorkerDied, TimeoutError):
                    entry["alive"] = handle.alive
            per_worker.append(entry)
        return {"mode": "pool", "workers": len(self._workers),
                "alive": self.alive(), "generations": self.generations(),
                "fence": dict(self._fence_state,
                              timeout_s=self.fence_timeout_s),
                "per_worker": per_worker}

    def metrics_texts(self, timeout: float = 10.0) -> list[str]:
        """One Prometheus exposition per live worker."""
        waits = self._broadcast("metrics")
        texts = []
        for _, future in waits:
            try:
                texts.append(future.result(timeout=timeout))
            except (WorkerDied, TimeoutError):  # pragma: no cover - racing
                continue
        return texts

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        waits = []
        try:
            waits = self._broadcast("stop")
        except Exception:  # pragma: no cover - teardown best effort
            pass
        for _, future in waits:
            try:
                future.result(timeout=10.0)
            except (WorkerDied, TimeoutError):
                pass
        for handle in self._workers:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - hung worker
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            self._mark_dead(handle)
            try:
                handle.conn.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._store.close()
        # The topology pull-gauges must not outlive the pool in the
        # process-global registry: a later service in this process would
        # read a dead pool (total N / alive 0) and false-fire the
        # pool_workers_dead liveness rule. Clearing the callbacks drops
        # both gauges back to their static default of 0 ("no pool"),
        # which keeps the guarded rule dormant.
        metrics.gauge("repro_pool_workers_alive").set_function(None)
        metrics.gauge("repro_pool_workers_total").set_function(None)


class PooledRecommendationService(SelfMonitoring):
    """Drop-in :class:`RecommendationService` over a process pool.

    Same duck surface as the in-process service (the HTTP front, CLI
    and streaming manager cannot tell them apart); requests are
    dispatched to forked workers instead of an in-parent batcher, and
    hot swaps run through the generation fence (:meth:`publish_generation`).
    """

    def __init__(self, registry: ModelRegistry, workers: int = 2,
                 max_batch: int = 32, max_wait_ms: float = 2.0,
                 cache_size: int = 1024, batching: bool = True,
                 fence_timeout_s: float = 60.0):
        self.registry = registry
        self.workers = workers
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self.batching = batching
        self.stream = None
        self.pool = WorkerPool(registry, workers=workers, max_batch=max_batch,
                               max_wait_ms=max_wait_ms, cache_size=cache_size,
                               batching=batching,
                               fence_timeout_s=fence_timeout_s)
        self._latency: dict[tuple[str, str], metrics.Histogram] = {}
        self._closed = False

    @property
    def shm_prefix(self) -> str:
        return self.pool.shm_prefix

    # -- request API ---------------------------------------------------------

    def recommend(self, dataset: str, model: str, history,
                  k: int = 10) -> dict:
        if self._closed:
            raise RuntimeError("service is closed")
        start = time.perf_counter()
        self.registry.get(dataset, model)  # unknown scenarios 404 here
        payload = self.pool.recommend(
            (dataset, model), [int(item) for item in history], int(k))
        elapsed = time.perf_counter() - start
        key = (dataset, model)
        hist = self._latency.get(key)
        if hist is None:
            hist = metrics.histogram(
                "repro_serve_request_seconds",
                "end-to-end recommend() latency",
                labels={"scenario": f"{dataset}:{model}"})
            self._latency[key] = hist
        hist.observe(elapsed)
        payload = dict(payload)
        payload.update(dataset=dataset, model=model, latency_ms=elapsed * 1e3)
        return payload

    def refresh(self, dataset: str, model: str) -> int:
        """Rebuild one scenario's index, then fence the pool onto it."""
        scenario = self.registry.get(dataset, model)
        version = scenario.recommender.refresh()
        self.publish_generation(scenario)
        return version

    # -- streaming / hot swap ------------------------------------------------

    def attach_stream(self, manager) -> None:
        self.stream = manager

    def ingest_events(self, dataset: str, model: str, events: list) -> dict:
        if self.stream is None:
            raise ValueError("streaming is not enabled on this service; "
                             "start it with `repro stream`")
        return self.stream.ingest(dataset, model, events)

    def trigger_swap(self, dataset: str, model: str) -> dict:
        if self.stream is None:
            raise ValueError("streaming is not enabled on this service; "
                             "start it with `repro stream`")
        return self.stream.swap(dataset, model)

    def publish_generation(self, scenario: Scenario) -> dict:
        """Registry flip + pooled generation fence; returns fence info."""
        previous = self.registry.publish(scenario)
        # Weights ride the segment only when the generation actually
        # changed models (full swap); catalogue-only swaps reuse the
        # workers' resident weights.
        model_changed = previous.model is not scenario.model
        return self.pool.publish(scenario, model_changed=model_changed)

    def retire_batcher(self, key: tuple[str, str]) -> None:
        """Compatibility shim for pre-fence swap callers.

        The in-process service retires a batcher after ``registry.publish``;
        the pooled equivalent is a full fence re-publishing whatever the
        registry currently routes to. Weights are re-shipped because this
        path carries no model-identity information.
        """
        scenario = self.registry.get(*key)
        self.pool.publish(scenario,
                          model_changed=hasattr(scenario.model, "state_dict"))

    # -- introspection -------------------------------------------------------

    def scenarios(self) -> list[dict]:
        return self.registry.describe()

    def stats(self) -> dict:
        """Pool topology + per-scenario counters merged across workers."""
        pool_stats = self.pool.stats()
        per_scenario: dict[str, dict] = {}
        summed = ("requests", "batches", "size_flushes", "timeout_flushes",
                  "cache_hits", "cache_misses", "queue_depth")
        for entry in pool_stats["per_worker"]:
            for name, counters in entry.get("scenarios", {}).items():
                agg = per_scenario.setdefault(
                    name, {field: 0 for field in summed} | {"largest_batch": 0})
                for field in summed:
                    agg[field] += counters.get(field, 0)
                agg["largest_batch"] = max(agg["largest_batch"],
                                           counters.get("largest_batch", 0))
                agg.setdefault("retrieval", counters.get("retrieval"))
        for (dataset, model), hist in list(self._latency.items()):
            if hist.count:
                entry = per_scenario.setdefault(f"{dataset}:{model}", {})
                entry["latency_ms"] = hist.snapshot().to_json(scale=1e3)
        payload = {"scenarios": per_scenario,
                   "pool": pool_stats,
                   "swap_race_retries": 0,
                   "settings": {"max_batch": self.max_batch,
                                "max_wait_ms": self.max_wait_ms,
                                "cache_size": self.cache_size,
                                "batching": self.batching,
                                "workers": self.workers}}
        if self.stream is not None:
            payload["stream"] = self.stream.stats()
        return payload

    def metrics_text(self) -> str:
        """One merged exposition: the parent's plus every worker's."""
        return metrics.merge_expositions(
            [metrics.render_prometheus()] + self.pool.metrics_texts())

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._close_monitor()              # stop sampling before teardown
        stream, self.stream = self.stream, None
        if stream is not None:
            stream.close()                 # stop fine-tune workers first
        self._closed = True
        self.pool.close()

    def __enter__(self) -> "PooledRecommendationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
