"""Merge-attention multi-modal fusion (paper Eq. 3).

Concatenates per-token text hiddens and per-patch vision hiddens behind a
learnable multi-modal CLS symbol and runs a single Transformer layer over
the joint sequence; the CLS output is the fused item representation
``e_cls`` consumed by the user encoder.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import init as nn_init
from ..nn.tensor import Tensor, concat

__all__ = ["FusionConfig", "MergeAttentionFusion"]


@functools.lru_cache(maxsize=32)
def _token_types_cached(text_len: int, vision_len: int) -> np.ndarray:
    """Constant cls/text/image type-id row, cached per stream lengths.

    A single ``(L,)`` row: every batch element has the same layout, so
    the type embedding is looked up once and broadcast-added (the lazy
    unbroadcast reduces the gradient in one sum instead of a
    batch-sized scatter-add).
    """
    types = np.concatenate([
        np.zeros(1, dtype=np.int64),
        np.ones(text_len, dtype=np.int64),
        np.full(vision_len, 2, dtype=np.int64),
    ])
    types.setflags(write=False)
    return types


@dataclass(frozen=True)
class FusionConfig:
    """Hyper-parameters of the fusion block."""

    dim: int = 32
    num_heads: int = 4
    num_blocks: int = 1
    dropout: float = 0.1


class MergeAttentionFusion(nn.Module):
    """Single-stream fusion: ``[mm_cls ; text tokens ; image patches]``."""

    def __init__(self, config: FusionConfig,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = nn_init.default_rng(rng)
        self.config = config
        self.mm_cls = nn.Parameter(0.02 * rng.normal(size=(1, 1, config.dim)))
        self.type_emb = nn.Embedding(3, config.dim, rng=rng)  # cls/text/image
        self.blocks = nn.ModuleList([
            nn.TransformerBlock(config.dim, config.num_heads,
                                dropout=config.dropout, rng=rng)
            for _ in range(config.num_blocks)])
        self.final_norm = nn.LayerNorm(config.dim)

    def forward(self, text_hidden: Tensor, text_mask: np.ndarray,
                vision_hidden: Tensor) -> Tensor:
        """Fuse the two modality streams into ``(B, d)`` item embeddings.

        Parameters
        ----------
        text_hidden:
            ``(B, p, d)`` text-token hiddens (CLS column already removed).
        text_mask:
            Boolean ``(B, p)`` validity of text tokens.
        vision_hidden:
            ``(B, q, d)`` image-patch hiddens (CLS column already removed).
        """
        batch = text_hidden.shape[0]
        cls = self.mm_cls + Tensor._wrap(
            np.zeros((batch, 1, self.config.dim), dtype=self.mm_cls.data.dtype))
        token_types = _token_types_cached(text_hidden.shape[1],
                                          vision_hidden.shape[1])
        x = concat([cls, text_hidden, vision_hidden], axis=1)
        x = x + self.type_emb(token_types)
        valid = np.concatenate([
            np.ones((batch, 1), dtype=bool),
            np.asarray(text_mask, dtype=bool),
            np.ones((batch, vision_hidden.shape[1]), dtype=bool),
        ], axis=1)
        mask = nn.padding_mask(valid)
        for block in self.blocks:
            x = block(x, mask=mask)
        return self.final_norm(x)[:, 0, :]
