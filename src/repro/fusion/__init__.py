"""``repro.fusion`` — merge-attention multi-modal fusion (paper Eq. 3)."""

from .merge_attention import FusionConfig, MergeAttentionFusion

__all__ = ["FusionConfig", "MergeAttentionFusion"]
