"""Image patchification for the ViT vision encoder (Eq. 2).

Splits a ``(B, S, S, 3)`` image batch into non-overlapping square patches
flattened to vectors, exactly the "image is worth 16x16 words" front-end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["patchify", "num_patches", "patch_dim"]


def num_patches(image_size: int, patch_size: int) -> int:
    """How many patches a square image yields."""
    if image_size % patch_size != 0:
        raise ValueError(f"image_size {image_size} not divisible by "
                         f"patch_size {patch_size}")
    per_side = image_size // patch_size
    return per_side * per_side


def patch_dim(patch_size: int, channels: int = 3) -> int:
    """Flattened dimensionality of one patch."""
    return patch_size * patch_size * channels


def patchify(images: np.ndarray, patch_size: int) -> np.ndarray:
    """``(B, S, S, C)`` images to ``(B, P, patch_size*patch_size*C)``."""
    images = np.asarray(images)
    batch, size, size2, channels = images.shape
    if size != size2:
        raise ValueError("images must be square")
    if size % patch_size != 0:
        raise ValueError(f"image size {size} not divisible by {patch_size}")
    per_side = size // patch_size
    x = images.reshape(batch, per_side, patch_size, per_side, patch_size,
                       channels)
    x = x.transpose(0, 1, 3, 2, 4, 5)
    return x.reshape(batch, per_side * per_side,
                     patch_size * patch_size * channels)
