"""The vision item encoder (stand-in for CLIP-ViT, Eq. 2).

A Vision Transformer: images are split into fixed-size patches, each patch
is linearly projected, a CLS token is prepended, and Transformer blocks
mix them. The CLS output is the vision-modality feature embedding
``v_cls``; per-patch hiddens feed the fusion block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import init as nn_init
from ..nn.tensor import Tensor, concat
from .patches import num_patches, patch_dim, patchify

__all__ = ["VisionEncoderConfig", "MiniViT"]


@dataclass(frozen=True)
class VisionEncoderConfig:
    """Architecture hyper-parameters of the vision encoder."""

    image_size: int = 16
    patch_size: int = 4
    dim: int = 32
    num_blocks: int = 2
    num_heads: int = 4
    dropout: float = 0.1

    @property
    def patches(self) -> int:
        return num_patches(self.image_size, self.patch_size)


class MiniViT(nn.Module):
    """ViT over synthetic item images with CLS pooling.

    ``forward`` returns ``(cls, hidden)`` with ``cls`` of shape ``(B, d)``
    and ``hidden`` of shape ``(B, P+1, d)`` including the CLS position.
    Images have no padding, so no mask is needed.
    """

    def __init__(self, config: VisionEncoderConfig,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = nn_init.default_rng(rng)
        self.config = config
        self.patch_proj = nn.Linear(patch_dim(config.patch_size), config.dim,
                                    rng=rng)
        self.cls_token = nn.Parameter(0.02 * rng.normal(size=(1, 1, config.dim)))
        self.pos_emb = nn.Embedding(config.patches + 1, config.dim, rng=rng)
        self.norm = nn.LayerNorm(config.dim)
        self.drop = nn.Dropout(config.dropout)
        self.blocks = nn.ModuleList([
            nn.TransformerBlock(config.dim, config.num_heads,
                                dropout=config.dropout, rng=rng)
            for _ in range(config.num_blocks)])
        self.final_norm = nn.LayerNorm(config.dim)

    def forward(self, images: np.ndarray):
        patches = patchify(np.asarray(images), self.config.patch_size)
        batch = patches.shape[0]
        dtype = self.param_dtype
        x = self.patch_proj(Tensor(patches, dtype=dtype))
        cls = self.cls_token + Tensor._wrap(
            np.zeros((batch, 1, self.config.dim), dtype=dtype))
        x = concat([cls, x], axis=1)
        x = x + self.pos_emb.prefix(x.shape[1])
        x = self.drop(self.norm(x))
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return x[:, 0, :], x

    def set_finetune_depth(self, top_blocks: int) -> None:
        """Freeze all but the top ``top_blocks`` blocks (paper Sec. IV-A3)."""
        for param in self.parameters():
            param.requires_grad = False
        keep = list(self.blocks)[len(self.blocks) - top_blocks:]
        for block in keep:
            for param in block.parameters():
                param.requires_grad = True
        for param in self.final_norm.parameters():
            param.requires_grad = True
