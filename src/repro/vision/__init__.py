"""``repro.vision`` — patchify + ViT item encoder (CLIP-ViT stand-in)."""

from .encoder import MiniViT, VisionEncoderConfig
from .patches import num_patches, patch_dim, patchify
from .pretrain import pretrained_vision_encoder

__all__ = ["MiniViT", "VisionEncoderConfig", "patchify", "num_patches",
           "patch_dim", "pretrained_vision_encoder"]
