"""Deterministic "pre-training" of the vision encoder.

CLIP-ViT's value to the paper is that patch features already carry visual
semantics. We synthesize that property: the world renders images as
``tanh(latent @ pixel_decoder) + clutter``, so for each patch we derive a
linear map that approximately inverts the decoder (least-squares
pseudo-inverse of the patch's slice) followed by a fixed random projection
into the encoder's own coordinate system — informative about the item
latent, aligned with nothing else. Clutter robustness and cross-modal
alignment must still be *learned*, as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..data.world import LatentWorld
from .encoder import MiniViT, VisionEncoderConfig
from .patches import patch_dim

__all__ = ["pretrained_vision_encoder"]


def pretrained_vision_encoder(world: LatentWorld, dim: int = 32,
                              num_blocks: int = 2, num_heads: int = 4,
                              patch_size: int = 4, seed: int = 23,
                              dropout: float = 0.1) -> MiniViT:
    """Build a MiniViT whose patch projection decodes world pixel semantics.

    Deterministic in ``seed`` — building twice yields identical weights,
    like loading one public CLIP checkpoint twice.
    """
    size = world.config.image_size
    config = VisionEncoderConfig(image_size=size, patch_size=patch_size,
                                 dim=dim, num_blocks=num_blocks,
                                 num_heads=num_heads, dropout=dropout)
    rng = np.random.default_rng(seed)
    encoder = MiniViT(config, rng=rng)

    k = world.config.semantic_dim
    per_side = size // patch_size
    pdim = patch_dim(patch_size)
    vision_basis = rng.normal(size=(k, dim)) / np.sqrt(k)

    # pixel_decoder maps latent -> flat pixels (k, S*S*3); cut out the
    # pixel columns belonging to each patch and pseudo-invert.
    decoder = world.pixel_decoder.reshape(k, size, size, 3)
    weight = encoder.patch_proj.weight.data
    row = 0
    for py in range(per_side):
        for px in range(per_side):
            block = decoder[:, py * patch_size:(py + 1) * patch_size,
                            px * patch_size:(px + 1) * patch_size, :]
            block = block.reshape(k, pdim)                  # latent -> patch
            inverse = np.linalg.pinv(block)                 # patch -> latent
            # All patches share one projection matrix, so average the
            # per-patch inversions into it (keeps the layer patch-agnostic,
            # like a conv stem).
            weight += (inverse @ vision_basis) / (per_side * per_side)
            row += 1
    weight *= 0.5   # damp: pre-training is a head start, not an oracle
    encoder.patch_proj.weight.data = weight
    return encoder
