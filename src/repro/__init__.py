"""PMMRec — Pure Multi-Modality based Recommender System (ICDE 2024).

A from-scratch reproduction of *"Multi-Modality is All You Need for
Transferable Recommender Systems"* (Li et al.), including its numpy
neural-network substrate, synthetic multi-platform data world, eight
baseline recommenders and a benchmark harness regenerating every table
and figure of the paper's evaluation. See README.md for a tour.

Quickstart::

    from repro import PMMRec, PMMRecConfig, build_dataset, Trainer, TrainConfig

    dataset = build_dataset("kwai_food")
    model = PMMRec(PMMRecConfig())
    Trainer(model, dataset, TrainConfig(epochs=10)).fit()
"""

from .core import (PMMRec, PMMRecConfig, TRANSFER_SETTINGS,
                   build_target_model, transfer_components,
                   transferred_model)
from .data import (build_dataset, downstream_names, fuse_datasets,
                   source_names)
from .eval import evaluate_model, evaluate_ranking
from .train import TrainConfig, Trainer, TrainResult

__version__ = "1.0.0"

__all__ = [
    "PMMRec", "PMMRecConfig",
    "TRANSFER_SETTINGS", "transfer_components", "build_target_model",
    "transferred_model",
    "build_dataset", "fuse_datasets", "source_names", "downstream_names",
    "evaluate_model", "evaluate_ranking",
    "Trainer", "TrainConfig", "TrainResult",
    "__version__",
]
