"""``repro.stream`` — online continual learning over the serving stack.

The paper frames transfer as a *continual* process: a multi-modal
recommender should absorb new interactions — and brand-new items that
exist only as text/image features — without ID re-learning. This
subsystem closes that loop against live traffic:

* :mod:`~repro.stream.events` — the event schema (interactions +
  cold items with modality payloads), the append-only :class:`EventLog`
  and the bounded :class:`ReplayBuffer`;
* :class:`GrowableDataset` — copy-on-write catalogue growth whose
  snapshots are immutable by construction (the data half of atomicity);
* :class:`FineTuneWorker` — the background thread draining the replay
  buffer into incremental :meth:`Trainer.train_step` updates on a
  shadow model, and the atomic hot-swap publishing a pre-warmed
  generation (model + dataset snapshot + catalogue index + ANN) into
  the registry without dropping in-flight requests;
* :class:`StreamManager` — per-scenario workers behind the service's
  ``POST /events`` / ``POST /swap`` routes and ``/stats`` counters;
* :mod:`~repro.stream.bench` — synthetic event generation and the
  swap-under-load throughput benchmark behind ``repro bench-stream``.

See ``docs/streaming.md`` for the architecture and failure modes.
"""

from .bench import (bench_stream, poisoned_events, render_stream_report,
                    run_stream_smoke, synthetic_cold_items,
                    synthetic_interactions)
from .dataset import GrowableDataset
from .events import (ColdItemEvent, EventLog, InteractionEvent, ReplayBuffer,
                     parse_event, parse_events, replay_events)
from .manager import StreamManager
from .worker import FineTuneWorker, StreamConfig, SwapReport

__all__ = [
    "InteractionEvent", "ColdItemEvent", "parse_event", "parse_events",
    "EventLog", "ReplayBuffer", "replay_events",
    "GrowableDataset",
    "FineTuneWorker", "StreamConfig", "SwapReport",
    "StreamManager",
    "bench_stream", "render_stream_report", "run_stream_smoke",
    "synthetic_interactions", "synthetic_cold_items", "poisoned_events",
]
