"""Interaction-event schema, the append-only log and the replay buffer.

Events are the unit of online learning: a user interacted with an item,
or a brand-new (cold) item arrived carrying nothing but its modality
features — the exact situation the paper's transferability claim is
about (Sec. III-E: no ID re-learning, the item is representable the
moment its text/image exists).

Three pieces:

* :func:`parse_event` / the two event dataclasses — the JSON wire format
  accepted by ``POST /events`` and the CLI;
* :class:`EventLog` — an append-only record with monotonic sequence
  numbers, bounded in-memory tail and an optional JSONL sink (the
  stand-in for a durable commit log such as Kafka);
* :class:`ReplayBuffer` — the bounded training-side view: recent user
  histories the background fine-tune worker samples mini-batches from.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["InteractionEvent", "ColdItemEvent", "parse_event",
           "parse_events", "EventLog", "ReplayBuffer", "replay_events"]


@dataclass(frozen=True)
class InteractionEvent:
    """User ``user`` interacted with existing catalogue item ``item``.

    ``user`` may be ``-1`` (or the current user count) to mean "a user
    this service has never seen": a fresh sequence is started for them.
    """

    user: int
    item: int

    def to_json(self) -> dict:
        return {"user": self.user, "item": self.item}


@dataclass(frozen=True)
class ColdItemEvent:
    """A new item, described only by its modality features.

    ``text_tokens`` are catalogue-vocabulary token ids (already offset,
    as stored in ``SeqDataset.text_tokens``); ``image`` is an optional
    ``(S, S, 3)`` array (omitted → zeros, i.e. text-only item);
    ``topic`` is the latent topic id when known (-1 otherwise). When
    ``user`` is given the event also records that user's interaction
    with the new item, so one event both registers and consumes it.
    """

    text_tokens: np.ndarray
    image: np.ndarray | None = None
    topic: int = -1
    user: int | None = None

    def to_json(self) -> dict:
        item: dict = {"text_tokens": [int(t) for t in self.text_tokens],
                      "topic": int(self.topic)}
        if self.image is not None:
            image = np.asarray(self.image)
            # tolist() erases the dtype (every JSON number round-trips as
            # float64); carry it so parse_event restores the exact array.
            item["image"] = image.tolist()
            item["image_dtype"] = str(image.dtype)
        out: dict = {"item": item}
        if self.user is not None:
            out["user"] = int(self.user)
        return out


def parse_event(payload: dict) -> InteractionEvent | ColdItemEvent:
    """Parse one JSON event object into its dataclass form."""
    if not isinstance(payload, dict):
        raise ValueError(f"event must be a JSON object, got {payload!r}")
    item = payload.get("item")
    if isinstance(item, dict):
        tokens = item.get("text_tokens")
        if not isinstance(tokens, (list, tuple)) or not tokens:
            raise ValueError("cold-item event needs non-empty 'text_tokens'")
        image = item.get("image")
        if image is not None:
            # Honor the wire dtype (float32 images must not silently come
            # back as float64); absent → float64, the JSON number type.
            try:
                dtype = np.dtype(item.get("image_dtype", "float64"))
            except TypeError as exc:
                raise ValueError(
                    f"bad cold-item image_dtype: {exc}") from exc
            if dtype.kind != "f":
                raise ValueError("cold-item image_dtype must be a float "
                                 f"dtype, got {dtype}")
            image = np.asarray(image, dtype=dtype)
        return ColdItemEvent(
            text_tokens=np.asarray(tokens, dtype=np.int64),
            image=image,
            topic=int(item.get("topic", -1)),
            user=None if payload.get("user") is None
            else int(payload["user"]))
    if item is None:
        raise ValueError("event needs an 'item' (id or cold-item object)")
    if payload.get("user") is None:
        raise ValueError("interaction event needs a 'user'")
    return InteractionEvent(user=int(payload["user"]), item=int(item))


def parse_events(payloads: list) -> list:
    """Parse a batch, reporting the offending position on error."""
    events = []
    for position, payload in enumerate(payloads):
        try:
            events.append(parse_event(payload))
        except (ValueError, TypeError) as exc:
            raise ValueError(f"event[{position}]: {exc}") from exc
    return events


@dataclass
class LogRecord:
    """One accepted event with its log position and arrival time."""

    seqno: int
    event: InteractionEvent | ColdItemEvent
    arrived: float = field(default_factory=time.time)


class EventLog:
    """Append-only event record with monotonic sequence numbers.

    The log is the source of truth for "how far behind is the learner":
    ``total`` only ever grows, while consumers remember the last seqno
    they processed. Memory stays bounded — only the most recent
    ``tail_size`` records are retained for introspection; ``path``
    additionally appends every event as one JSON line (a minimal durable
    sink; production would put Kafka or a WAL here).
    """

    def __init__(self, tail_size: int = 4096, path: str | None = None):
        self._tail: deque[LogRecord] = deque(maxlen=tail_size)
        self._total = 0
        self._lock = threading.Lock()
        self._path = path
        self._sink = open(path, "a", encoding="utf-8") if path else None

    @property
    def total(self) -> int:
        """Events ever appended (monotonic)."""
        with self._lock:
            return self._total

    def append(self, event) -> int:
        """Record one event; returns its sequence number (0-based)."""
        return self.extend([event])

    def extend(self, events: list) -> int:
        """Record a batch; returns the first sequence number.

        One sink flush per batch, not per event — ingestion holds locks
        while logging, so per-event fsync-ish syscalls would serialize
        every concurrent ``POST /events`` behind disk latency.
        """
        if not events:
            return self._total
        with self._lock:
            first = self._total
            lines = []
            for event in events:
                seqno = self._total
                self._total += 1
                self._tail.append(LogRecord(seqno=seqno, event=event))
                if self._sink is not None:
                    lines.append(json.dumps(
                        {"seqno": seqno, **event.to_json()}))
            if self._sink is not None:
                self._sink.write("\n".join(lines) + "\n")
                self._sink.flush()
        return first

    def tail(self, count: int = 16) -> list[LogRecord]:
        """The most recent ``count`` records (newest last)."""
        with self._lock:
            records = list(self._tail)
        return records[-count:]

    def flush(self) -> None:
        """Force the sink to disk (appends already flush per batch)."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        """Flush and close the sink; idempotent, safe without a sink."""
        with self._lock:
            sink, self._sink = self._sink, None
        if sink is not None:
            sink.flush()
            sink.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay_events(path: str) -> list[tuple[int, object]]:
    """Re-read a JSONL sink: ``[(seqno, event), ...]`` in file order.

    The recovery half of the durable sink: every line ``EventLog`` wrote
    parses back through :func:`parse_event`, so a restarted worker can
    re-ingest the commit log. Blank lines are tolerated (a crash cannot
    leave one mid-file — appends are whole-batch writes — but hand-edited
    logs happen).
    """
    records: list[tuple[int, object]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            payload = json.loads(line)
            seqno = int(payload.pop("seqno"))
            records.append((seqno, parse_event(payload)))
    return records


class ReplayBuffer:
    """Bounded buffer of recent user histories for incremental training.

    Each entry is one user's interaction sequence *as of the event that
    produced it* (an immutable ``np.ndarray``). The worker samples with
    replacement — recent interactions are revisited across rounds, which
    is what lets a handful of events about a cold item actually move the
    encoders. FIFO eviction keeps the window recent and the memory
    bounded.

    Sampling is *prioritized* when ``bias > 0``: each entry carries a
    weight (the worker boosts histories ending at cold items and
    histories of under-served users) and entry ``i`` is drawn with
    probability proportional to ``weight_i ** bias``. ``bias = 0`` (the
    default) is exactly the old uniform sampler — same RNG draws, so
    recorded benchmarks are unchanged.
    """

    def __init__(self, capacity: int = 2048, bias: float = 0.0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if bias < 0.0:
            raise ValueError("bias must be >= 0")
        self.capacity = capacity
        self.bias = bias
        self._entries: deque[tuple[np.ndarray, float]] = deque(
            maxlen=capacity)
        self._pushed = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def pushed(self) -> int:
        """Histories ever pushed (monotonic; ≥ current length)."""
        with self._lock:
            return self._pushed

    def push(self, history: np.ndarray, weight: float = 1.0) -> None:
        """Add one (immutable) history snapshot with a replay priority."""
        if not weight > 0.0:
            raise ValueError(f"weight must be > 0, got {weight}")
        with self._lock:
            self._entries.append((history, float(weight)))
            self._pushed += 1

    def sample(self, rng: np.random.Generator,
               batch_size: int) -> list[np.ndarray]:
        """Sample ``batch_size`` histories with replacement (may be short).

        Returns an empty list when the buffer is empty. With a positive
        ``bias`` the draw is weighted (see class docstring); otherwise
        uniform.
        """
        with self._lock:
            entries = list(self._entries)
        if not entries:
            return []
        if self.bias > 0.0:
            weights = np.array([w for _, w in entries], dtype=np.float64)
            if not np.all(weights == weights[0]):
                probs = weights ** self.bias
                probs /= probs.sum()
                picks = rng.choice(len(entries), size=batch_size, p=probs)
                return [entries[i][0] for i in picks]
        picks = rng.integers(0, len(entries), size=batch_size)
        return [entries[i][0] for i in picks]
