"""Streaming benchmark: continuous serving load + live learning + swaps.

Three jobs:

* :func:`synthetic_interactions` / :func:`synthetic_cold_items` — wire
  format event generators. Cold items are rendered by the shared
  :class:`~repro.data.world.LatentWorld` exactly like catalogue items
  (same text/image renderers, fresh latents), so "a new item uploaded
  with its title and thumbnail" is simulated faithfully.
* :func:`bench_stream` — the end-to-end measurement behind
  ``repro bench-stream`` and ``benchmarks/test_stream_bench.py``:
  client threads hammer ``service.recommend`` continuously while events
  are ingested and the background worker fine-tunes and hot-swaps;
  reports serving latency under churn, swap latency p50/p99, dropped
  requests (must be zero), post-swap ANN recall vs exact, and the ranks
  at which the injected cold items surface for topic-matched probes.
* :func:`run_stream_smoke` — the CI smoke: real HTTP requests through
  ``POST /events`` → fine-tune → swap → verify ``/recommend`` serves
  the new generation and ``/stats`` reports the swap counters.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np

from ..data import get_world, platform_for
from ..data.catalog import (_STYLE_TOKEN_TOTAL, MAX_TEXT_LEN, TEXT_OFFSET,
                            text_vocab_size)
from ..serve import ModelRegistry, RecommendationService, Recommender
from ..serve.bench import request_stream, stage_snapshots
from .manager import StreamManager
from .worker import StreamConfig

__all__ = ["synthetic_interactions", "synthetic_cold_items",
           "poisoned_events", "bench_stream", "render_stream_report",
           "run_stream_smoke"]


def synthetic_interactions(dataset, count: int,
                           rng: np.random.Generator,
                           item_pool: np.ndarray | None = None) -> list[dict]:
    """``count`` wire-format interaction events over existing users.

    ``item_pool`` restricts the clicked items (used to direct traffic at
    freshly registered cold items); by default items are drawn from real
    user sequences so the stream looks like the training distribution.
    """
    events = []
    num_users = dataset.num_users
    for _ in range(count):
        user = int(rng.integers(0, num_users))
        if item_pool is not None:
            item = int(item_pool[rng.integers(0, len(item_pool))])
        else:
            seq = dataset.sequences[int(rng.integers(0, num_users))]
            item = int(seq[rng.integers(0, len(seq))])
        events.append({"user": user, "item": item})
    return events


def synthetic_cold_items(dataset, count: int, rng: np.random.Generator,
                         with_images: bool = True) -> tuple[list[dict],
                                                            np.ndarray]:
    """``count`` cold-item events with world-rendered modality features.

    Returns ``(events, topics)`` — the topic of each item, so callers
    can build topic-matched probe histories to check that cold items
    actually become recommendable.
    """
    world = get_world()
    spec = platform_for(dataset.name)
    known = np.unique(dataset.item_topics[dataset.item_topics >= 0])
    if known.size == 0:
        raise ValueError(f"dataset {dataset.name!r} has no topic labels")
    tag_base = world.config.vocab_size + _STYLE_TOKEN_TOTAL
    events, topics = [], []
    for _ in range(count):
        topic = int(known[rng.integers(0, known.size)])
        latent = world.sample_items(np.array([topic]), rng)[0]
        tag = tag_base + topic if spec.uses_tag_tokens else None
        raw_len = int(rng.integers(9, MAX_TEXT_LEN + 1))
        tokens = world.render_text(latent, topic, raw_len, rng,
                                   style_offset=spec.style_offset,
                                   style_count=8, tag_token=tag,
                                   noise_tokens=spec.text_noise_tokens)
        tokens = tokens[:MAX_TEXT_LEN] + TEXT_OFFSET
        item: dict = {"text_tokens": [int(t) for t in tokens],
                      "topic": topic}
        if with_images:
            image = world.render_image(latent, rng, clutter=spec.clutter)
            item["image"] = image.tolist()
        events.append({"item": item})
        topics.append(topic)
    return events, np.asarray(topics, dtype=np.int64)


def poisoned_events(dataset, count: int, rng: np.random.Generator,
                    burst: int = 30, cold_frac: float = 0.1) -> list[dict]:
    """``count`` wire-format events that are *valid but destructive*.

    The stress input for the eval gate: per-user *bursts* of uniformly
    random clicks plus a slice of cold items whose text is uniform token
    noise — in-vocabulary, so ingestion validation accepts every event,
    yet semantically garbage. The bursts matter: a single shuffled label
    per user barely moves training (the replayed history window is still
    dominated by the user's real prefix), but ``burst`` random clicks in
    a row — sized to the replay window — leave that user's recent
    histories with no next-item structure at all. A fine-tune round fed
    this moves the shadow away from the data distribution, which is
    exactly what the gate must catch before it reaches serving.
    """
    events: list[dict] = []
    cold = int(count * cold_frac)
    for _ in range(cold):
        tokens = rng.integers(TEXT_OFFSET, text_vocab_size(),
                              size=MAX_TEXT_LEN)
        events.append({"item": {"text_tokens": [int(t) for t in tokens],
                                "topic": -1},
                       "user": int(rng.integers(0, dataset.num_users))})
    while len(events) < count:
        user = int(rng.integers(0, dataset.num_users))
        for _ in range(min(burst, count - len(events))):
            events.append({"user": user,
                           "item": int(rng.integers(1,
                                                    dataset.num_items + 1))})
    return events


def _topic_probe(dataset, topic: int, rng: np.random.Generator,
                 length: int = 6, exclude: int | None = None) -> np.ndarray:
    """A plausible history of catalogue items sharing ``topic``."""
    pool = np.flatnonzero(dataset.item_topics == topic)
    pool = pool[pool != (exclude if exclude is not None else -1)]
    pool = pool[pool >= 1]
    if pool.size == 0:
        pool = np.arange(1, dataset.num_items + 1)
    picks = rng.choice(pool, size=min(length, pool.size), replace=False)
    return picks.astype(np.int64)


def _cold_item_ranks(scenario, cold_ids: list[int], topics: np.ndarray,
                     rng: np.random.Generator) -> list[int]:
    """Exact full-catalogue rank of each cold item for a matched probe."""
    recommender = scenario.recommender
    ranks = []
    for item, topic in zip(cold_ids, topics):
        probe = _topic_probe(scenario.dataset, int(topic), rng,
                             exclude=item)
        scores = recommender.score([probe])[0].copy()
        scores[0] = -np.inf
        scores[probe] = -np.inf
        ranks.append(int((scores > scores[item]).sum()) + 1)
    return ranks


def _ann_recall_vs_exact(scenario, histories: list[np.ndarray],
                         k: int = 10) -> float | None:
    """Post-swap recall@k of the routed path against exact scoring.

    ``None`` when the scenario retrieves exactly (nothing to compare).
    Both paths score the *same* published index snapshot; the exact
    reference deliberately constructs its own Recommender so the live
    one's routing stats stay untouched by the measurement.
    """
    live = scenario.recommender
    if live.retrieval == "exact" or live.ann is None:
        return None
    exact = Recommender(scenario.model, scenario.dataset, index=live.index,
                        retrieval="exact", exclude_seen=live.exclude_seen,
                        min_ann_items=live.min_ann_items)
    hits = total = 0
    for history in histories:
        approx = live.recommend(history, k=k)
        truth = exact.recommend(history, k=k)
        hits += np.isin(approx.items, truth.items).sum()
        total += len(truth.items)
    return float(hits) / max(total, 1)


def bench_stream(dataset_name: str = "hm", model_name: str = "pmmrec-text",
                 profile: str | None = None, *, duration_s: float = 8.0,
                 client_threads: int = 4, k: int = 10,
                 event_batch: int = 16, event_waves: int = 6,
                 cold_items: int = 6, retrieval: str = "ivf",
                 ann_params: dict | None = None, min_ann_items: int = 1,
                 steps_per_swap: int = 4, batch_size: int = 8,
                 lr: float = 5e-4, recall_queries: int = 32,
                 eval_gate: bool = True, gate_tolerance: float = 0.1,
                 replay_bias: float = 0.5, poison_events: int = 0,
                 workers: int = 0, seed: int = 0) -> dict:
    """Serve continuously while ingesting, fine-tuning and hot-swapping.

    Every run is *gated* by default: candidate generations are scored on
    the worker's held-out slice before publishing, and the report counts
    gate evaluations, published swaps and rejections (the swap latency
    percentiles therefore include the gate's eval cost — the overhead
    the artifact tracks). ``poison_events > 0`` additionally injects one
    wave of label-shuffled/garbage events mid-stream so a run can
    exercise the rejection path. Returns a JSON-ready report; render
    with :func:`render_stream_report`.
    """
    rng = np.random.default_rng(seed)
    registry = ModelRegistry(profile=profile, dtype="float32",
                             retrieval=retrieval, ann_params=ann_params,
                             min_ann_items=min_ann_items)
    scenario = registry.add(f"{dataset_name}:{model_name}", seed=seed)
    initial_version = scenario.recommender.index_version
    if workers > 0:
        # The pooled tier must fork before the StreamManager (and its
        # fine-tune threads) exist; swaps then run the generation fence.
        from ..serve.pool import PooledRecommendationService
        service = PooledRecommendationService(registry, workers=workers)
    else:
        service = RecommendationService(registry)
    config = StreamConfig(batch_size=batch_size, lr=lr,
                          steps_per_swap=steps_per_swap,
                          min_events_per_round=event_batch,
                          round_timeout_s=0.25, eval_gate=eval_gate,
                          gate_tolerance=gate_tolerance,
                          replay_bias=replay_bias, seed=seed)
    manager = StreamManager(service, config)
    service.attach_stream(manager)
    worker = manager.worker(dataset_name, model_name)
    histories = request_stream(scenario.dataset, 256, seed=seed)
    obs_before = stage_snapshots(prefix="repro_stream_")

    # -- continuous client load ----------------------------------------------
    stop = threading.Event()
    latencies: list[float] = []
    versions: set[int] = set()
    errors: list[str] = []
    submitted = [0] * client_threads
    completed = [0] * client_threads
    lock = threading.Lock()

    def client(thread_id: int) -> None:
        thread_rng = np.random.default_rng(seed + 1000 + thread_id)
        while not stop.is_set():
            history = histories[thread_rng.integers(0, len(histories))]
            submitted[thread_id] += 1
            start = time.perf_counter()
            try:
                payload = service.recommend(dataset_name, model_name,
                                            [int(i) for i in history], k=k)
            except Exception as exc:  # noqa: BLE001 - reported as dropped
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                continue
            elapsed = time.perf_counter() - start
            completed[thread_id] += 1
            with lock:
                latencies.append(elapsed)
                versions.add(payload["index_version"])

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(client_threads)]
    bench_start = time.perf_counter()
    for thread in threads:
        thread.start()

    # -- the event stream ----------------------------------------------------
    cold_events, cold_topics = synthetic_cold_items(scenario.dataset,
                                                    cold_items, rng)
    receipt = service.ingest_events(dataset_name, model_name, cold_events)
    cold_ids = receipt["cold_item_ids"]
    wave_gap = max(duration_s - 1.0, 0.5) / max(event_waves, 1)
    for wave in range(event_waves):
        events = synthetic_interactions(scenario.dataset, event_batch, rng)
        # Direct a slice of traffic at the cold items so the fine-tune
        # steps actually see them.
        events += synthetic_interactions(
            scenario.dataset, max(event_batch // 4, 2), rng,
            item_pool=np.asarray(cold_ids))
        if poison_events and wave == event_waves // 2:
            events += poisoned_events(scenario.dataset, poison_events, rng)
        service.ingest_events(dataset_name, model_name, events)
        time.sleep(wave_gap)
    # Fold any remainder into one final generation so the measurements
    # below see every ingested event.
    final_report = worker.swap().to_json()
    while time.perf_counter() - bench_start < duration_s:
        time.sleep(0.05)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    wall = time.perf_counter() - bench_start

    # -- post-swap measurements ----------------------------------------------
    final = registry.get(dataset_name, model_name)
    recall_pool = [histories[i] for i in
                   rng.integers(0, len(histories), size=recall_queries)]
    recall = _ann_recall_vs_exact(final, recall_pool, k=k)
    cold_ranks = _cold_item_ranks(final, cold_ids, cold_topics, rng)
    stream_stats = worker.stats_json()
    # Only this run's observations: swap-phase timings (pre-warm, index
    # build, gate, publish, drain) carved out of the registry histograms.
    obs_delta = stage_snapshots(obs_before, prefix="repro_stream_")
    swap_phases = {
        name.split("phase=")[1].rstrip("}"): summary
        for name, summary in obs_delta.items()
        if name.startswith("repro_stream_swap_phase_seconds")}
    service.close()

    lat_ms = np.asarray(latencies) * 1e3
    report = {
        "scenario": f"{dataset_name}:{model_name}",
        "profile": profile, "retrieval": retrieval, "k": k,
        "duration_s": round(wall, 3),
        "clients": client_threads,
        "requests_submitted": int(sum(submitted)),
        "requests_completed": int(sum(completed)),
        "requests_dropped": int(sum(submitted) - sum(completed)),
        "errors": errors[:8],
        "serve_p50_ms": float(np.percentile(lat_ms, 50)) if len(lat_ms)
        else None,
        "serve_p99_ms": float(np.percentile(lat_ms, 99)) if len(lat_ms)
        else None,
        "serve_qps": float(len(lat_ms) / wall) if wall > 0 else None,
        "versions_served": sorted(int(v) for v in versions),
        "initial_version": int(initial_version),
        "final_version": int(final.recommender.index_version),
        "final_swap": final_report,
        "stream": stream_stats,
        "swap_phases": swap_phases,
        "cold_item_ids": [int(i) for i in cold_ids],
        "cold_item_ranks": cold_ranks,
        "cold_in_top10": int(sum(r <= 10 for r in cold_ranks)),
        "cold_in_top50": int(sum(r <= 50 for r in cold_ranks)),
        "catalogue_items_final": int(final.dataset.num_items),
        "ann_recall_at_k": recall,
        "gate": {"enabled": eval_gate,
                 "tolerance": gate_tolerance,
                 "replay_bias": replay_bias,
                 "poison_events": poison_events,
                 "evals": int(stream_stats["gate_evals"]),
                 "published": int(stream_stats["swaps"]),
                 "rejected": int(stream_stats["swaps_rejected"]),
                 "eval_examples": int(stream_stats["eval_examples"]),
                 "last_rejection": stream_stats["last_rejection"]},
    }
    return report


def _fmt(value: float | None, spec: str = ".2f") -> str:
    """Format a possibly-absent metric (None when nothing completed)."""
    return "n/a" if value is None else format(value, spec)


def render_stream_report(report: dict,
                         title: str = "stream benchmark") -> str:
    """Human-readable artifact text (``results/stream_bench.txt``).

    Must render even for a fully failed run (zero completed requests →
    latency/QPS are ``None``): the report is exactly what an operator
    needs to see then.
    """
    lines = [title, "=" * len(title)]
    stream = report["stream"]
    lines += [
        f"scenario            {report['scenario']} "
        f"(profile={report['profile']}, retrieval={report['retrieval']})",
        f"duration            {report['duration_s']:.1f}s, "
        f"{report['clients']} client threads",
        f"serving under churn p50 {_fmt(report['serve_p50_ms'])} ms  "
        f"p99 {_fmt(report['serve_p99_ms'])} ms  "
        f"{_fmt(report['serve_qps'], '.0f')} req/s",
        f"requests            {report['requests_completed']}/"
        f"{report['requests_submitted']} completed, "
        f"{report['requests_dropped']} dropped",
        f"events ingested     {stream['events_total']} "
        f"({stream['interactions']} interactions, "
        f"{stream['cold_items']} cold items)",
        f"fine-tune steps     {stream['steps']} "
        f"(last loss {stream['last_loss']:.4f})",
        f"hot swaps           {stream['swaps']}  "
        f"p50 {stream.get('swap_p50_ms', float('nan')):.1f} ms  "
        f"p99 {stream.get('swap_p99_ms', float('nan')):.1f} ms",
        f"eval gate           {report['gate']['evals']} evals, "
        f"{report['gate']['published']} published, "
        f"{report['gate']['rejected']} rejected "
        f"(tol {report['gate']['tolerance']}, "
        f"{report['gate']['eval_examples']} held-out examples, "
        f"replay bias {report['gate']['replay_bias']})",
        f"index versions      v{report['initial_version']} -> "
        f"v{report['final_version']} "
        f"(served: {report['versions_served']})",
        f"catalogue growth    -> {report['catalogue_items_final']} items "
        f"({len(report['cold_item_ids'])} cold)",
        f"cold-item ranks     {report['cold_item_ranks']} "
        f"(top-10: {report['cold_in_top10']}, "
        f"top-50: {report['cold_in_top50']})",
    ]
    if report["ann_recall_at_k"] is not None:
        lines.append(f"ann recall@{report['k']}       "
                     f"{report['ann_recall_at_k']:.4f} vs exact, post-swap")
    phases = report.get("swap_phases") or {}
    if phases:
        lines.append("swap phases         "
                     + "  ".join(f"{name} {s['mean']:.1f}ms"
                                 for name, s in phases.items()))
    if report["requests_dropped"]:
        lines.append(f"dropped errors      {report['errors']}")
    return "\n".join(lines)


# -- CI smoke -----------------------------------------------------------------

def _post(url: str, payload: dict, timeout: float = 60.0) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get(url: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.load(response)


def run_stream_smoke(service: RecommendationService, manager: StreamManager,
                     url: str, steps: int = 2, seed: int = 0) -> int:
    """Ingest → fine-tune → hot-swap → verify, all over real HTTP.

    Returns a process exit code (0 = pass). Drives the first streamable
    scenario: posts synthetic interactions plus one cold item to
    ``/events``, runs fine-tune steps, forces a swap via ``/swap``, then
    checks that ``/recommend`` accepts the cold item id, serves the new
    index version, and that ``/stats`` shows the swap counters.
    """
    rng = np.random.default_rng(seed)
    failures = []
    workers = manager.workers()
    if not workers:
        unstreamable = manager.stats().get("unstreamable", {})
        print(f"stream smoke FAILURE: no streamable scenarios "
              f"(unstreamable: {unstreamable or 'none loaded'})")
        print("stream smoke: FAIL")
        return 1
    (dataset_name, model_name), worker = workers[0]
    scenario = service.registry.get(dataset_name, model_name)
    version_before = scenario.recommender.index_version
    history = [int(i) for i in scenario.dataset.split.test[0].history]

    events = synthetic_interactions(scenario.dataset, 12, rng)
    if worker.supports_cold_items:
        cold_events, _ = synthetic_cold_items(scenario.dataset, 1, rng)
        events += cold_events
    receipt = _post(url + "/events",
                    {"dataset": dataset_name, "model": model_name,
                     "events": events})
    cold_ids = receipt.get("cold_item_ids", [])
    print(f"smoke ingest: {receipt['accepted']} events accepted "
          f"({receipt['cold_items']} cold, ids {cold_ids})")
    if receipt["accepted"] != len(events):
        failures.append("ingest did not accept every event")

    done = worker.run_steps(steps)
    print(f"smoke fine-tune: {done} incremental steps")
    if done < 1:
        failures.append("no fine-tune step ran (empty replay buffer?)")

    swap = _post(url + "/swap",
                 {"dataset": dataset_name, "model": model_name})
    print(f"smoke swap: kind={swap['kind']} v{swap['version']} "
          f"({swap['latency_ms']:.1f} ms, "
          f"{swap['reencoded_items']} rows re-encoded)")
    gate = swap.get("gate")
    if gate:
        print(f"smoke gate: {gate['reason']} on {gate['examples']} "
              f"examples (deltas {gate['deltas']}, "
              f"{gate['eval_ms']:.1f} ms)")
    if swap["version"] != version_before + 1:
        failures.append(f"swap version {swap['version']} != "
                        f"{version_before + 1}")
    if done >= 1 and swap["kind"] != "full":
        failures.append(f"swap kind {swap['kind']!r}, expected 'full'")

    probe = history + [int(i) for i in cold_ids]
    answer = _post(url + "/recommend",
                   {"dataset": dataset_name, "model": model_name,
                    "history": probe, "k": 10})
    print(f"smoke recommend: v{answer['index_version']} "
          f"top-{len(answer['items'])} ({answer['latency_ms']:.1f} ms, "
          f"history includes cold ids {cold_ids})")
    if answer["index_version"] != swap["version"]:
        failures.append("post-swap answer served a stale index version")
    fresh = service.registry.get(dataset_name, model_name)
    expected = fresh.recommender.recommend(probe, k=10)
    if list(answer["items"]) != [int(i) for i in expected.items]:
        failures.append("served top-k != direct retrieval on the new "
                        "generation")

    stats = _get(url + "/stats")
    stream_stats = stats.get("stream", {}).get(
        f"{dataset_name}:{model_name}", {})
    print(f"smoke stats: swaps={stream_stats.get('swaps')} "
          f"steps={stream_stats.get('steps')} "
          f"events={stream_stats.get('events_total')} "
          f"staleness={stream_stats.get('staleness_s', 0):.1f}s")
    if stream_stats.get("swaps", 0) < 1:
        failures.append("/stats does not report the swap")
    if stream_stats.get("events_total", 0) != receipt["events_total"]:
        failures.append("/stats event counter disagrees with the receipt")

    for failure in failures:
        print(f"smoke FAILURE: {failure}")
    print("stream smoke:", "PASS" if not failures else "FAIL")
    return 1 if failures else 0
