"""Routing facade over the per-scenario fine-tune workers.

:class:`StreamManager` is what the serving stack talks to (via the small
duck-typed protocol on :class:`~repro.serve.service.RecommendationService`):
it owns one :class:`~repro.stream.worker.FineTuneWorker` per streamable
scenario, parses wire-format events, and aggregates stats. Scenarios
whose models cannot train incrementally (heuristic baselines) are listed
as unstreamable rather than refused at startup, so a mixed registry can
still stream the scenarios that support it.
"""

from __future__ import annotations

import threading

from ..obs import metrics
from .events import parse_events
from .worker import FineTuneWorker, StreamConfig

__all__ = ["StreamManager"]


class StreamManager:
    """One continual-learning pipeline per streamable scenario."""

    def __init__(self, service, config: StreamConfig | None = None,
                 start: bool = True):
        self.service = service
        self.config = config or StreamConfig()
        self._workers: dict[tuple[str, str], FineTuneWorker] = {}
        self._unstreamable: dict[str, str] = {}
        self._lock = threading.Lock()
        for scenario in service.registry:
            key = scenario.spec.key
            try:
                self._workers[key] = FineTuneWorker(
                    service, key, config=self.config, start=start)
            except TypeError as exc:
                self._unstreamable[f"{key[0]}:{key[1]}"] = str(exc)
        metrics.gauge("repro_stream_workers",
                      "streaming scenarios with a live fine-tune worker"
                      ).set_function(lambda: len(self._workers))

    def __len__(self) -> int:
        return len(self._workers)

    def workers(self) -> list[tuple[tuple[str, str], FineTuneWorker]]:
        """The ``((dataset, model), worker)`` pairs currently streaming."""
        return list(self._workers.items())

    def worker(self, dataset: str, model: str) -> FineTuneWorker:
        key = (dataset, model)
        if key not in self._workers:
            if f"{dataset}:{model}" in self._unstreamable:
                raise ValueError(
                    f"scenario {dataset}:{model} cannot stream: "
                    + self._unstreamable[f"{dataset}:{model}"])
            known = sorted(f"{d}:{m}" for d, m in self._workers)
            raise KeyError(f"no streaming scenario {dataset}:{model}; "
                           f"streaming scenarios: {known}")
        return self._workers[key]

    # -- the protocol the service delegates to -------------------------------

    def ingest(self, dataset: str, model: str, events: list) -> dict:
        """Parse and apply one wire-format event batch."""
        return self.worker(dataset, model).ingest(parse_events(events))

    def swap(self, dataset: str, model: str) -> dict:
        """Force a hot swap now; returns the swap report."""
        return self.worker(dataset, model).swap().to_json()

    def stats(self) -> dict:
        """Per-scenario streaming counters (under ``/stats`` → ``stream``).

        ``totals`` aggregates the gate across scenarios — the first
        number an operator checks ("is anything being rejected?") should
        not require summing per-scenario dicts by hand.
        """
        per = {f"{d}:{m}": worker.stats_json()
               for (d, m), worker in self._workers.items()}
        out: dict = dict(per)
        out["totals"] = {
            name: sum(stats[name] for stats in per.values())
            for name in ("events_total", "swaps", "swaps_rejected",
                         "shadow_evals", "gate_evals", "round_errors")}
        # Worst-case freshness across scenarios: the health rules (and
        # `repro top`) care about the most stale / most rejected worker,
        # not the sum.
        out["totals"]["max_staleness_s"] = max(
            (stats["staleness_s"] for stats in per.values()), default=0.0)
        out["totals"]["max_rejection_streak"] = max(
            (stats["rejection_streak"] for stats in per.values()), default=0)
        if self._unstreamable:
            out["unstreamable"] = dict(self._unstreamable)
        return out

    def close(self) -> None:
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            worker.close()

    def __enter__(self) -> "StreamManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
