"""A ``SeqDataset`` that grows online: new items, new users, new clicks.

The offline pipeline builds immutable datasets (and caches them — two
scenarios may share one object), so the streaming path never mutates a
base dataset in place. Instead :class:`GrowableDataset` starts from a
copy-on-write view and applies growth by *replacement*: appending an
item concatenates new per-item arrays, appending an interaction builds
a new sequence array for that user. Published snapshots therefore stay
internally consistent forever — they keep referencing the arrays that
existed when :meth:`snapshot` ran, no matter how far the growable view
has moved on. This is what makes the hot swap atomic at the data layer:
the serving scenario holds a snapshot, the fine-tune worker holds the
growable view, and the two never share a mutable buffer.

Single-writer by design: all mutation goes through the ingestion lock of
the owning :class:`~repro.stream.worker.FineTuneWorker`.
"""

from __future__ import annotations

import numpy as np

from ..data.catalog import MAX_TEXT_LEN, SeqDataset

__all__ = ["GrowableDataset"]


class GrowableDataset(SeqDataset):
    """Append-only growth over a base :class:`SeqDataset`."""

    #: num_items of the base dataset this view grew from (set by from_base).
    base_num_items: int = 0

    @classmethod
    def from_base(cls, base: SeqDataset) -> "GrowableDataset":
        """Copy-on-write view over ``base`` (arrays shared until growth)."""
        grown = cls(name=base.name, platform=base.platform,
                    num_items=base.num_items,
                    sequences=list(base.sequences),
                    text_tokens=base.text_tokens,
                    images=base.images,
                    item_topics=base.item_topics,
                    item_latents=base.item_latents,
                    split=base.split, stats=dict(base.stats))
        grown.base_num_items = base.num_items
        return grown

    # -- item growth ---------------------------------------------------------

    def add_item(self, text_tokens: np.ndarray,
                 image: np.ndarray | None = None, topic: int = -1,
                 latent: np.ndarray | None = None) -> int:
        """Register one cold item; returns its newly assigned id.

        ``text_tokens`` are catalogue-vocabulary ids (truncated/padded to
        the dataset's text length); ``image`` defaults to the all-zero
        image (text-only item); ``latent`` is generator ground truth and
        only supplied by tests/benchmarks.
        """
        text_len = self.text_tokens.shape[1] if self.text_tokens.size \
            else MAX_TEXT_LEN
        row_tokens = np.zeros((1, text_len), dtype=self.text_tokens.dtype)
        tokens = np.asarray(text_tokens, dtype=np.int64).reshape(-1)
        row_tokens[0, :min(tokens.size, text_len)] = tokens[:text_len]

        row_image = np.zeros((1,) + self.images.shape[1:],
                             dtype=self.images.dtype)
        if image is not None:
            image = np.asarray(image, dtype=self.images.dtype)
            if image.shape != self.images.shape[1:]:
                raise ValueError(f"cold-item image shape {image.shape} "
                                 f"!= catalogue {self.images.shape[1:]}")
            row_image[0] = image

        row_latent = np.zeros((1,) + self.item_latents.shape[1:],
                              dtype=self.item_latents.dtype)
        if latent is not None:
            row_latent[0] = np.asarray(latent, dtype=self.item_latents.dtype)

        # Growth by replacement: snapshots holding the old arrays stay
        # valid; only this view adopts the widened ones.
        self.text_tokens = np.concatenate([self.text_tokens, row_tokens])
        self.images = np.concatenate([self.images, row_image])
        self.item_topics = np.concatenate(
            [self.item_topics, np.array([topic], dtype=np.int64)])
        self.item_latents = np.concatenate([self.item_latents, row_latent])
        self.num_items += 1
        return self.num_items

    # -- interaction growth --------------------------------------------------

    def add_interaction(self, user: int | None, item: int) -> np.ndarray:
        """Append one click; returns the user's updated history.

        ``user`` may be ``None``/``-1`` or exactly the current user count
        to start a fresh user; otherwise it must name an existing user.
        The updated history is a *new* array (snapshots sharing the
        sequence list copy are untouched).
        """
        if not 1 <= item <= self.num_items:
            raise ValueError(f"item id {item} outside catalogue "
                             f"[1, {self.num_items}]")
        if user is None or user == -1 or user == len(self.sequences):
            history = np.array([item], dtype=np.int64)
            self.sequences.append(history)
            return history
        if not 0 <= user < len(self.sequences):
            raise ValueError(f"user id {user} outside [0, "
                             f"{len(self.sequences)}] (use -1 for new)")
        history = np.append(self.sequences[user], np.int64(item))
        self.sequences[user] = history
        return history

    # -- publication ---------------------------------------------------------

    def new_item_ids(self, since_num_items: int) -> np.ndarray:
        """Ids added after the catalogue had ``since_num_items`` items."""
        return np.arange(since_num_items + 1, self.num_items + 1,
                         dtype=np.int64)

    def snapshot(self) -> SeqDataset:
        """An immutable view of the current state, safe to serve from."""
        return SeqDataset(name=self.name, platform=self.platform,
                          num_items=self.num_items,
                          sequences=list(self.sequences),
                          text_tokens=self.text_tokens,
                          images=self.images,
                          item_topics=self.item_topics,
                          item_latents=self.item_latents,
                          split=self.split, stats=dict(self.stats))
