"""The background fine-tune worker and the atomic hot-swap path.

One :class:`FineTuneWorker` per streaming scenario closes the paper's
deployment loop: interaction events (including cold items that exist
only as modality features) flow in through :meth:`ingest`, a background
thread drains the replay buffer into mini-batches and runs incremental
:meth:`~repro.train.trainer.Trainer.train_step` updates on a *shadow*
copy of the serving model, and every ``steps_per_swap`` steps the worker
publishes a new serving generation: model weights, dataset snapshot,
catalogue index and ANN structure — atomically, without dropping
in-flight requests.

The swap protocol (the part that makes "atomic" true):

1. Snapshot the growable dataset under the ingestion lock (immutable by
   construction — growth is by array replacement, see
   :mod:`repro.stream.dataset`).
2. Build the publish model *off the request path*: a fresh instance
   loaded from the shadow's ``state_dict`` (atomic, validate-first —
   see ``Module.load_state_dict``), so serving never observes a
   half-written weight.
3. **Gate the candidate on held-out data** (the part that makes swaps
   *safe*): score it on an eval slice built from *held-out users* —
   their startup leave-one-out examples plus a reservoir of their
   recent events, none of which ever reach the replay buffer — and
   publish only if HR@10/NDCG@10 hold within ``gate_tolerance`` of the
   serving generation on the same slice.
   A failed gate rejects the swap (counted on ``/stats``), optionally
   resets the shadow to the serving weights, and training continues;
   serving never sees the update. ``shadow_mode`` goes further: the old
   generation keeps serving unconditionally while every candidate's
   ranks are logged to a JSONL diff file for offline comparison.
4. Pre-warm a fresh :class:`~repro.serve.index.CatalogIndex` against the
   snapshot — a full re-encode after weight updates, or the
   ``publish_partial`` fast path re-encoding *only new items* when the
   catalogue grew without a weight change. The ANN structure is fitted
   before publication, continuing the retired index's version sequence.
5. ``registry.publish`` flips routing on one dict assignment, then the
   service retires the old generation's micro-batcher: already-queued
   requests flush against the old (still consistent) model+index, new
   requests build a batcher on the new generation, and the one racing
   request that can land on the just-closed batcher is retried by the
   service against the new generation (``BatcherClosed``).

Requests therefore see old ranks or new ranks, never a mixture — and
with the gate, never a *worse* generation than the tolerance allows.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..obs import metrics, trace
from ..data.batching import pad_sequences
from ..data.catalog import MAX_SEQ_LEN, text_vocab_size
from ..data.splits import EvalExample
from ..serve.index import CatalogIndex
from ..serve.registry import build_model
from ..train.trainer import TrainConfig, Trainer
from .dataset import GrowableDataset
from .events import ColdItemEvent, EventLog, InteractionEvent, ReplayBuffer

__all__ = ["StreamConfig", "SwapReport", "FineTuneWorker"]

GATE_METRICS = ("hr@10", "ndcg@10")


@dataclass
class StreamConfig:
    """Knobs of the online continual-learning loop."""

    batch_size: int = 16         # replayed histories per fine-tune step
    lr: float = 5e-4             # incremental steps use a gentler LR than
                                 # offline training: the model is warm
    clip_norm: float = 5.0
    steps_per_swap: int = 8      # fine-tune steps between hot swaps
    min_events_per_round: int = 8  # wake the worker per this many events
    round_timeout_s: float = 2.0   # ... or when pending events get this old
    buffer_capacity: int = 2048  # replay-buffer histories kept
    max_seq_len: int = MAX_SEQ_LEN
    checkpoint_dir: str | None = None  # versioned ckpt per full swap
    log_tail: int = 4096
    log_path: str | None = None  # optional JSONL event sink
    # -- eval gate (production safety) ------------------------------------
    eval_gate: bool = True       # score the candidate before every swap
    gate_tolerance: float = 0.1  # allowed absolute HR@10/NDCG@10 drop
    eval_set_size: int = 64      # held-out users sampled at startup
                                 # (capped at a quarter of the user base)
    eval_holdout_frac: float = 0.1  # chance a brand-new user is held out
    eval_reservoir: int = 64     # held-out recent-event reservoir capacity
    gate_reset_on_reject: bool = True  # rebuild shadow from serving weights
    # -- prioritized replay -----------------------------------------------
    replay_bias: float = 0.0     # priority exponent (0 = uniform sampling)
    # -- shadow scoring ----------------------------------------------------
    shadow_mode: bool = False    # never publish weight updates, only log
    shadow_log_path: str | None = None  # JSONL rank-diff file
    seed: int = 0


@dataclass
class SwapReport:
    """What one hot swap did (returned by ``POST /swap`` too)."""

    version: int                 # catalogue index version now serving
    kind: str                    # "full" | "catalog" | "skipped"
                                 # | "rejected" | "shadow"
    steps: int                   # fine-tune steps folded into this swap
    new_items: int               # cold items first served by this swap
    reencoded_items: int         # catalogue rows actually re-encoded
    latency_ms: float            # publish latency (encode + fit + flip)
    checkpoint: str | None = None
    gate: dict | None = None     # eval-gate verdict (metrics + deltas)
    fence: dict | None = None    # pool generation fence (workers/acks),
                                 # None on the in-process tier

    def to_json(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Counters:
    """Ingest/train/swap counters (mutated and snapshotted under one lock)."""

    interactions: int = 0
    cold_items: int = 0
    new_users: int = 0
    held_out: int = 0            # events diverted to the eval reservoir
    steps: int = 0
    swaps: int = 0
    swaps_rejected: int = 0
    shadow_evals: int = 0
    gate_evals: int = 0
    last_loss: float = float("nan")
    last_rejection: dict | None = None
    last_shadow: dict | None = None
    swap_last_ms: float = float("nan")
    round_errors: int = 0
    last_error: str | None = None
    last_error_type: str | None = None


#: Swap phases, in execution order. Each gets a span on a sampled swap
#: trace and a ``repro_stream_swap_phase_seconds{phase=...}`` histogram.
SWAP_PHASES = ("snapshot", "pre_warm", "index_build", "gate",
               "checkpoint", "publish", "fence", "drain")


class FineTuneWorker:
    """Online learner + hot-swapper for one serving scenario."""

    def __init__(self, service, key: tuple[str, str],
                 config: StreamConfig | None = None, start: bool = True):
        self.service = service
        self.registry = service.registry
        self.key = key
        self.config = config or StreamConfig()
        scenario = self.registry.get(*key)
        self.spec = scenario.spec
        # The model must be trainable to fine-tune online; heuristic
        # baselines (popularity, markov) simply can't stream.
        if not hasattr(scenario.model, "training_loss") \
                or not hasattr(scenario.model, "state_dict"):
            raise TypeError(
                f"model {self.spec.model!r} does not support incremental "
                "training; streaming needs the training_loss protocol")
        # Cold items need a model that encodes items from modality
        # features. ID-embedding baselines are sized to the catalogue at
        # construction — exactly the limitation the paper's modality-only
        # design removes — so they serve the event stream but reject
        # cold-item events.
        self.supports_cold_items = bool(
            getattr(scenario.model, "supports_cold_items",
                    hasattr(scenario.model, "encode_items")))

        self.data = GrowableDataset.from_base(scenario.dataset)
        self.log = EventLog(tail_size=self.config.log_tail,
                            path=self.config.log_path)
        self.replay = ReplayBuffer(capacity=self.config.buffer_capacity,
                                   bias=self.config.replay_bias)

        # The shadow: same architecture, same weights, own optimizer.
        dtype = scenario.model.param_dtype
        self.shadow = build_model(self.spec.model, self.data,
                                  seed=self.spec.seed)
        self.shadow.to_dtype(dtype)
        self.shadow.load_state_dict(scenario.model.state_dict())
        self.trainer = Trainer(
            self.shadow, self.data,
            TrainConfig(batch_size=self.config.batch_size,
                        lr=self.config.lr,
                        clip_norm=self.config.clip_norm,
                        max_seq_len=self.config.max_seq_len,
                        seed=self.config.seed),
            pretraining=False)

        # The eval slice is held out by *user*, not by event: an
        # event-level holdout leaks — the user's very next click carries
        # the held-out transition inside its replayed history, and the
        # fine-tune steps would memorize the gate's targets (any
        # candidate would then look great). Instead a sample of users is
        # diverted from replay entirely: their startup leave-one-out
        # examples form the frozen half of the slice, their online
        # events feed the reservoir (see _apply_click), and nothing the
        # optimizer ever sees contains their transitions. Capped at a
        # quarter of the user base so training traffic survives.
        eval_rng = np.random.default_rng(self.config.seed + 7)
        sequences = scenario.dataset.sequences
        eligible = [u for u, seq in enumerate(sequences) if len(seq) >= 3]
        take = min(max(self.config.eval_set_size, 0), len(eligible) // 4)
        picks = (eval_rng.choice(len(eligible), size=take, replace=False)
                 if take else np.empty(0, dtype=np.int64))
        self._eval_users: set[int] = {eligible[int(i)] for i in picks}
        self._eval_frozen: list[EvalExample] = []
        for user in sorted(self._eval_users):
            seq = np.asarray(sequences[user], dtype=np.int64)
            self._eval_frozen.append(EvalExample(
                history=seq[:-1][-self.config.max_seq_len:],
                target=int(seq[-1])))
        self._eval_reservoir: list[EvalExample] = []
        self._holdout_seen = 0
        # Serving-side eval cache: per-example ranks, valid for one
        # (serving model, catalogue size) pair — see _gate_evaluate.
        self._baseline: dict | None = None

        self.counters = _Counters()
        # Registry mirror (Prometheus view on /metrics): counters are
        # scenario-labeled and monotonic across worker generations;
        # _Counters stays the per-instance truth behind stats_json().
        scope = {"scenario": f"{key[0]}:{key[1]}"}
        self._scope = scope
        self._m_events = {
            kind: metrics.counter("repro_stream_events_total",
                                  "ingested events by kind",
                                  labels={**scope, "kind": kind})
            for kind in ("interaction", "cold_item")}
        self._m_steps = metrics.counter(
            "repro_stream_steps_total", "incremental fine-tune steps",
            labels=scope)
        self._m_rounds = metrics.counter(
            "repro_stream_rounds_total", "fine-tune rounds completed",
            labels=scope)
        self._m_round_errors = metrics.counter(
            "repro_stream_round_errors_total",
            "fine-tune rounds that raised", labels=scope)
        self._m_gate_evals = metrics.counter(
            "repro_stream_gate_evals_total", "eval-gate runs", labels=scope)
        self._m_swaps = {
            kind: metrics.counter("repro_stream_swaps_total",
                                  "hot-swap attempts by outcome",
                                  labels={**scope, "kind": kind})
            for kind in ("full", "catalog", "skipped", "rejected", "shadow")}
        self._m_round_seconds = metrics.histogram(
            "repro_stream_round_seconds", "fine-tune round duration",
            labels=scope)
        self._m_swap_seconds = metrics.histogram(
            "repro_stream_swap_seconds", "published hot-swap latency",
            labels=scope)
        self._m_swap_phase = {
            name: metrics.histogram("repro_stream_swap_phase_seconds",
                                    "hot-swap phase latency",
                                    labels={**scope, "phase": name})
            for name in SWAP_PHASES}
        metrics.gauge("repro_stream_buffer_depth",
                      "replay-buffer histories held",
                      labels=scope).set_function(lambda: len(self.replay))
        metrics.gauge("repro_stream_catalogue_items",
                      "catalogue size including cold items",
                      labels=scope).set_function(lambda: self.data.num_items)
        # Self-monitoring inputs (repro.obs.health default rules): how
        # long since this scenario last published, and how many gate
        # rejections in a row. Pull-mode so the timeline sampler reads
        # live values with zero hot-path bookkeeping.
        metrics.gauge("repro_stream_staleness_seconds",
                      "seconds since this scenario last published a swap",
                      labels=scope).set_function(
                          lambda: time.time() - self._last_swap_time)
        metrics.gauge("repro_stream_rejection_streak",
                      "consecutive eval-gate swap rejections",
                      labels=scope).set_function(
                          lambda: self._rejection_streak)
        # Per-instance (unregistered) swap-latency histogram: stats_json
        # reads p50/p99 from its ~64 buckets in O(1) — the bounded deque
        # + percentile pass it replaces — without bleeding another
        # worker generation's swaps into this worker's numbers.
        self._swap_hist = metrics.Histogram("swap_latency_seconds")
        self._published_items = scenario.dataset.num_items
        self._started = time.time()
        self._last_swap_time = self._started
        self._rejection_streak = 0
        self._events_since_round = 0
        self._events_at_last_swap = 0
        self._steps_since_swap = 0
        self._rng = np.random.default_rng(self.config.seed)
        # Ingestion-side randomness (holdout draws) gets its own stream:
        # request threads must never race the worker thread's sampler.
        self._ingest_rng = np.random.default_rng(self.config.seed + 13)
        self._ingest_lock = threading.Lock()
        self._work_lock = threading.RLock()
        # Innermost lock: guards every counter mutation and the
        # stats_json snapshot, never held across training or I/O.
        self._stats_lock = threading.Lock()
        self._cond = threading.Condition()
        self._closed = False
        self._thread: threading.Thread | None = None
        if start:
            self._thread = threading.Thread(
                target=self._loop,
                name=f"repro-stream-{key[0]}:{key[1]}", daemon=True)
            self._thread.start()

    # -- ingestion (request threads) -----------------------------------------

    def _validate(self, events: list) -> None:
        """Reject a batch atomically before applying any of it.

        Simulates the batch: cold items raise when the model cannot host
        them or their modality payload is malformed (token ids outside
        the vocabulary, wrong image shape — which would otherwise only
        blow up later, inside the fine-tune thread or the swap encode);
        interaction ids must fall inside the catalogue as it will exist
        *at that point of the batch* (an interaction may reference a
        cold item registered earlier in the same batch).
        """
        items = self.data.num_items
        users = len(self.data.sequences)
        vocab = text_vocab_size()
        image_shape = self.data.images.shape[1:]
        for position, event in enumerate(events):
            if isinstance(event, ColdItemEvent):
                if not self.supports_cold_items:
                    raise ValueError(
                        f"event[{position}]: model {self.spec.model!r} is "
                        "ID-based and cannot host cold items; only "
                        "modality-encoding models can")
                tokens = np.asarray(event.text_tokens)
                if tokens.size and (tokens.min() < 0
                                    or tokens.max() >= vocab):
                    raise ValueError(
                        f"event[{position}]: text token ids must be in "
                        f"[0, {vocab}); got "
                        f"[{tokens.min()}, {tokens.max()}]")
                if event.image is not None \
                        and np.asarray(event.image).shape != image_shape:
                    raise ValueError(
                        f"event[{position}]: image shape "
                        f"{np.asarray(event.image).shape} != catalogue "
                        f"{image_shape}")
                items += 1
                if event.user is not None:
                    users = self._check_user(position, event.user, users)
            else:
                if not 1 <= event.item <= items:
                    raise ValueError(
                        f"event[{position}]: item id {event.item} outside "
                        f"catalogue [1, {items}]")
                users = self._check_user(position, event.user, users)

    @staticmethod
    def _check_user(position: int, user: int, users: int) -> int:
        if user == -1 or user == users:
            return users + 1
        if not 0 <= user < users:
            raise ValueError(f"event[{position}]: user id {user} outside "
                             f"[0, {users}] (use -1 for a new user)")
        return users

    def ingest(self, events: list) -> dict:
        """Apply a batch of parsed events; returns an ingestion receipt.

        Atomic per batch: the whole list is validated first, then applied
        under the ingestion lock. Cold items are registered synchronously
        (their assigned ids are in the receipt, so a client can reference
        them in follow-up events immediately); learning from them happens
        asynchronously in the worker; *serving* them begins at the next
        hot swap.
        """
        with self._ingest_lock:
            if self._closed:
                raise RuntimeError("stream worker is closed")
            self._validate(events)
            cold_ids = []
            interactions = cold = new_users = held = 0
            for event in events:
                if isinstance(event, ColdItemEvent):
                    item = self.data.add_item(event.text_tokens,
                                              image=event.image,
                                              topic=event.topic)
                    cold_ids.append(item)
                    cold += 1
                    if event.user is not None:
                        fresh, out = self._apply_click(event.user, item)
                        new_users += fresh
                        held += out
                        interactions += 1
                else:
                    fresh, out = self._apply_click(event.user, event.item)
                    new_users += fresh
                    held += out
                    interactions += 1
            self.log.extend(events)
            with self._stats_lock:
                self.counters.interactions += interactions
                self.counters.cold_items += cold
                self.counters.new_users += new_users
                self.counters.held_out += held
            self._m_events["interaction"].inc(interactions)
            self._m_events["cold_item"].inc(cold)
            receipt = {"accepted": len(events),
                       "interactions": interactions,
                       "cold_items": cold,
                       "cold_item_ids": cold_ids,
                       "new_users": new_users,
                       "held_out": held,
                       "events_total": self.log.total,
                       "buffer_size": len(self.replay)}
        with self._cond:
            self._events_since_round += len(events)
            self._cond.notify_all()
        return receipt

    def _apply_click(self, user: int | None, item: int) -> tuple[int, int]:
        """Apply one interaction; returns (new-user flag, held-out flag).

        A trainable user's transition enters the replay buffer with a
        priority weight — cold-item targets and short-history
        (under-served) users are boosted, which ``replay_bias`` turns
        into oversampling. A *held-out* user's transition is instead
        reservoir-sampled into the gate's eval slice: their events still
        grow the dataset (serving history must stay complete) but are
        invisible to the optimizer, which is what makes them a fair
        measurement of the next candidate. Brand-new users are assigned
        to the held-out pool with probability ``eval_holdout_frac`` so
        the slice tracks the live distribution as the user base grows.
        """
        fresh = user is None or user == -1 \
            or user == len(self.data.sequences)
        if fresh:
            uid = len(self.data.sequences)
            if self.config.eval_holdout_frac > 0.0 \
                    and self._ingest_rng.random() \
                    < self.config.eval_holdout_frac:
                self._eval_users.add(uid)
        else:
            uid = int(user)
        history = self.data.add_interaction(user, item)
        if history.size < 2:
            # A single-click history has no next-item transition to learn
            # from (or evaluate); the user enters the window on click 2.
            return int(fresh), 0
        if uid in self._eval_users:
            self._reservoir_add(EvalExample(
                history=history[-self.config.max_seq_len - 1:-1],
                target=int(item)))
            return int(fresh), 1
        weight = 1.0
        if item > self.data.base_num_items:
            weight *= 4.0                   # cold item: few events carry it
        weight *= 1.0 + 1.0 / history.size  # under-served (short) history
        self.replay.push(history[-self.config.max_seq_len:], weight=weight)
        return int(fresh), 0

    def _reservoir_add(self, example: EvalExample) -> None:
        """Classic reservoir sampling into the held-out eval slice."""
        capacity = max(self.config.eval_reservoir, 0)
        if capacity == 0:
            return
        self._holdout_seen += 1
        if len(self._eval_reservoir) < capacity:
            self._eval_reservoir.append(example)
        else:
            slot = int(self._ingest_rng.integers(0, self._holdout_seen))
            if slot >= capacity:
                return
            self._eval_reservoir[slot] = example

    # -- the background loop (worker thread) ---------------------------------

    def _loop(self) -> None:
        # Same size-or-timeout trigger as the request micro-batcher: a
        # round starts when enough events queued *or* the oldest pending
        # event has waited round_timeout_s (a trickle still gets
        # learned). With nothing pending the wait is untimed — ingest()
        # and close() notify — so an idle worker never spins the
        # scheduler.
        while True:
            with self._cond:
                deadline = None
                while not self._closed:
                    pending = self._events_since_round
                    if pending >= self.config.min_events_per_round:
                        break
                    if pending > 0:
                        now = time.monotonic()
                        if deadline is None:
                            deadline = now + self.config.round_timeout_s
                        if now >= deadline:
                            break
                        self._cond.wait(timeout=deadline - now)
                    else:
                        deadline = None
                        self._cond.wait()
                if self._closed:
                    return
                self._events_since_round = 0
            # The learner thread must survive a bad round (a transient
            # encode failure, a poisoned batch): serving continues on the
            # last published generation either way, so record the error
            # where /stats surfaces it and keep draining events — a dead
            # silent thread would masquerade as "no traffic" while
            # staleness grew unbounded. _round already rolled the shadow
            # back to its pre-round state, so no half-applied update can
            # survive into a later swap.
            try:
                self._round()
            except Exception as exc:  # noqa: BLE001 - surfaced via stats
                with self._stats_lock:
                    self.counters.round_errors += 1
                    self.counters.last_error = \
                        f"{type(exc).__name__}: {exc}"
                    self.counters.last_error_type = type(exc).__name__
                self._m_round_errors.inc()
                time.sleep(0.1)      # don't spin if the failure persists

    def _round(self) -> None:
        """Up to ``steps_per_swap`` incremental steps, then a hot swap.

        The step loop runs under a rollback guard: an exception
        mid-round (a poisoned batch blowing up in the loss, an encode
        failure) restores the shadow's weights, the optimizer's moments
        and the step counter to their pre-round values before the error
        propagates — a later swap can therefore never publish a
        half-applied update.
        """
        tick = time.perf_counter()
        with self._work_lock:
            guard = self._round_guard()
            try:
                for _ in range(self.config.steps_per_swap):
                    if not self._train_one_step():
                        break
            except Exception:
                self._round_rollback(guard)
                raise
            self._swap_locked()
        self._m_rounds.inc()
        self._m_round_seconds.observe(time.perf_counter() - tick)

    def _round_guard(self) -> dict:
        """Pre-round snapshot of everything a failed round may corrupt."""
        return {"state": {name: value.copy() for name, value
                          in self.shadow.state_dict().items()},
                "optimizer": self.trainer.optimizer.state_dict(),
                "steps_since_swap": self._steps_since_swap}

    def _round_rollback(self, guard: dict) -> None:
        """Restore the pre-round shadow/optimizer/counter state."""
        self.shadow.load_state_dict(guard["state"])
        self.trainer.optimizer.load_state_dict(guard["optimizer"])
        with self._stats_lock:
            self._steps_since_swap = guard["steps_since_swap"]

    def _train_one_step(self) -> bool:
        histories = self.replay.sample(self._rng, self.config.batch_size)
        if not histories:
            return False
        batch = pad_sequences(histories, max_len=self.config.max_seq_len)
        loss = self.trainer.train_step(batch.item_ids, batch.mask)
        with self._stats_lock:
            self.counters.steps += 1
            self.counters.last_loss = loss
            self._steps_since_swap += 1
        self._m_steps.inc()
        return True

    # -- the eval gate -------------------------------------------------------

    def _eval_examples(self) -> list[EvalExample]:
        """The gate's eval slice (call under the ingestion lock)."""
        return self._eval_frozen + list(self._eval_reservoir)

    def _ranked_eval(self, model, dataset, examples: list[EvalExample],
                     catalog: np.ndarray | None = None
                     ) -> tuple[dict, np.ndarray]:
        """HR@10/NDCG@10 (plus raw ranks) of ``model`` on ``examples``.

        ``catalog`` short-circuits the scorer's full catalogue encode
        with a precomputed item matrix (e.g. the publish index's) — the
        expensive half of a gate eval when the example count is small.
        """
        from ..eval.metrics import metrics_from_ranks, rank_of_target
        from ..eval.scoring import batch_scorer
        from ..nn.tensor import no_grad
        scorer = batch_scorer(model, dataset, catalog=catalog)
        was_training = bool(getattr(model, "training", False))
        if was_training:
            model.eval()
        try:
            chunks = []
            with no_grad():
                for start in range(0, len(examples), 128):
                    chunk = examples[start:start + 128]
                    scores = scorer([ex.history for ex in chunk])
                    targets = np.array([ex.target for ex in chunk])
                    chunks.append(rank_of_target(scores, targets))
        finally:
            if was_training:
                model.train(True)
        ranks = (np.concatenate(chunks) if chunks
                 else np.empty(0, dtype=np.int64))
        return metrics_from_ranks(ranks, ks=(10,)), ranks

    def _gate_evaluate(self, candidate, serving, snapshot,
                       examples: list[EvalExample],
                       candidate_catalog: np.ndarray | None = None,
                       serving_catalog: np.ndarray | None = None) -> dict:
        """Score candidate vs serving generation on the held-out slice.

        The candidate side reuses ``candidate_catalog`` — the publish
        index's matrix, already encoded by the swap path — so gating
        adds no catalogue encode of its own *and* scores exactly what
        serving would serve. The serving side is cached *per example*
        (keyed by identity — frozen examples never change and reservoir
        churn only replaces a few entries between swaps) together with
        its catalogue matrix, valid for one (serving model, catalogue
        size) pair: at steady state the gate costs one candidate
        user-encoder pass plus a handful of incremental baseline scores
        per swap, not two full evals. Both sides score against the
        *same* snapshot so catalogue growth cannot masquerade as a
        metric move.
        """
        tolerance = self.config.gate_tolerance
        start = time.perf_counter()
        if not examples:
            empty = np.empty(0, dtype=np.int64)
            return {"accepted": True, "reason": "no_eval_examples",
                    "examples": 0, "tolerance": tolerance,
                    "candidate": {}, "baseline": {}, "deltas": {},
                    "eval_ms": 0.0,
                    "_candidate_ranks": empty, "_baseline_ranks": empty}
        from ..eval.metrics import metrics_from_ranks
        candidate_metrics, candidate_ranks = self._ranked_eval(
            candidate, snapshot, examples, catalog=candidate_catalog)
        cached = self._baseline
        if (cached is None or cached["model"] is not serving
                or cached["items"] != snapshot.num_items):
            cached = {"model": serving, "items": snapshot.num_items,
                      "catalog": None, "ranks": {}}
        # id() keys are safe because the mapped value keeps the example
        # alive (a freed id could otherwise be reused by a new example).
        known: dict[int, tuple[EvalExample, int]] = cached["ranks"]
        missing = [ex for ex in examples if id(ex) not in known]
        if missing:
            if cached["catalog"] is None and serving_catalog is not None:
                cached["catalog"] = serving_catalog
            if cached["catalog"] is None:
                catalog = serving.encode_catalog(snapshot)
                if self.registry.dtype is not None \
                        and catalog.dtype != np.dtype(self.registry.dtype):
                    # Serve-side fidelity: score through the same cast
                    # the serving index applies (see CatalogIndex).
                    catalog = catalog.astype(self.registry.dtype)
                cached["catalog"] = catalog
            _, missing_ranks = self._ranked_eval(serving, snapshot, missing,
                                                 catalog=cached["catalog"])
            for example, rank in zip(missing, missing_ranks):
                known[id(example)] = (example, int(rank))
        baseline_ranks = np.array([known[id(ex)][1] for ex in examples],
                                  dtype=np.int64)
        baseline_metrics = metrics_from_ranks(baseline_ranks, ks=(10,))
        self._baseline = cached
        deltas = {name: float(candidate_metrics[name]
                              - baseline_metrics[name])
                  for name in GATE_METRICS}
        failed = sorted(name for name, delta in deltas.items()
                        if delta < -tolerance)
        verdict = {
            "accepted": not failed,
            "reason": ("ok" if not failed else
                       "metric_drop:" + ",".join(failed)),
            "examples": len(examples),
            "tolerance": tolerance,
            "candidate": {k: float(v) for k, v in candidate_metrics.items()},
            "baseline": {k: float(v) for k, v in baseline_metrics.items()},
            "deltas": deltas,
            "eval_ms": (time.perf_counter() - start) * 1e3,
        }
        verdict["_candidate_ranks"] = candidate_ranks
        verdict["_baseline_ranks"] = baseline_ranks
        return verdict

    @staticmethod
    def _gate_summary(verdict: dict) -> dict:
        """The JSON-safe slice of a gate verdict (no rank arrays)."""
        return {k: v for k, v in verdict.items()
                if not k.startswith("_")}

    def _log_shadow(self, verdict: dict, steps: int) -> None:
        """Append one candidate-vs-serving rank diff to the JSONL file."""
        path = self.config.shadow_log_path
        if not path:
            return
        record = {"time": time.time(),
                  "scenario": f"{self.key[0]}:{self.key[1]}",
                  "steps": steps,
                  **self._gate_summary(verdict),
                  "candidate_ranks":
                  [int(r) for r in verdict.get("_candidate_ranks", ())],
                  "baseline_ranks":
                  [int(r) for r in verdict.get("_baseline_ranks", ())]}
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()

    def _reset_shadow(self, model) -> None:
        """Discard the rejected update: shadow ← serving, fresh optimizer.

        The rejected round's gradients are suspect wholesale, and AdamW
        moments accumulated from them would keep steering subsequent
        steps — so both are dropped. The replay buffer is left alone:
        the FIFO window ages poisoned events out under clean traffic,
        and until then the gate keeps rejecting (which is the point).
        """
        self.shadow.load_state_dict(model.state_dict())
        config = self.trainer.config
        params = [p for p in self.shadow.parameters() if p.requires_grad]
        self.trainer.optimizer = nn.AdamW(
            params, lr=config.lr, weight_decay=config.weight_decay)

    # -- hot swap ------------------------------------------------------------

    def run_steps(self, steps: int) -> int:
        """Synchronously run up to ``steps`` fine-tune steps (tests/CLI)."""
        with self._work_lock:
            done = 0
            for _ in range(steps):
                if not self._train_one_step():
                    break
                done += 1
            return done

    def swap(self) -> SwapReport:
        """Publish the current shadow weights + catalogue; blocks training.

        Safe to call from any thread (serialized with the training loop
        on the work lock). No-ops with ``kind="skipped"`` when there is
        nothing to publish — no steps taken and no new items. Weight
        changes must pass the eval gate (``kind="rejected"`` when they
        don't) and are withheld entirely in shadow mode
        (``kind="shadow"``).
        """
        with self._work_lock:
            return self._swap_locked()

    def _swap_locked(self) -> SwapReport:
        # The swap is latency-critical and GIL-convoy-prone: the gate
        # eval and the index re-encode issue many short numpy ops, and
        # on a saturated interpreter every GIL release lets a spinning
        # request thread keep the GIL for a full switch interval (5ms
        # by default) — inflating a ~100ms swap several-fold on small
        # hosts. Bounding the interval for the swap's duration caps
        # each wait; request threads lose nothing measurable (they are
        # numpy-bound too and the swap is rare).
        previous = sys.getswitchinterval()
        sys.setswitchinterval(5e-4)
        try:
            return self._swap_impl()
        finally:
            sys.setswitchinterval(previous)

    def _swap_impl(self) -> SwapReport:
        start = time.perf_counter()
        ctx = trace.start("swap", f"{self.key[0]}:{self.key[1]}")
        if ctx is not None:
            ctx.t0 = start

        def phase(name: str, t0: float, t1: float) -> None:
            self._m_swap_phase[name].observe(t1 - t0)
            if ctx is not None:
                ctx.add_span(name, t0, t1)

        with self._ingest_lock:
            snapshot = self.data.snapshot()
            new_ids = self.data.new_item_ids(self._published_items)
            events_total = self.log.total
            examples = self._eval_examples()
        phase("snapshot", start, time.perf_counter())
        steps = self._steps_since_swap
        old = self.registry.get(*self.key)
        if steps == 0 and new_ids.size == 0:
            self._m_swaps["skipped"].inc()
            if ctx is not None:
                trace.finish(ctx, swap_kind="skipped")
            return SwapReport(version=old.recommender.index_version,
                              kind="skipped", steps=0, new_items=0,
                              reencoded_items=0, latency_ms=0.0)
        registry = self.registry
        checkpoint = None
        gate_summary = None
        if steps == 0:
            # Catalogue growth without a weight change: every existing
            # row of the serving index is still exact, so share the
            # serving model and re-encode only the new items. Nothing to
            # gate either — the weights are bitwise the serving weights.
            kind, model = "catalog", old.model
            tick = time.perf_counter()
            index = CatalogIndex(model, snapshot, dtype=registry.dtype,
                                 start_version=old.recommender.index_version)
            if old.recommender.index is not None \
                    and not old.recommender.index.stale:
                base_matrix = old.recommender.index.snapshot()[0]
                index.publish_partial(base_matrix, new_ids)
                reencoded = int(new_ids.size)
            else:
                index.refresh()
                reencoded = snapshot.num_items
            phase("index_build", tick, time.perf_counter())
        else:
            kind = "full"
            tick = time.perf_counter()
            model = build_model(self.spec.model, snapshot,
                                seed=self.spec.seed)
            model.to_dtype(self.shadow.param_dtype)
            model.load_state_dict(self.shadow.state_dict())
            phase("pre_warm", tick, (tick := time.perf_counter()))
            # Encode the publish index *before* the gate: the candidate
            # is then gated against the exact matrix that would serve
            # it, and the catalogue encode is paid once — shared by the
            # eval and the publication — instead of once per side.
            index = CatalogIndex(model, snapshot, dtype=registry.dtype,
                                 start_version=old.recommender.index_version)
            index.refresh()
            reencoded = snapshot.num_items
            phase("index_build", tick, time.perf_counter())
            if self.config.eval_gate or self.config.shadow_mode:
                # The serving side can reuse the live index's matrix
                # when the catalogue has not grown since it was built.
                serving_catalog = None
                base = old.recommender.index
                if base is not None and not base.stale:
                    base_matrix = base.snapshot()[0]
                    if base_matrix.shape[0] == snapshot.num_items + 1:
                        serving_catalog = base_matrix
                tick = time.perf_counter()
                verdict = self._gate_evaluate(model, old.model, snapshot,
                                              examples, index.snapshot()[0],
                                              serving_catalog)
                phase("gate", tick, time.perf_counter())
                gate_summary = self._gate_summary(verdict)
                with self._stats_lock:
                    self.counters.gate_evals += 1
                self._m_gate_evals.inc()
                if self.config.shadow_mode:
                    # Keep serving the old generation unconditionally;
                    # the candidate's ranks go to the diff log and the
                    # shadow keeps training (steps accumulate).
                    self._log_shadow(verdict, steps)
                    latency_ms = (time.perf_counter() - start) * 1e3
                    with self._stats_lock:
                        self.counters.shadow_evals += 1
                        self.counters.last_shadow = dict(
                            gate_summary, steps=steps, time=time.time())
                    self._m_swaps["shadow"].inc()
                    if ctx is not None:
                        trace.finish(ctx, latency_ms / 1e3, swap_kind="shadow")
                    return SwapReport(
                        version=old.recommender.index_version,
                        kind="shadow", steps=steps,
                        new_items=int(new_ids.size), reencoded_items=0,
                        latency_ms=latency_ms, gate=gate_summary)
                if not verdict["accepted"]:
                    rejection = dict(gate_summary, steps_discarded=steps,
                                     time=time.time())
                    if self.config.gate_reset_on_reject:
                        self._reset_shadow(old.model)
                        rejection["shadow_reset"] = True
                    latency_ms = (time.perf_counter() - start) * 1e3
                    with self._stats_lock:
                        self.counters.swaps_rejected += 1
                        self.counters.last_rejection = rejection
                        self._rejection_streak += 1
                        if self.config.gate_reset_on_reject:
                            self._steps_since_swap = 0
                    self._m_swaps["rejected"].inc()
                    if ctx is not None:
                        trace.finish(ctx, latency_ms / 1e3, swap_kind="rejected")
                    return SwapReport(
                        version=old.recommender.index_version,
                        kind="rejected", steps=steps,
                        new_items=int(new_ids.size), reencoded_items=0,
                        latency_ms=latency_ms, gate=gate_summary)
                # The accepted candidate becomes the serving generation:
                # promote its per-example ranks and its catalogue matrix
                # to the baseline cache, so the next gate's serving side
                # costs only the reservoir entries that changed since.
                self._baseline = {
                    "model": model, "items": snapshot.num_items,
                    "catalog": index.snapshot()[0],
                    "ranks": {id(ex): (ex, int(rank)) for ex, rank in
                              zip(examples, verdict["_candidate_ranks"])}}
            tick = time.perf_counter()
            checkpoint = self._save_checkpoint(steps)
            phase("checkpoint", tick, time.perf_counter())
        tick = time.perf_counter()
        scenario = registry.build_scenario(self.spec, snapshot, model,
                                           index=index)
        # The service owns how a generation goes live: registry flip +
        # batcher drain in-process, shared-memory publish + generation
        # fence on the pooled tier. Duck services used by unit tests may
        # predate the hook, so fall back to the pre-fence sequence.
        publisher = getattr(self.service, "publish_generation", None)
        if publisher is not None:
            fence_info = publisher(scenario)
        else:
            registry.publish(scenario)
            self.service.retire_batcher(self.key)
            fence_info = None
        done = time.perf_counter()
        # Render the publish/fence/drain phases as contiguous spans from
        # the durations the service reported (zero-width fence on the
        # in-process tier), ending exactly at `done` so sampled swap
        # traces keep full coverage.
        durations = fence_info or {}
        edge = tick
        for name in ("publish", "fence", "drain"):
            seconds = max(float(durations.get(f"{name}_s", 0.0)), 0.0)
            end = done if name == "drain" else min(edge + seconds, done)
            phase(name, edge, end)
            edge = end
        fence_report = None
        if fence_info is not None and fence_info.get("workers", 0) > 0:
            fence_report = {"workers": fence_info["workers"],
                            "acked": fence_info["acked"],
                            "errors": fence_info.get("errors", []),
                            "generation": fence_info.get("generation"),
                            "fence_ms": round(
                                fence_info.get("fence_s", 0.0) * 1e3, 3)}
        latency_ms = (done - start) * 1e3
        self._published_items = snapshot.num_items
        with self._stats_lock:
            self._steps_since_swap = 0
            self._events_at_last_swap = events_total
            self._last_swap_time = time.time()
            self._rejection_streak = 0     # a publish clears the streak
            self.counters.swaps += 1
            self.counters.swap_last_ms = latency_ms
        self._m_swaps[kind].inc()
        self._swap_hist.observe(latency_ms / 1e3)
        self._m_swap_seconds.observe(latency_ms / 1e3)
        if ctx is not None:
            trace.finish(ctx, latency_ms / 1e3, swap_kind=kind,
                         version=index.version, steps=steps)
        return SwapReport(version=index.version, kind=kind, steps=steps,
                          new_items=int(new_ids.size),
                          reencoded_items=reencoded,
                          latency_ms=latency_ms, checkpoint=checkpoint,
                          gate=gate_summary, fence=fence_report)

    def _save_checkpoint(self, steps: int) -> str | None:
        directory = self.config.checkpoint_dir
        if not directory:
            return None
        from ..nn.serialization import save_checkpoint
        version = self.counters.swaps + 1
        path = os.path.join(
            directory,
            f"{self.spec.dataset}-{self.spec.model}-v{version}.npz")
        save_checkpoint(self.shadow, path,
                        meta={"swap_version": version,
                              "fine_tune_steps": self.counters.steps,
                              "steps_in_swap": steps,
                              "scenario": f"{self.key[0]}:{self.key[1]}"})
        return path

    # -- introspection -------------------------------------------------------

    def stats_json(self) -> dict:
        """Drift/lag counters for ``/stats`` and ``repro stream``.

        The snapshot is taken under the counters lock, so concurrent
        ``_round`` / ``ingest`` mutations can never produce a torn read
        (e.g. a negative ``events_since_swap`` or ``steps_since_swap >
        steps``); monotonic counters observed across successive calls
        never move backwards.
        """
        config = self.config
        with self._stats_lock:
            counters = self.counters
            events_total = self.log.total
            swap_last_ms = counters.swap_last_ms
            snap = {"events_total": events_total,
                    "interactions": counters.interactions,
                    "cold_items": counters.cold_items,
                    "new_users": counters.new_users,
                    "held_out": counters.held_out,
                    "steps": counters.steps,
                    "steps_since_swap": self._steps_since_swap,
                    "last_loss": counters.last_loss,
                    "swaps": counters.swaps,
                    "swaps_rejected": counters.swaps_rejected,
                    "shadow_evals": counters.shadow_evals,
                    "gate_evals": counters.gate_evals,
                    "last_rejection": counters.last_rejection,
                    "last_shadow": counters.last_shadow,
                    "round_errors": counters.round_errors,
                    "last_error": counters.last_error,
                    "last_error_type": counters.last_error_type,
                    "events_since_swap": events_total
                    - self._events_at_last_swap,
                    "staleness_s": time.time() - self._last_swap_time,
                    "rejection_streak": self._rejection_streak,
                    "published_items": self._published_items,
                    "eval_users": len(self._eval_users),
                    "eval_examples": (len(self._eval_frozen)
                                      + len(self._eval_reservoir))}
        snap.update({
            "buffer_size": len(self.replay),
            "buffer_pushed": self.replay.pushed,
            "catalogue_items": self.data.num_items,
            "supports_cold_items": self.supports_cold_items,
            "eval_gate": {"enabled": config.eval_gate,
                          "tolerance": config.gate_tolerance,
                          "holdout_frac": config.eval_holdout_frac,
                          "shadow_mode": config.shadow_mode},
            "replay_bias": self.replay.bias,
            "index_version":
            self.registry.get(*self.key).recommender.index_version})
        # O(1) over the histogram's ~64 buckets, however long the worker
        # has been swapping (the pre-obs deque needed a percentile pass).
        swap_snap = self._swap_hist.snapshot()
        if swap_snap.total:
            snap["swap_p50_ms"] = float(swap_snap.quantile(0.50) * 1e3)
            snap["swap_p99_ms"] = float(swap_snap.quantile(0.99) * 1e3)
            snap["swap_last_ms"] = float(swap_last_ms)
        return snap

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the background thread; pending events stay unlearned."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        # Detach this worker's pull-gauges from the process-global
        # registry: a closed worker's staleness callback would grow
        # forever and keep the health engine's worst-label-set
        # threshold rules firing for a scenario nobody serves anymore.
        # The values fall back to the static default of 0.
        for name in ("repro_stream_buffer_depth",
                     "repro_stream_catalogue_items",
                     "repro_stream_staleness_seconds",
                     "repro_stream_rejection_streak"):
            metrics.gauge(name, labels=self._scope).set_function(None)
        self.log.close()

    def __enter__(self) -> "FineTuneWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
