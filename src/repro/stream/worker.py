"""The background fine-tune worker and the atomic hot-swap path.

One :class:`FineTuneWorker` per streaming scenario closes the paper's
deployment loop: interaction events (including cold items that exist
only as modality features) flow in through :meth:`ingest`, a background
thread drains the replay buffer into mini-batches and runs incremental
:meth:`~repro.train.trainer.Trainer.train_step` updates on a *shadow*
copy of the serving model, and every ``steps_per_swap`` steps the worker
publishes a new serving generation: model weights, dataset snapshot,
catalogue index and ANN structure — atomically, without dropping
in-flight requests.

The swap protocol (the part that makes "atomic" true):

1. Snapshot the growable dataset under the ingestion lock (immutable by
   construction — growth is by array replacement, see
   :mod:`repro.stream.dataset`).
2. Build the publish model *off the request path*: a fresh instance
   loaded from the shadow's ``state_dict`` (atomic, validate-first —
   see ``Module.load_state_dict``), so serving never observes a
   half-written weight.
3. Pre-warm a fresh :class:`~repro.serve.index.CatalogIndex` against the
   snapshot — a full re-encode after weight updates, or the
   ``publish_partial`` fast path re-encoding *only new items* when the
   catalogue grew without a weight change. The ANN structure is fitted
   before publication, continuing the retired index's version sequence.
4. ``registry.publish`` flips routing on one dict assignment, then the
   service retires the old generation's micro-batcher: already-queued
   requests flush against the old (still consistent) model+index, new
   requests build a batcher on the new generation, and the one racing
   request that can land on the just-closed batcher is retried by the
   service against the new generation (``BatcherClosed``).

Requests therefore see old ranks or new ranks, never a mixture.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..data.batching import pad_sequences
from ..data.catalog import MAX_SEQ_LEN, text_vocab_size
from ..serve.index import CatalogIndex
from ..serve.registry import Scenario, build_model
from ..train.trainer import TrainConfig, Trainer
from .dataset import GrowableDataset
from .events import ColdItemEvent, EventLog, InteractionEvent, ReplayBuffer

__all__ = ["StreamConfig", "SwapReport", "FineTuneWorker"]


@dataclass
class StreamConfig:
    """Knobs of the online continual-learning loop."""

    batch_size: int = 16         # replayed histories per fine-tune step
    lr: float = 5e-4             # incremental steps use a gentler LR than
                                 # offline training: the model is warm
    clip_norm: float = 5.0
    steps_per_swap: int = 8      # fine-tune steps between hot swaps
    min_events_per_round: int = 8  # wake the worker per this many events
    round_timeout_s: float = 2.0   # ... or when pending events get this old
    buffer_capacity: int = 2048  # replay-buffer histories kept
    max_seq_len: int = MAX_SEQ_LEN
    checkpoint_dir: str | None = None  # versioned ckpt per full swap
    log_tail: int = 4096
    log_path: str | None = None  # optional JSONL event sink
    seed: int = 0


@dataclass
class SwapReport:
    """What one hot swap did (returned by ``POST /swap`` too)."""

    version: int                 # catalogue index version now serving
    kind: str                    # "full" | "catalog" | "skipped"
    steps: int                   # fine-tune steps folded into this swap
    new_items: int               # cold items first served by this swap
    reencoded_items: int         # catalogue rows actually re-encoded
    latency_ms: float            # publish latency (encode + fit + flip)
    checkpoint: str | None = None

    def to_json(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Counters:
    """Monotonic ingest/train/swap counters (one lock-free snapshot each)."""

    interactions: int = 0
    cold_items: int = 0
    new_users: int = 0
    steps: int = 0
    swaps: int = 0
    last_loss: float = float("nan")
    # Bounded: a long-lived server swapping for weeks must not grow this
    # (or the /stats percentile pass) without limit.
    swap_latencies_ms: deque = field(
        default_factory=lambda: deque(maxlen=4096))
    round_errors: int = 0
    last_error: str | None = None


class FineTuneWorker:
    """Online learner + hot-swapper for one serving scenario."""

    def __init__(self, service, key: tuple[str, str],
                 config: StreamConfig | None = None, start: bool = True):
        self.service = service
        self.registry = service.registry
        self.key = key
        self.config = config or StreamConfig()
        scenario = self.registry.get(*key)
        self.spec = scenario.spec
        # The model must be trainable to fine-tune online; heuristic
        # baselines (popularity, markov) simply can't stream.
        if not hasattr(scenario.model, "training_loss") \
                or not hasattr(scenario.model, "state_dict"):
            raise TypeError(
                f"model {self.spec.model!r} does not support incremental "
                "training; streaming needs the training_loss protocol")
        # Cold items need a model that encodes items from modality
        # features. ID-embedding baselines are sized to the catalogue at
        # construction — exactly the limitation the paper's modality-only
        # design removes — so they serve the event stream but reject
        # cold-item events.
        self.supports_cold_items = bool(
            getattr(scenario.model, "supports_cold_items",
                    hasattr(scenario.model, "encode_items")))

        self.data = GrowableDataset.from_base(scenario.dataset)
        self.log = EventLog(tail_size=self.config.log_tail,
                            path=self.config.log_path)
        self.replay = ReplayBuffer(capacity=self.config.buffer_capacity)

        # The shadow: same architecture, same weights, own optimizer.
        dtype = scenario.model.param_dtype
        self.shadow = build_model(self.spec.model, self.data,
                                  seed=self.spec.seed)
        self.shadow.to_dtype(dtype)
        self.shadow.load_state_dict(scenario.model.state_dict())
        self.trainer = Trainer(
            self.shadow, self.data,
            TrainConfig(batch_size=self.config.batch_size,
                        lr=self.config.lr,
                        clip_norm=self.config.clip_norm,
                        max_seq_len=self.config.max_seq_len,
                        seed=self.config.seed),
            pretraining=False)

        self.counters = _Counters()
        self._published_items = scenario.dataset.num_items
        self._started = time.time()
        self._last_swap_time = self._started
        self._events_since_round = 0
        self._events_at_last_swap = 0
        self._steps_since_swap = 0
        self._rng = np.random.default_rng(self.config.seed)
        self._ingest_lock = threading.Lock()
        self._work_lock = threading.RLock()
        self._cond = threading.Condition()
        self._closed = False
        self._thread: threading.Thread | None = None
        if start:
            self._thread = threading.Thread(
                target=self._loop,
                name=f"repro-stream-{key[0]}:{key[1]}", daemon=True)
            self._thread.start()

    # -- ingestion (request threads) -----------------------------------------

    def _validate(self, events: list) -> None:
        """Reject a batch atomically before applying any of it.

        Simulates the batch: cold items raise when the model cannot host
        them or their modality payload is malformed (token ids outside
        the vocabulary, wrong image shape — which would otherwise only
        blow up later, inside the fine-tune thread or the swap encode);
        interaction ids must fall inside the catalogue as it will exist
        *at that point of the batch* (an interaction may reference a
        cold item registered earlier in the same batch).
        """
        items = self.data.num_items
        users = len(self.data.sequences)
        vocab = text_vocab_size()
        image_shape = self.data.images.shape[1:]
        for position, event in enumerate(events):
            if isinstance(event, ColdItemEvent):
                if not self.supports_cold_items:
                    raise ValueError(
                        f"event[{position}]: model {self.spec.model!r} is "
                        "ID-based and cannot host cold items; only "
                        "modality-encoding models can")
                tokens = np.asarray(event.text_tokens)
                if tokens.size and (tokens.min() < 0
                                    or tokens.max() >= vocab):
                    raise ValueError(
                        f"event[{position}]: text token ids must be in "
                        f"[0, {vocab}); got "
                        f"[{tokens.min()}, {tokens.max()}]")
                if event.image is not None \
                        and np.asarray(event.image).shape != image_shape:
                    raise ValueError(
                        f"event[{position}]: image shape "
                        f"{np.asarray(event.image).shape} != catalogue "
                        f"{image_shape}")
                items += 1
                if event.user is not None:
                    users = self._check_user(position, event.user, users)
            else:
                if not 1 <= event.item <= items:
                    raise ValueError(
                        f"event[{position}]: item id {event.item} outside "
                        f"catalogue [1, {items}]")
                users = self._check_user(position, event.user, users)

    @staticmethod
    def _check_user(position: int, user: int, users: int) -> int:
        if user == -1 or user == users:
            return users + 1
        if not 0 <= user < users:
            raise ValueError(f"event[{position}]: user id {user} outside "
                             f"[0, {users}] (use -1 for a new user)")
        return users

    def ingest(self, events: list) -> dict:
        """Apply a batch of parsed events; returns an ingestion receipt.

        Atomic per batch: the whole list is validated first, then applied
        under the ingestion lock. Cold items are registered synchronously
        (their assigned ids are in the receipt, so a client can reference
        them in follow-up events immediately); learning from them happens
        asynchronously in the worker; *serving* them begins at the next
        hot swap.
        """
        with self._ingest_lock:
            if self._closed:
                raise RuntimeError("stream worker is closed")
            self._validate(events)
            cold_ids = []
            interactions = cold = new_users = 0
            for event in events:
                if isinstance(event, ColdItemEvent):
                    item = self.data.add_item(event.text_tokens,
                                              image=event.image,
                                              topic=event.topic)
                    cold_ids.append(item)
                    cold += 1
                    if event.user is not None:
                        new_users += self._apply_click(event.user, item)
                        interactions += 1
                else:
                    new_users += self._apply_click(event.user, event.item)
                    interactions += 1
            self.log.extend(events)
            self.counters.interactions += interactions
            self.counters.cold_items += cold
            self.counters.new_users += new_users
            receipt = {"accepted": len(events),
                       "interactions": interactions,
                       "cold_items": cold,
                       "cold_item_ids": cold_ids,
                       "new_users": new_users,
                       "events_total": self.log.total,
                       "buffer_size": len(self.replay)}
        with self._cond:
            self._events_since_round += len(events)
            self._cond.notify_all()
        return receipt

    def _apply_click(self, user: int | None, item: int) -> int:
        """Apply one interaction; returns 1 when it created a new user."""
        fresh = user is None or user == -1 \
            or user == len(self.data.sequences)
        history = self.data.add_interaction(user, item)
        if history.size >= 2:
            # A single-click history has no next-item transition to learn
            # from; the user enters the replay window on their 2nd click.
            self.replay.push(history[-self.config.max_seq_len:])
        return int(fresh)

    # -- the background loop (worker thread) ---------------------------------

    def _loop(self) -> None:
        # Same size-or-timeout trigger as the request micro-batcher: a
        # round starts when enough events queued *or* the oldest pending
        # event has waited round_timeout_s (a trickle still gets
        # learned). With nothing pending the wait is untimed — ingest()
        # and close() notify — so an idle worker never spins the
        # scheduler.
        while True:
            with self._cond:
                deadline = None
                while not self._closed:
                    pending = self._events_since_round
                    if pending >= self.config.min_events_per_round:
                        break
                    if pending > 0:
                        now = time.monotonic()
                        if deadline is None:
                            deadline = now + self.config.round_timeout_s
                        if now >= deadline:
                            break
                        self._cond.wait(timeout=deadline - now)
                    else:
                        deadline = None
                        self._cond.wait()
                if self._closed:
                    return
                self._events_since_round = 0
            # The learner thread must survive a bad round (a transient
            # encode failure, a poisoned batch): serving continues on the
            # last published generation either way, so record the error
            # where /stats surfaces it and keep draining events — a dead
            # silent thread would masquerade as "no traffic" while
            # staleness grew unbounded.
            try:
                self._round()
            except Exception as exc:  # noqa: BLE001 - surfaced via stats
                self.counters.round_errors += 1
                self.counters.last_error = f"{type(exc).__name__}: {exc}"
                time.sleep(0.1)      # don't spin if the failure persists

    def _round(self) -> None:
        """Up to ``steps_per_swap`` incremental steps, then a hot swap."""
        with self._work_lock:
            for _ in range(self.config.steps_per_swap):
                if not self._train_one_step():
                    break
            self._swap_locked()

    def _train_one_step(self) -> bool:
        histories = self.replay.sample(self._rng, self.config.batch_size)
        if not histories:
            return False
        batch = pad_sequences(histories, max_len=self.config.max_seq_len)
        loss = self.trainer.train_step(batch.item_ids, batch.mask)
        self.counters.steps += 1
        self.counters.last_loss = loss
        self._steps_since_swap += 1
        return True

    # -- hot swap ------------------------------------------------------------

    def run_steps(self, steps: int) -> int:
        """Synchronously run up to ``steps`` fine-tune steps (tests/CLI)."""
        with self._work_lock:
            done = 0
            for _ in range(steps):
                if not self._train_one_step():
                    break
                done += 1
            return done

    def swap(self) -> SwapReport:
        """Publish the current shadow weights + catalogue; blocks training.

        Safe to call from any thread (serialized with the training loop
        on the work lock). No-ops with ``kind="skipped"`` when there is
        nothing to publish — no steps taken and no new items.
        """
        with self._work_lock:
            return self._swap_locked()

    def _swap_locked(self) -> SwapReport:
        start = time.perf_counter()
        with self._ingest_lock:
            snapshot = self.data.snapshot()
            new_ids = self.data.new_item_ids(self._published_items)
            events_total = self.log.total
        steps = self._steps_since_swap
        old = self.registry.get(*self.key)
        if steps == 0 and new_ids.size == 0:
            return SwapReport(version=old.recommender.index_version,
                              kind="skipped", steps=0, new_items=0,
                              reencoded_items=0, latency_ms=0.0)
        registry = self.registry
        checkpoint = None
        if steps == 0:
            # Catalogue growth without a weight change: every existing
            # row of the serving index is still exact, so share the
            # serving model and re-encode only the new items.
            kind, model = "catalog", old.model
        else:
            kind = "full"
            model = build_model(self.spec.model, snapshot,
                                seed=self.spec.seed)
            model.to_dtype(self.shadow.param_dtype)
            model.load_state_dict(self.shadow.state_dict())
            checkpoint = self._save_checkpoint(steps)
        index = CatalogIndex(model, snapshot, dtype=registry.dtype,
                             start_version=old.recommender.index_version)
        if kind == "catalog" and old.recommender.index is not None \
                and not old.recommender.index.stale:
            base_matrix = old.recommender.index.snapshot()[0]
            index.publish_partial(base_matrix, new_ids)
            reencoded = int(new_ids.size)
        else:
            index.refresh()
            reencoded = snapshot.num_items
        recommender = registry.build_recommender(model, snapshot,
                                                 index=index)
        scenario = Scenario(spec=self.spec, dataset=snapshot, model=model,
                            recommender=recommender)
        registry.publish(scenario)
        self.service.retire_batcher(self.key)
        latency_ms = (time.perf_counter() - start) * 1e3
        self._published_items = snapshot.num_items
        self._steps_since_swap = 0
        self._events_at_last_swap = events_total
        self._last_swap_time = time.time()
        self.counters.swaps += 1
        self.counters.swap_latencies_ms.append(latency_ms)
        return SwapReport(version=index.version, kind=kind, steps=steps,
                          new_items=int(new_ids.size),
                          reencoded_items=reencoded,
                          latency_ms=latency_ms, checkpoint=checkpoint)

    def _save_checkpoint(self, steps: int) -> str | None:
        directory = self.config.checkpoint_dir
        if not directory:
            return None
        from ..nn.serialization import save_checkpoint
        version = self.counters.swaps + 1
        path = os.path.join(
            directory,
            f"{self.spec.dataset}-{self.spec.model}-v{version}.npz")
        save_checkpoint(self.shadow, path,
                        meta={"swap_version": version,
                              "fine_tune_steps": self.counters.steps,
                              "steps_in_swap": steps,
                              "scenario": f"{self.key[0]}:{self.key[1]}"})
        return path

    # -- introspection -------------------------------------------------------

    def stats_json(self) -> dict:
        """Drift/lag counters for ``/stats`` and ``repro stream``."""
        counters = self.counters
        latencies = list(counters.swap_latencies_ms)
        now = time.time()
        out = {"events_total": self.log.total,
               "interactions": counters.interactions,
               "cold_items": counters.cold_items,
               "new_users": counters.new_users,
               "buffer_size": len(self.replay),
               "buffer_pushed": self.replay.pushed,
               "steps": counters.steps,
               "steps_since_swap": self._steps_since_swap,
               "last_loss": counters.last_loss,
               "swaps": counters.swaps,
               "round_errors": counters.round_errors,
               "last_error": counters.last_error,
               "events_since_swap": self.log.total
               - self._events_at_last_swap,
               "staleness_s": now - self._last_swap_time,
               "published_items": self._published_items,
               "catalogue_items": self.data.num_items,
               "supports_cold_items": self.supports_cold_items,
               "index_version":
               self.registry.get(*self.key).recommender.index_version}
        if latencies:
            arr = np.asarray(latencies)
            out["swap_p50_ms"] = float(np.percentile(arr, 50))
            out["swap_p99_ms"] = float(np.percentile(arr, 99))
            out["swap_last_ms"] = float(arr[-1])
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the background thread; pending events stay unlearned."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        self.log.close()

    def __enter__(self) -> "FineTuneWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
