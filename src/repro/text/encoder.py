"""The text item encoder (stand-in for multilingual RoBERTa, Eq. 1).

A bidirectional Transformer over the synthetic vocabulary. Its CLS output
is the text-modality feature embedding ``t_cls`` used by the contrastive
alignment objectives; the per-token hidden states feed the multi-modal
fusion block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import init as nn_init
from ..data.catalog import TEXT_PAD
from .tokenizer import Tokenizer

__all__ = ["TextEncoderConfig", "MiniRoBERTa"]


@dataclass(frozen=True)
class TextEncoderConfig:
    """Architecture hyper-parameters of the text encoder."""

    vocab_size: int
    dim: int = 32
    num_blocks: int = 2
    num_heads: int = 4
    max_len: int = 16           # tokens incl. CLS
    dropout: float = 0.1


class MiniRoBERTa(nn.Module):
    """Bidirectional Transformer text encoder with CLS pooling.

    ``forward`` returns ``(cls, hidden, mask)`` where ``cls`` is
    ``(B, d)``, ``hidden`` is ``(B, T+1, d)`` including the CLS position,
    and ``mask`` is the boolean validity mask aligned with ``hidden``.
    """

    def __init__(self, config: TextEncoderConfig,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = nn_init.default_rng(rng)
        self.config = config
        self.token_emb = nn.Embedding(config.vocab_size, config.dim,
                                      padding_idx=TEXT_PAD, rng=rng)
        self.pos_emb = nn.Embedding(config.max_len, config.dim, rng=rng)
        self.norm = nn.LayerNorm(config.dim)
        self.drop = nn.Dropout(config.dropout)
        self.blocks = nn.ModuleList([
            nn.TransformerBlock(config.dim, config.num_heads,
                                dropout=config.dropout, rng=rng)
            for _ in range(config.num_blocks)])
        self.final_norm = nn.LayerNorm(config.dim)

    def forward(self, token_ids: np.ndarray):
        tokens = Tokenizer.with_cls(np.asarray(token_ids))
        if tokens.shape[1] > self.config.max_len:
            tokens = tokens[:, :self.config.max_len]
        valid = Tokenizer.attention_mask(tokens)
        x = self.token_emb(tokens) + self.pos_emb.prefix(tokens.shape[1])
        x = self.drop(self.norm(x))
        attn_mask = nn.padding_mask(valid)
        for block in self.blocks:
            x = block(x, mask=attn_mask)
        x = self.final_norm(x)
        cls = x[:, 0, :]
        return cls, x, valid

    def set_finetune_depth(self, top_blocks: int) -> None:
        """Freeze everything except the top ``top_blocks`` Transformer blocks.

        Matches the paper's resource-saving choice of fine-tuning only the
        top 2 blocks of each pre-trained item encoder. The final norm stays
        trainable alongside the unfrozen blocks.
        """
        for param in self.parameters():
            param.requires_grad = False
        keep = list(self.blocks)[len(self.blocks) - top_blocks:]
        for block in keep:
            for param in block.parameters():
                param.requires_grad = True
        for param in self.final_norm.parameters():
            param.requires_grad = True
