"""Deterministic "pre-training" of the text encoder.

The paper initializes its text encoder from multilingual RoBERTa, whose
value is that token embeddings already carry distributional semantics.
With no network access we synthesize the same property directly: content
tokens get embeddings that are a fixed random projection of their *world
latents* plus noise, so the encoder output is informative about item
semantics **but lives in its own coordinate system**, distinct from the
vision encoder's. Cross-modal alignment (the NICL objective) therefore has
exactly the job it has in the paper.

Style and tag tokens get free random embeddings: their meaning must be
learned from recommendation data, as it would be in reality.
"""

from __future__ import annotations

import numpy as np

from ..data.catalog import TEXT_OFFSET, text_vocab_size
from ..data.world import LatentWorld
from .encoder import MiniRoBERTa, TextEncoderConfig

__all__ = ["pretrained_text_encoder"]


def pretrained_text_encoder(world: LatentWorld, dim: int = 32,
                            num_blocks: int = 2, num_heads: int = 4,
                            seed: int = 11,
                            dropout: float = 0.1) -> MiniRoBERTa:
    """Build a MiniRoBERTa whose token embeddings encode world semantics.

    The projection ``semantic_dim -> dim`` is drawn once from ``seed``; two
    encoders built with the same seed are identical, mimicking loading the
    same public checkpoint twice.
    """
    config = TextEncoderConfig(vocab_size=text_vocab_size(), dim=dim,
                               num_blocks=num_blocks, num_heads=num_heads,
                               dropout=dropout)
    rng = np.random.default_rng(seed)
    encoder = MiniRoBERTa(config, rng=rng)

    k = world.config.semantic_dim
    projection = rng.normal(size=(k, dim)) / np.sqrt(k)
    table = encoder.token_emb.weight.data
    content = world.token_latents @ projection          # (vocab, dim)
    content = content + 0.08 * rng.normal(size=content.shape)
    end = TEXT_OFFSET + world.config.vocab_size
    table[TEXT_OFFSET:end] = content
    # CLS starts near zero so pooling is dominated by content early on.
    table[1] = 0.02 * rng.normal(size=dim)
    encoder.token_emb.weight.data = table
    return encoder
