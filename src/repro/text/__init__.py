"""``repro.text`` — tokenizer and text item encoder (RoBERTa stand-in)."""

from .encoder import MiniRoBERTa, TextEncoderConfig
from .pretrain import pretrained_text_encoder
from .tokenizer import Tokenizer

__all__ = ["MiniRoBERTa", "TextEncoderConfig", "Tokenizer",
           "pretrained_text_encoder"]
