"""Tokenizer façade over the synthetic vocabulary.

Item text in the data substrate is already a sequence of integer token ids
(the world renders text directly into id space). This module provides the
pieces a real pipeline would have around that: special-token handling (PAD
/ CLS), attention-mask construction, and a human-readable vocabulary for
examples, debugging and round-trip tests.
"""

from __future__ import annotations

import numpy as np

from ..data.catalog import TEXT_CLS, TEXT_OFFSET, TEXT_PAD, text_vocab_size
from ..data.platforms import PLATFORMS
from ..data.world import TOPICS, WorldConfig

__all__ = ["Tokenizer", "TEXT_PAD", "TEXT_CLS"]


class Tokenizer:
    """Maps between token-id arrays and synthetic word strings.

    The id layout matches :mod:`repro.data.catalog`:
    ``0`` PAD, ``1`` CLS, then content words, per-platform style tokens and
    category tag tokens.
    """

    def __init__(self, world_config: WorldConfig | None = None):
        cfg = world_config or WorldConfig()
        self._content_end = TEXT_OFFSET + cfg.vocab_size
        self._style_end = self._content_end + 8 * len(PLATFORMS)
        self.vocab_size = text_vocab_size()
        self._words: dict[int, str] = {TEXT_PAD: "<pad>", TEXT_CLS: "<cls>"}
        for token in range(TEXT_OFFSET, self._content_end):
            self._words[token] = f"w{token - TEXT_OFFSET}"
        platform_names = list(PLATFORMS)
        for token in range(self._content_end, self._style_end):
            local = token - self._content_end
            self._words[token] = f"style:{platform_names[local // 8]}:{local % 8}"
        for token in range(self._style_end, self.vocab_size):
            self._words[token] = f"tag:{TOPICS[token - self._style_end]}"
        self._ids = {word: token for token, word in self._words.items()}

    # -- id <-> word -------------------------------------------------------------

    def decode(self, token_ids: np.ndarray) -> list[str]:
        """Token ids to word strings, dropping padding."""
        return [self._words[int(t)] for t in np.asarray(token_ids).reshape(-1)
                if int(t) != TEXT_PAD]

    def encode(self, words: list[str], max_len: int | None = None) -> np.ndarray:
        """Word strings to a (optionally padded) id array."""
        ids = [self._ids[w] for w in words]
        if max_len is not None:
            ids = ids[:max_len] + [TEXT_PAD] * max(max_len - len(ids), 0)
        return np.asarray(ids, dtype=np.int64)

    # -- model inputs ------------------------------------------------------------------

    @staticmethod
    def with_cls(token_ids: np.ndarray) -> np.ndarray:
        """Prepend the CLS token to each row of a ``(B, T)`` id matrix."""
        token_ids = np.asarray(token_ids)
        cls_col = np.full((token_ids.shape[0], 1), TEXT_CLS, dtype=np.int64)
        return np.concatenate([cls_col, token_ids], axis=1)

    @staticmethod
    def attention_mask(token_ids_with_cls: np.ndarray) -> np.ndarray:
        """Validity mask (True = real token) for an id matrix."""
        return token_ids_with_cls != TEXT_PAD
