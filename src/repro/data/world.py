"""The latent semantic world behind all synthetic datasets.

The paper's central premise (its Figure 1) is that different platforms have
very different *content* but share universal *transition patterns*. The
generative world here encodes exactly that:

* All items — on every platform — live in one shared ``semantic_dim``-d
  latent space, clustered by topic (food, movie, cartoon, clothes, shoes…).
* User behaviour follows a single **global transition operator**: the next
  item's latent is predicted by rotating the user's current interest state
  with a world-level matrix shared by every platform. This is the "common
  knowledge" that makes cross-platform transfer possible.
* Texts and images are *renderings* of an item's latent — a shared token
  semantics for text and a fixed pixel decoder for images — with
  per-platform style tokens and background clutter. Content therefore
  differs across platforms (different topics, styles, clutter levels) while
  dynamics do not, exactly the asymmetry the paper exploits.

Nothing downstream may touch the latents directly: models only ever see
tokens, pixels and interaction sequences. Latents are retained on the
dataset object purely for tests and diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WorldConfig", "LatentWorld", "TOPICS"]

#: Global topic registry: every platform draws its categories from here, so
#: e.g. "food" on Bili and "food" on Kwai share a latent cluster centre —
#: which is what makes homogeneous-source transfer (Table VI diagonal) win.
TOPICS = ("food", "movie", "cartoon", "clothes", "shoes")


@dataclass
class WorldConfig:
    """Hyper-parameters of the generative world."""

    semantic_dim: int = 16
    vocab_size: int = 384
    num_style_tokens: int = 8      # per platform, appended to the vocab
    image_size: int = 16           # images are (image_size, image_size, 3)
    topic_spread: float = 0.95     # item scatter around its topic centre
    transition_momentum: float = 0.55   # weight of rotated state vs new item
    interest_noise: float = 0.18   # diffusion of the user interest state
    choice_temperature: float = 0.30    # softmax temp when picking next item
    candidate_pool: int = 64       # items scored per step (locality of choice)
    text_view_dims: int = 12       # latent dims visible to the text modality
    vision_view_dims: int = 10     # latent dims visible to the vision modality
    seed: int = 7


class LatentWorld:
    """Shared latent space, transition operator and modality renderers."""

    def __init__(self, config: WorldConfig | None = None):
        self.config = config or WorldConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        k = cfg.semantic_dim

        # Topic cluster centres, pushed apart to be distinguishable.
        centres = rng.normal(size=(len(TOPICS), k))
        centres /= np.linalg.norm(centres, axis=1, keepdims=True)
        self.topic_centres = centres * 2.0

        # The universal transition operator: a random rotation mixed with
        # identity. Applied to a user's interest state it predicts where the
        # *next* item will be — identically on every platform.
        random_mat = rng.normal(size=(k, k))
        q, _ = np.linalg.qr(random_mat)
        self.transition = 0.6 * q + 0.4 * np.eye(k)

        # Shared token semantics: each vocabulary token has a latent vector;
        # an item's text is sampled from tokens whose latents align with the
        # item latent. (Stand-in for a natural language shared by platforms.)
        self.token_latents = rng.normal(size=(cfg.vocab_size, k))
        self.token_latents /= np.linalg.norm(self.token_latents, axis=1,
                                             keepdims=True)

        # Each modality observes only a subspace of the latent (a title
        # describes some aspects of an item, a cover shows others). The
        # views overlap but neither is complete — so fusing modalities
        # genuinely recovers more of the latent than either alone, which is
        # what gives multi-modal methods their edge in the paper.
        perm = rng.permutation(k)
        self.text_view = np.zeros(k)
        self.text_view[perm[:cfg.text_view_dims]] = 1.0
        self.vision_view = np.zeros(k)
        self.vision_view[perm[k - cfg.vision_view_dims:]] = 1.0

        # Fixed pixel decoder: latent -> image, shared across platforms so
        # that visual semantics is transferable; clutter is added per
        # platform at render time.
        pixels = cfg.image_size * cfg.image_size * 3
        self.pixel_decoder = rng.normal(size=(k, pixels)) / np.sqrt(k)
        self._rng = rng

    # -- item generation -------------------------------------------------------

    def sample_items(self, topics: np.ndarray,
                     rng: np.random.Generator) -> np.ndarray:
        """Draw item latents around their topic centres."""
        cfg = self.config
        eps = rng.normal(size=(len(topics), cfg.semantic_dim))
        return self.topic_centres[topics] + cfg.topic_spread * eps

    # -- interaction generation --------------------------------------------------

    def generate_sequence(self, user_pref: np.ndarray, item_latents: np.ndarray,
                          length: int, rng: np.random.Generator,
                          noise_prob: float = 0.0) -> np.ndarray:
        """Roll out one user's interaction sequence.

        The interest state starts at the user preference and evolves by the
        *shared* transition operator; each step scores a random candidate
        pool by latent affinity and samples the next item. With probability
        ``noise_prob`` a step is replaced by a uniformly random item — the
        data noise that the paper's NID / RCL objectives are built to absorb.
        """
        cfg = self.config
        num_items = len(item_latents)
        state = user_pref.copy()
        chosen = np.empty(length, dtype=np.int64)
        for step in range(length):
            if noise_prob > 0.0 and rng.random() < noise_prob:
                pick = rng.integers(num_items)
            else:
                target = self.transition @ state
                pool = rng.choice(num_items, size=min(cfg.candidate_pool,
                                                      num_items),
                                  replace=False)
                scores = item_latents[pool] @ target / cfg.choice_temperature
                scores -= scores.max()
                probs = np.exp(scores)
                probs /= probs.sum()
                pick = pool[rng.choice(len(pool), p=probs)]
            chosen[step] = pick
            state = (cfg.transition_momentum * (self.transition @ state)
                     + (1.0 - cfg.transition_momentum) * item_latents[pick]
                     + cfg.interest_noise
                     * rng.normal(size=cfg.semantic_dim))
        return chosen

    # -- modality renderers ----------------------------------------------------------

    def render_text(self, item_latent: np.ndarray, topic: int,
                    length: int, rng: np.random.Generator,
                    style_offset: int, style_count: int,
                    tag_token: int | None = None,
                    noise_tokens: int = 0) -> np.ndarray:
        """Sample a token sequence describing an item.

        Tokens are drawn with probability proportional to the alignment of
        their latent with the item latent (the shared "language"), then a
        platform style token, an optional category tag token (the paper adds
        categorical tags on HM/Amazon) and uniform noise tokens are mixed in.
        """
        logits = self.token_latents @ (item_latent * self.text_view) * 4.0
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        content_len = max(length - noise_tokens - 1, 1)
        tokens = rng.choice(self.config.vocab_size, size=content_len, p=probs)
        extras = [self.config.vocab_size + style_offset
                  + rng.integers(style_count)]
        if tag_token is not None:
            extras.append(tag_token)
        noise = rng.integers(0, self.config.vocab_size, size=noise_tokens)
        return np.concatenate([np.asarray(extras, dtype=np.int64),
                               tokens, noise])[:length]

    def render_image(self, item_latent: np.ndarray,
                     rng: np.random.Generator,
                     clutter: float) -> np.ndarray:
        """Render an item latent to a ``(size, size, 3)`` image.

        ``clutter`` controls the amplitude of a structured low-frequency
        background (posters on Bili/Kwai vs clean product shots on
        HM/Amazon) plus pixel noise.
        """
        size = self.config.image_size
        flat = np.tanh((item_latent * self.vision_view) @ self.pixel_decoder)
        image = flat.reshape(size, size, 3)
        if clutter > 0.0:
            # Low-frequency background: outer product of two smooth waves.
            xs = np.linspace(0.0, 2.0 * np.pi, size)
            phase = rng.uniform(0.0, 2.0 * np.pi, size=2)
            freq = rng.integers(1, 4, size=2)
            wave = np.outer(np.sin(freq[0] * xs + phase[0]),
                            np.cos(freq[1] * xs + phase[1]))
            colours = rng.normal(size=3)
            image = image + clutter * wave[:, :, None] * colours
            image = image + 0.3 * clutter * rng.normal(size=image.shape)
        return np.clip(image, -2.0, 2.0)
