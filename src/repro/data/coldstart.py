"""Cold-start evaluation set construction (paper Sec. IV-A1, Table VII).

The paper counts item occurrences in the training set, calls items with
fewer than 10 occurrences *cold*, and truncates full user sequences into
sub-sequences that end at a cold item; those sub-sequences form the
cold-start evaluation set.
"""

from __future__ import annotations

import numpy as np

from .splits import EvalExample

__all__ = ["cold_items", "cold_start_examples"]


def cold_items(train_sequences: list[np.ndarray], num_items: int,
               threshold: int = 10) -> np.ndarray:
    """Item ids occurring fewer than ``threshold`` times in training data."""
    counts = np.zeros(num_items + 1, dtype=np.int64)
    for seq in train_sequences:
        np.add.at(counts, np.asarray(seq), 1)
    cold = np.where(counts[1:] < threshold)[0] + 1
    return cold


def cold_start_examples(full_sequences: list[np.ndarray],
                        train_sequences: list[np.ndarray], num_items: int,
                        threshold: int = 10,
                        min_history: int = 2) -> list[EvalExample]:
    """Sub-sequences ending at a cold item, for cold-start ranking.

    For each full user sequence, every position holding a cold item with at
    least ``min_history`` preceding interactions yields one example whose
    history is the prefix and whose target is the cold item.
    """
    cold = set(int(i) for i in cold_items(train_sequences, num_items,
                                          threshold))
    examples: list[EvalExample] = []
    for seq in full_sequences:
        seq = np.asarray(seq, dtype=np.int64)
        for pos in range(min_history, len(seq)):
            if int(seq[pos]) in cold:
                examples.append(EvalExample(history=seq[:pos],
                                            target=int(seq[pos])))
    return examples
