"""Mini-batching of user sequences for training and evaluation.

Sequences are right-padded with item id 0; every model in the repo treats
id 0 as padding. Targets for next-item prediction are the sequence shifted
left by one, with 0 marking "no target" at padded positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Batch", "pad_sequences", "batch_iterator", "shift_targets"]


@dataclass
class Batch:
    """A padded batch of user interaction sequences.

    ``item_ids`` is ``(B, L)`` with 0 padding; ``mask`` marks real items.
    """

    item_ids: np.ndarray
    mask: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.item_ids.shape[0]

    @property
    def length(self) -> int:
        return self.item_ids.shape[1]


def pad_sequences(sequences: list[np.ndarray],
                  max_len: int | None = None) -> Batch:
    """Right-pad variable-length sequences into a dense batch."""
    if not sequences:
        raise ValueError("cannot pad an empty list of sequences")
    trimmed = [np.asarray(s, dtype=np.int64)[-(max_len or len(s)):]
               if max_len else np.asarray(s, dtype=np.int64)
               for s in sequences]
    length = max(len(s) for s in trimmed)
    ids = np.zeros((len(trimmed), length), dtype=np.int64)
    mask = np.zeros((len(trimmed), length), dtype=bool)
    for row, seq in enumerate(trimmed):
        ids[row, :len(seq)] = seq
        mask[row, :len(seq)] = True
    return Batch(item_ids=ids, mask=mask)


def shift_targets(batch: Batch) -> np.ndarray:
    """Next-item targets: ``target[t] = item[t+1]``, 0 where undefined."""
    targets = np.zeros_like(batch.item_ids)
    targets[:, :-1] = batch.item_ids[:, 1:]
    return targets


def batch_iterator(sequences: list[np.ndarray], batch_size: int,
                   rng: np.random.Generator, max_len: int | None = None,
                   shuffle: bool = True, drop_last: bool = False,
                   ) -> Iterator[Batch]:
    """Yield padded batches, reshuffled per call (i.e. per epoch)."""
    order = np.arange(len(sequences))
    if shuffle:
        rng.shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = order[start:start + batch_size]
        if drop_last and len(chunk) < batch_size:
            return
        yield pad_sequences([sequences[i] for i in chunk], max_len=max_len)
