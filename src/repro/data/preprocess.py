"""Interaction preprocessing: k-core filtering, remapping, truncation.

Mirrors the paper's pipeline (Sec. IV-A1): users and items with fewer than
five interactions are filtered out iteratively, text is truncated to a
maximum token budget, and long histories keep only the most recent items.
"""

from __future__ import annotations

import numpy as np

__all__ = ["k_core_filter", "remap_item_ids", "truncate_sequences",
           "interaction_stats"]


def k_core_filter(sequences: list[np.ndarray], min_user: int = 5,
                  min_item: int = 5) -> tuple[list[np.ndarray], np.ndarray]:
    """Iteratively drop rare items and short user histories.

    Items occurring fewer than ``min_item`` times are removed from all
    sequences; users left with fewer than ``min_user`` interactions are
    dropped; repeat until stable (the standard k-core recursion).

    Returns
    -------
    (filtered_sequences, kept_item_ids):
        Sequences still use the *original* item ids; ``kept_item_ids`` is
        the sorted array of ids that survived.
    """
    seqs = [np.asarray(s, dtype=np.int64) for s in sequences]
    while True:
        counts: dict[int, int] = {}
        for seq in seqs:
            for item in seq:
                counts[int(item)] = counts.get(int(item), 0) + 1
        good_items = {i for i, c in counts.items() if c >= min_item}
        changed = False
        next_seqs = []
        for seq in seqs:
            kept = seq[np.isin(seq, list(good_items))] if good_items else seq[:0]
            if len(kept) != len(seq):
                changed = True
            if len(kept) >= min_user:
                next_seqs.append(kept)
            else:
                changed = True
        seqs = next_seqs
        if not changed:
            break
    kept_ids = np.array(sorted({int(i) for s in seqs for i in s}),
                        dtype=np.int64)
    return seqs, kept_ids


def remap_item_ids(sequences: list[np.ndarray],
                   kept_ids: np.ndarray) -> list[np.ndarray]:
    """Renumber items to contiguous ids ``1..len(kept_ids)`` (0 = padding)."""
    highest = int(kept_ids.max()) if len(kept_ids) else 0
    for seq in sequences:
        if len(seq):
            highest = max(highest, int(np.max(seq)))
    mapping = np.full(highest + 1, -1, dtype=np.int64)
    if len(kept_ids):
        mapping[kept_ids] = np.arange(1, len(kept_ids) + 1)
    remapped = []
    for seq in sequences:
        new = mapping[seq]
        if (new < 0).any():
            raise ValueError("sequence contains an item missing from kept_ids")
        remapped.append(new)
    return remapped


def truncate_sequences(sequences: list[np.ndarray],
                       max_len: int) -> list[np.ndarray]:
    """Keep only each user's most recent ``max_len`` interactions."""
    return [seq[-max_len:] for seq in sequences]


def interaction_stats(sequences: list[np.ndarray],
                      num_items: int) -> dict[str, float]:
    """Dataset statistics in the format of the paper's Table II."""
    num_users = len(sequences)
    num_actions = int(sum(len(s) for s in sequences))
    avg_length = num_actions / num_users if num_users else 0.0
    unique_pairs = sum(len(np.unique(s)) for s in sequences)
    denom = num_users * num_items
    sparsity = 1.0 - (unique_pairs / denom) if denom else 0.0
    return {
        "users": num_users,
        "items": num_items,
        "actions": num_actions,
        "avg_length": avg_length,
        "sparsity": sparsity,
    }
