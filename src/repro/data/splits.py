"""Leave-one-out evaluation splits (the paper's protocol, Sec. IV-A2).

For each user the last interaction is the test target, the second-to-last
is the validation target, and everything before is training data. Ranking
is over the *whole* item catalogue — the paper explicitly avoids sampled
metrics (citing Krichene & Rendle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EvalExample", "DatasetSplit", "leave_one_out"]


@dataclass(frozen=True)
class EvalExample:
    """A ranking task: predict ``target`` given the ``history`` prefix."""

    history: np.ndarray
    target: int


@dataclass
class DatasetSplit:
    """Train sequences plus validation / test ranking examples."""

    train: list[np.ndarray] = field(default_factory=list)
    valid: list[EvalExample] = field(default_factory=list)
    test: list[EvalExample] = field(default_factory=list)


def leave_one_out(sequences: list[np.ndarray],
                  min_train_len: int = 3) -> DatasetSplit:
    """Split chronologically ordered user sequences leave-one-out style.

    Users whose history is too short to yield a non-empty training prefix
    (fewer than ``min_train_len`` interactions) contribute to training only.
    """
    split = DatasetSplit()
    for seq in sequences:
        seq = np.asarray(seq, dtype=np.int64)
        if len(seq) < min_train_len:
            if len(seq) >= 2:
                split.train.append(seq)
            continue
        split.train.append(seq[:-2])
        split.valid.append(EvalExample(history=seq[:-2], target=int(seq[-2])))
        split.test.append(EvalExample(history=seq[:-1], target=int(seq[-1])))
    return split
