"""Dataset catalogue: the 4 source and 10 downstream datasets.

``build_dataset("kwai_food")`` returns a fully preprocessed
:class:`SeqDataset` — interaction sequences, per-item text tokens and
images, leave-one-out splits and Table II statistics — generated from the
shared :class:`repro.data.world.LatentWorld`. ``fuse_datasets`` merges the
four sources into the joint pre-training corpus the paper uses
("pre-train on fused 4 source datasets").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from .platforms import platform_for
from .preprocess import (interaction_stats, k_core_filter, remap_item_ids,
                         truncate_sequences)
from .profiles import dataset_size, get_profile
from .splits import DatasetSplit, leave_one_out
from .world import TOPICS, LatentWorld, WorldConfig

__all__ = ["SeqDataset", "build_dataset", "fuse_datasets", "source_names",
           "downstream_names", "get_world", "TEXT_PAD", "TEXT_CLS",
           "TEXT_OFFSET", "text_vocab_size", "MAX_TEXT_LEN", "MAX_SEQ_LEN"]

TEXT_PAD = 0
TEXT_CLS = 1
TEXT_OFFSET = 2          # world token ids are shifted by this amount
MAX_TEXT_LEN = 12        # stands in for the paper's 50-word cap
MAX_SEQ_LEN = 30         # most recent interactions kept per user

_STYLE_TOKEN_TOTAL = 32  # 8 style tokens × 4 platforms


def source_names() -> tuple[str, ...]:
    """The 4 source datasets used for pre-training."""
    return ("bili", "kwai", "hm", "amazon")


def downstream_names() -> tuple[str, ...]:
    """The 10 downstream datasets used for transfer evaluation."""
    return ("bili_food", "bili_movie", "bili_cartoon",
            "kwai_food", "kwai_movie", "kwai_cartoon",
            "hm_clothes", "hm_shoes",
            "amazon_clothes", "amazon_shoes")


@lru_cache(maxsize=1)
def get_world() -> LatentWorld:
    """The single shared world instance (one latent space for everything)."""
    return LatentWorld(WorldConfig())


def text_vocab_size() -> int:
    """Vocabulary size seen by the text encoder (pad+cls+tokens+styles+tags)."""
    cfg = get_world().config
    return TEXT_OFFSET + cfg.vocab_size + _STYLE_TOKEN_TOTAL + len(TOPICS)


@dataclass
class SeqDataset:
    """A preprocessed sequential-recommendation dataset.

    Item id 0 is reserved for padding everywhere; real items are
    ``1..num_items``. ``text_tokens`` / ``images`` / ``item_topics`` are
    indexed by item id (row 0 is the all-zero padding item).
    ``item_latents`` is generator ground truth retained only for tests.
    """

    name: str
    platform: str
    num_items: int
    sequences: list[np.ndarray]
    text_tokens: np.ndarray          # (num_items+1, MAX_TEXT_LEN) int64
    images: np.ndarray               # (num_items+1, S, S, 3) float64
    item_topics: np.ndarray          # (num_items+1,) int64, -1 for padding
    item_latents: np.ndarray         # (num_items+1, k) ground truth
    split: DatasetSplit = field(repr=False, default=None)
    stats: dict = field(default_factory=dict)

    @property
    def num_users(self) -> int:
        return len(self.sequences)

    def text_for(self, item_ids: np.ndarray) -> np.ndarray:
        """Token matrix for a batch of item ids."""
        return self.text_tokens[np.asarray(item_ids)]

    def images_for(self, item_ids: np.ndarray) -> np.ndarray:
        """Image stack for a batch of item ids."""
        return self.images[np.asarray(item_ids)]


def _dataset_rng(name: str, seed: int) -> np.random.Generator:
    digest = sum(ord(c) * (31 ** i) for i, c in enumerate(name)) % (2 ** 31)
    return np.random.default_rng([seed, digest])


def _sample_lengths(rng: np.random.Generator, count: int,
                    mean_length: float) -> np.ndarray:
    baseline = 5
    return baseline + rng.poisson(max(mean_length - baseline, 1.0), size=count)


@lru_cache(maxsize=32)
def _build_dataset_cached(name: str, profile_name: str,
                          seed: int) -> SeqDataset:
    profile = get_profile(profile_name)
    world = get_world()
    spec = platform_for(name)
    rng = _dataset_rng(name, seed)
    num_users, num_items = dataset_size(name, profile)

    suffix = name.split("_", 1)[1] if "_" in name else None
    if suffix is not None:
        allowed_topics = (TOPICS.index(suffix),)
    else:
        allowed_topics = spec.topic_ids()

    item_topics = rng.choice(allowed_topics, size=num_items)
    item_latents = world.sample_items(item_topics, rng)

    # Roll out user sequences with the shared transition dynamics.
    lengths = _sample_lengths(rng, num_users, spec.mean_seq_length)
    sequences = []
    for user in range(num_users):
        home = rng.choice(allowed_topics)
        pref = (world.topic_centres[home]
                + 1.1 * rng.normal(size=world.config.semantic_dim))
        seq = world.generate_sequence(pref, item_latents, int(lengths[user]),
                                      rng, noise_prob=spec.interaction_noise)
        sequences.append(seq + 1)  # shift: 0 is the padding item

    # Paper preprocessing: 5-core filter, truncate, leave-one-out split.
    filtered, kept = k_core_filter(sequences, min_user=5, min_item=5)
    remapped = remap_item_ids(filtered, kept)
    remapped = truncate_sequences(remapped, MAX_SEQ_LEN)
    kept_zero_based = kept - 1
    kept_topics = item_topics[kept_zero_based]
    kept_latents = item_latents[kept_zero_based]
    final_items = len(kept)

    # Render modalities for surviving items only; row 0 stays zero (pad).
    text = np.zeros((final_items + 1, MAX_TEXT_LEN), dtype=np.int64)
    size = world.config.image_size
    images = np.zeros((final_items + 1, size, size, 3))
    topics_col = np.full(final_items + 1, -1, dtype=np.int64)
    latents_col = np.zeros((final_items + 1, world.config.semantic_dim))
    tag_base = world.config.vocab_size + _STYLE_TOKEN_TOTAL
    for row in range(final_items):
        topic = int(kept_topics[row])
        tag = tag_base + topic if spec.uses_tag_tokens else None
        raw_len = int(rng.integers(9, MAX_TEXT_LEN + 1))
        tokens = world.render_text(
            kept_latents[row], topic, raw_len, rng,
            style_offset=spec.style_offset, style_count=8,
            tag_token=tag, noise_tokens=spec.text_noise_tokens)
        tokens = tokens[:MAX_TEXT_LEN] + TEXT_OFFSET
        text[row + 1, :len(tokens)] = tokens
        images[row + 1] = world.render_image(kept_latents[row], rng,
                                             clutter=spec.clutter)
        topics_col[row + 1] = topic
        latents_col[row + 1] = kept_latents[row]

    dataset = SeqDataset(
        name=name, platform=spec.name, num_items=final_items,
        sequences=remapped, text_tokens=text, images=images,
        item_topics=topics_col, item_latents=latents_col,
        split=leave_one_out(remapped),
        stats=interaction_stats(remapped, final_items))
    return dataset


def build_dataset(name: str, profile: str | None = None,
                  seed: int = 0) -> SeqDataset:
    """Build (or fetch from cache) a named dataset under a scale profile."""
    resolved = get_profile(profile).name
    return _build_dataset_cached(name, resolved, seed)


def fuse_datasets(datasets: list[SeqDataset], name: str = "fused") -> SeqDataset:
    """Merge datasets into one corpus with disjoint item-id ranges.

    Used for the paper's joint pre-training on all 4 sources: in-batch
    negatives then come from multiple platforms, which (per Sec. III-B4)
    teaches the model to recognise different item styles.
    """
    if not datasets:
        raise ValueError("fuse_datasets needs at least one dataset")
    text_rows = [datasets[0].text_tokens[0:1]]
    image_rows = [datasets[0].images[0:1]]
    topic_rows = [np.array([-1], dtype=np.int64)]
    latent_rows = [datasets[0].item_latents[0:1]]
    sequences: list[np.ndarray] = []
    offset = 0
    for ds in datasets:
        text_rows.append(ds.text_tokens[1:])
        image_rows.append(ds.images[1:])
        topic_rows.append(ds.item_topics[1:])
        latent_rows.append(ds.item_latents[1:])
        sequences.extend(seq + offset for seq in ds.sequences)
        offset += ds.num_items
    fused = SeqDataset(
        name=name, platform="fused", num_items=offset,
        sequences=sequences,
        text_tokens=np.concatenate(text_rows, axis=0),
        images=np.concatenate(image_rows, axis=0),
        item_topics=np.concatenate(topic_rows, axis=0),
        item_latents=np.concatenate(latent_rows, axis=0),
        split=leave_one_out(sequences),
        stats=interaction_stats(sequences, offset))
    return fused
