"""Scale profiles: how big the synthetic datasets are.

The paper runs at 600k-user scale on 8×A100; the reproduction runs on a
CPU with a numpy backend, so dataset sizes are scaled down while keeping
the *relative* proportions of the paper's Table II (Kwai/HM have 2× the
users of Bili; Bili/HM sequences are ~2× longer than Kwai/Amazon; the
downstream category slices are 1–2 orders of magnitude smaller than the
sources).

Select a profile with the ``REPRO_PROFILE`` environment variable
(``smoke`` | ``paper`` | ``full``; default ``paper``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ScaleProfile", "PROFILES", "get_profile", "dataset_size"]


@dataclass(frozen=True)
class ScaleProfile:
    """Multipliers applied to the base (paper-profile) dataset sizes."""

    name: str
    user_scale: float
    item_scale: float
    min_users: int = 40
    min_items: int = 30


PROFILES: dict[str, ScaleProfile] = {
    "smoke": ScaleProfile(name="smoke", user_scale=0.45, item_scale=0.25),
    "paper": ScaleProfile(name="paper", user_scale=1.0, item_scale=1.0),
    "full": ScaleProfile(name="full", user_scale=3.0, item_scale=2.0),
}

#: Base (users, items) at the ``paper`` profile, proportional to Table II.
_BASE_SIZES: dict[str, tuple[int, int]] = {
    # 4 sources
    "bili": (260, 420),
    "kwai": (420, 400),
    "hm": (420, 500),
    "amazon": (300, 330),
    # 10 downstream category slices
    "bili_food": (110, 200),
    "bili_movie": (150, 240),
    "bili_cartoon": (190, 270),
    "kwai_food": (150, 140),
    "kwai_movie": (170, 150),
    "kwai_cartoon": (200, 170),
    "hm_clothes": (180, 210),
    "hm_shoes": (160, 230),
    "amazon_clothes": (220, 120),
    "amazon_shoes": (220, 150),
}


def get_profile(name: str | None = None) -> ScaleProfile:
    """Resolve a profile by name, argument over environment over default."""
    resolved = name or os.environ.get("REPRO_PROFILE", "paper")
    if resolved not in PROFILES:
        raise KeyError(f"unknown profile {resolved!r}; "
                       f"choose from {sorted(PROFILES)}")
    return PROFILES[resolved]


def dataset_size(dataset_name: str, profile: ScaleProfile) -> tuple[int, int]:
    """Return (num_users, num_items) for a dataset under a profile."""
    if dataset_name not in _BASE_SIZES:
        raise KeyError(f"unknown dataset {dataset_name!r}; "
                       f"choose from {sorted(_BASE_SIZES)}")
    users, items = _BASE_SIZES[dataset_name]
    return (max(int(users * profile.user_scale), profile.min_users),
            max(int(items * profile.item_scale), profile.min_items))
