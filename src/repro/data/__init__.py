"""``repro.data`` — synthetic multi-platform multi-modal data substrate.

Stands in for the paper's Amazon / HM / Bili / Kwai corpora (see DESIGN.md
§1): one shared latent world with universal transition dynamics, rendered
per platform into text tokens and images with different styles and noise
levels, then preprocessed exactly like the paper (5-core filter,
leave-one-out splits, cold-start extraction).
"""

from .batching import Batch, batch_iterator, pad_sequences, shift_targets
from .catalog import (MAX_SEQ_LEN, MAX_TEXT_LEN, TEXT_CLS, TEXT_OFFSET,
                      TEXT_PAD, SeqDataset, build_dataset, downstream_names,
                      fuse_datasets, get_world, source_names, text_vocab_size)
from .coldstart import cold_items, cold_start_examples
from .platforms import PLATFORMS, PlatformSpec, platform_for
from .preprocess import (interaction_stats, k_core_filter, remap_item_ids,
                         truncate_sequences)
from .profiles import PROFILES, ScaleProfile, dataset_size, get_profile
from .splits import DatasetSplit, EvalExample, leave_one_out
from .world import TOPICS, LatentWorld, WorldConfig

__all__ = [
    "Batch", "pad_sequences", "batch_iterator", "shift_targets",
    "SeqDataset", "build_dataset", "fuse_datasets", "get_world",
    "source_names", "downstream_names", "text_vocab_size",
    "TEXT_PAD", "TEXT_CLS", "TEXT_OFFSET", "MAX_TEXT_LEN", "MAX_SEQ_LEN",
    "cold_items", "cold_start_examples",
    "PLATFORMS", "PlatformSpec", "platform_for",
    "k_core_filter", "remap_item_ids", "truncate_sequences",
    "interaction_stats",
    "PROFILES", "ScaleProfile", "get_profile", "dataset_size",
    "DatasetSplit", "EvalExample", "leave_one_out",
    "LatentWorld", "WorldConfig", "TOPICS",
]
