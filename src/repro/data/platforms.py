"""Platform specifications for the four data sources of the paper.

Each platform differs in *content rendering* — topics offered, visual
clutter (Bili/Kwai covers are busy posters; HM/Amazon product shots are
clean), text noise, whether categorical tag tokens are appended (the paper
adds tags on HM/Amazon) — while the underlying transition dynamics come
from the single shared :class:`repro.data.world.LatentWorld`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .world import TOPICS

__all__ = ["PlatformSpec", "PLATFORMS", "platform_for"]


@dataclass(frozen=True)
class PlatformSpec:
    """Rendering style and behaviour statistics of one platform."""

    name: str
    topics: tuple[str, ...]
    clutter: float            # image background complexity (posters vs clean)
    text_noise_tokens: int    # uniformly random tokens mixed into titles
    interaction_noise: float  # prob. a logged interaction is spurious
    style_offset: int         # where this platform's style tokens start
    uses_tag_tokens: bool     # categorical tags in text (HM / Amazon)
    mean_seq_length: float    # matches the avg.length column of Table II

    def topic_ids(self) -> tuple[int, ...]:
        return tuple(TOPICS.index(t) for t in self.topics)


#: The 4 platforms of the paper. Style-token blocks are disjoint so the text
#: encoder can tell platforms apart (as RoBERTa does from phrasing style).
PLATFORMS: dict[str, PlatformSpec] = {
    "bili": PlatformSpec(
        name="bili", topics=("food", "movie", "cartoon"),
        clutter=0.55, text_noise_tokens=2, interaction_noise=0.10,
        style_offset=0, uses_tag_tokens=False, mean_seq_length=15.4),
    "kwai": PlatformSpec(
        name="kwai", topics=("food", "movie", "cartoon"),
        clutter=0.7, text_noise_tokens=3, interaction_noise=0.12,
        style_offset=8, uses_tag_tokens=False, mean_seq_length=7.6),
    "hm": PlatformSpec(
        name="hm", topics=("clothes", "shoes"),
        clutter=0.1, text_noise_tokens=1, interaction_noise=0.04,
        style_offset=16, uses_tag_tokens=True, mean_seq_length=15.8),
    "amazon": PlatformSpec(
        name="amazon", topics=("clothes", "shoes"),
        clutter=0.15, text_noise_tokens=1, interaction_noise=0.05,
        style_offset=24, uses_tag_tokens=True, mean_seq_length=7.4),
}


def platform_for(dataset_name: str) -> PlatformSpec:
    """Resolve a dataset name like ``"kwai_food"`` to its platform spec."""
    prefix = dataset_name.split("_")[0]
    if prefix not in PLATFORMS:
        raise KeyError(f"unknown platform for dataset {dataset_name!r}")
    return PLATFORMS[prefix]
