"""``repro.obs`` — dependency-free observability for serve + stream.

Five pieces, all stdlib:

* :mod:`~repro.obs.metrics` — a thread-sharded registry of counters,
  gauges and fixed-layout log-bucketed histograms (p50/p95/p99 in O(1)
  over bounded state), rendered as Prometheus text on ``GET /metrics``;
* :mod:`~repro.obs.trace` — span-context request/swap tracing with
  probabilistic sampling and a JSONL sink, propagated across the
  micro-batcher thread handoff (``--trace-sample-rate`` /
  ``--trace-log``);
* :mod:`~repro.obs.prof` — ``REPRO_PROF=1`` per-kernel wall-time
  accumulation behind the ``repro prof`` table;
* :mod:`~repro.obs.timeline` — a fixed-memory ring-buffer time-series
  store sampling the exposition on a background interval (the memory
  behind ``GET /timeline``);
* :mod:`~repro.obs.health` — a rule-based SLO/alert engine over the
  timeline producing the tri-state ``GET /health`` model and
  ``GET /alerts`` edges, with :mod:`~repro.obs.top` rendering both as
  the live ``repro top`` dashboard.

See ``docs/observability.md`` for the instrument naming scheme, the
histogram bucket layout, the span taxonomy, the self-monitoring rule
syntax and the measured overhead (``results/obs_bench.txt``).
"""

from . import health, metrics, prof, timeline, top, trace
from .health import HealthMonitor, Rule, default_rules, monitor_service
from .metrics import (REGISTRY, Counter, Gauge, Histogram,
                      HistogramSnapshot, MetricsRegistry,
                      parse_label_string, parse_prometheus,
                      render_prometheus)
from .timeline import Timeline
from .trace import TRACER, TraceContext, Tracer

__all__ = ["metrics", "trace", "prof", "timeline", "health", "top",
           "REGISTRY", "MetricsRegistry", "Counter", "Gauge", "Histogram",
           "HistogramSnapshot", "render_prometheus", "parse_prometheus",
           "parse_label_string", "Timeline", "HealthMonitor", "Rule",
           "default_rules", "monitor_service",
           "TRACER", "Tracer", "TraceContext"]
