"""``repro.obs`` — dependency-free observability for serve + stream.

Three pieces, all stdlib:

* :mod:`~repro.obs.metrics` — a thread-sharded registry of counters,
  gauges and fixed-layout log-bucketed histograms (p50/p95/p99 in O(1)
  over bounded state), rendered as Prometheus text on ``GET /metrics``;
* :mod:`~repro.obs.trace` — span-context request/swap tracing with
  probabilistic sampling and a JSONL sink, propagated across the
  micro-batcher thread handoff (``--trace-sample-rate`` /
  ``--trace-log``);
* :mod:`~repro.obs.prof` — ``REPRO_PROF=1`` per-kernel wall-time
  accumulation behind the ``repro prof`` table.

See ``docs/observability.md`` for the instrument naming scheme, the
histogram bucket layout, the span taxonomy and the measured overhead
(``results/obs_bench.txt``).
"""

from . import metrics, prof, trace
from .metrics import (REGISTRY, Counter, Gauge, Histogram,
                      HistogramSnapshot, MetricsRegistry, parse_prometheus,
                      render_prometheus)
from .trace import TRACER, TraceContext, Tracer

__all__ = ["metrics", "trace", "prof",
           "REGISTRY", "MetricsRegistry", "Counter", "Gauge", "Histogram",
           "HistogramSnapshot", "render_prometheus", "parse_prometheus",
           "TRACER", "Tracer", "TraceContext"]
