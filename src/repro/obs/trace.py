"""Per-request / per-swap span tracing with probabilistic sampling.

Answers "where did this request's 347 ms go?" without print statements:
a sampled request (or hot swap) carries a :class:`TraceContext` through
the hot path, each stage records a span with absolute ``perf_counter``
times, and the finished trace is appended to a JSONL sink — one line
per trace, spans summing (within scheduling slack) to the end-to-end
latency.

Design constraints, in order:

1. **Disabled must be ~free.** Every span site is written as::

       ctx = trace.current()          # one thread-local read
       ...
       t = perf_counter() if ctx is not None else 0.0
       work()
       if ctx is not None:
           ctx.add_span("encode", t, perf_counter())

   so an unsampled request pays one thread-local lookup per stage
   block and a branch per span site — no context managers, no
   allocation. ``Tracer.start`` itself is a single branch when the
   sample rate is 0.

2. **Spans cross threads.** A request is parsed on an HTTP thread,
   waits in the micro-batcher queue, and executes on the batcher
   worker thread. The context object travels with the queued request
   (``_Pending.trace``), the worker stamps ``queue_wait`` and the
   batch-stage spans into it with real absolute times, and the HTTP
   thread finishes the trace. ``TraceContext.add_span`` takes a lock —
   traces are rare (sampled) so contention is irrelevant.

3. **One clock.** All span boundaries are ``time.perf_counter`` values
   relative to the context's ``t0``; wall time is recorded once at the
   start for the JSONL record.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections import deque

__all__ = ["Span", "TraceContext", "Tracer", "TRACER", "current",
           "activate", "configure", "start", "finish"]


class Span:
    """One named stage: offsets are seconds relative to the trace start."""

    __slots__ = ("name", "start", "end")

    def __init__(self, name: str, start: float, end: float):
        self.name = name
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_json(self, t0: float) -> dict:
        return {"name": self.name,
                "start_ms": (self.start - t0) * 1e3,
                "duration_ms": self.duration * 1e3}


class TraceContext:
    """The mutable trace being assembled; safe to stamp from any thread."""

    __slots__ = ("trace_id", "kind", "name", "t0", "wall0", "meta",
                 "spans", "_lock")

    def __init__(self, kind: str, name: str, meta: dict | None = None):
        self.trace_id = f"{random.getrandbits(64):016x}"
        self.kind = kind
        self.name = name
        self.t0 = time.perf_counter()
        self.wall0 = time.time()
        self.meta = dict(meta or {})
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    def add_span(self, name: str, start: float, end: float) -> None:
        """Record a stage with absolute ``perf_counter`` boundaries."""
        with self._lock:
            self.spans.append(Span(name, start, end))

    def extend(self, spans: list[Span]) -> None:
        """Adopt spans recorded against a sibling context (batch stages)."""
        with self._lock:
            self.spans.extend(spans)

    def span(self, name: str):
        """Context-manager convenience for cold paths (swap phases)."""
        return _SpanScope(self, name)

    def span_sum_ms(self) -> float:
        with self._lock:
            return sum(s.duration for s in self.spans) * 1e3

    def to_json(self, total_s: float, extra: dict | None = None) -> dict:
        with self._lock:
            spans = sorted(self.spans, key=lambda s: s.start)
            record = {"trace_id": self.trace_id, "kind": self.kind,
                      "name": self.name, "time": self.wall0,
                      "total_ms": total_s * 1e3,
                      "span_sum_ms": sum(s.duration for s in spans) * 1e3,
                      "spans": [s.to_json(self.t0) for s in spans]}
        record.update(self.meta)
        if extra:
            record.update(extra)
        return record


class _SpanScope:
    __slots__ = ("_ctx", "_name", "_start")

    def __init__(self, ctx: TraceContext, name: str):
        self._ctx = ctx
        self._name = name

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._ctx.add_span(self._name, self._start, time.perf_counter())


_ACTIVE = threading.local()


def current() -> TraceContext | None:
    """The context active on this thread, or ``None`` (the common case)."""
    return getattr(_ACTIVE, "ctx", None)


class _Activation:
    """Install ``ctx`` as this thread's current context for a scope.

    ``ctx=None`` is a true no-op scope, so call sites can write
    ``with trace.activate(maybe_ctx):`` unconditionally.
    """

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: TraceContext | None):
        self._ctx = ctx

    def __enter__(self):
        if self._ctx is not None:
            self._prev = getattr(_ACTIVE, "ctx", None)
            _ACTIVE.ctx = self._ctx
        return self._ctx

    def __exit__(self, *exc):
        if self._ctx is not None:
            _ACTIVE.ctx = self._prev


def activate(ctx: TraceContext | None) -> _Activation:
    return _Activation(ctx)


class Tracer:
    """Sampling decision + JSONL sink + a bounded in-memory tail.

    The in-memory ``recent`` deque keeps the last few finished traces
    regardless of whether a file sink is configured — tests and the
    ``repro stats`` CLI read it; a long-running server's memory stays
    bounded.
    """

    def __init__(self, sample_rate: float = 0.0, path: str | None = None,
                 keep_recent: int = 64):
        self.sample_rate = float(sample_rate)
        self.path = path
        self.recent: deque = deque(maxlen=keep_recent)
        self._lock = threading.Lock()
        self._handle = None
        self._rng = random.Random(os.getpid())

    def configure(self, sample_rate: float | None = None,
                  path: str | None = None) -> None:
        with self._lock:
            if sample_rate is not None:
                self.sample_rate = float(sample_rate)
            if path is not None and path != self.path:
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
                self.path = path

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def sample(self) -> bool:
        """One branch when tracing is off; one PRNG draw when on."""
        rate = self.sample_rate
        if rate <= 0.0:
            return False
        return rate >= 1.0 or self._rng.random() < rate

    def start(self, kind: str, name: str,
              meta: dict | None = None) -> TraceContext | None:
        if not self.sample():
            return None
        return TraceContext(kind, name, meta)

    def finish(self, ctx: TraceContext, total_s: float | None = None,
               **extra) -> dict:
        """Seal a context into a JSONL record; returns the record."""
        if total_s is None:
            total_s = time.perf_counter() - ctx.t0
        record = ctx.to_json(total_s, extra)
        self.recent.append(record)
        path = self.path
        if path is not None:
            line = json.dumps(record) + "\n"
            with self._lock:
                if self._handle is None:
                    self._handle = open(path, "a", encoding="utf-8")
                self._handle.write(line)
                self._handle.flush()
        return record

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


#: The process-global tracer; off (rate 0.0) until configured.
TRACER = Tracer()


def configure(sample_rate: float | None = None,
              path: str | None = None) -> Tracer:
    """Set the global tracer's sampling rate / JSONL sink (CLI flags)."""
    TRACER.configure(sample_rate=sample_rate, path=path)
    return TRACER


def start(kind: str, name: str, meta: dict | None = None):
    return TRACER.start(kind, name, meta)


def finish(ctx: TraceContext, total_s: float | None = None, **extra) -> dict:
    return TRACER.finish(ctx, total_s, **extra)
