"""``repro top`` — a live terminal dashboard over the serving HTTP API.

One screen answers "is it healthy and what is it doing": tri-state
health with active alerts, a QPS sparkline derived from the timeline's
counter rates, per-scenario request/latency/cache rows, pool topology
and stream totals. Everything is fetched over plain HTTP (``/stats``,
``/health``, ``/alerts``, ``/timeline``), so the dashboard attaches to
any running ``repro serve`` / ``repro stream`` without touching the
process.

The refresh loop (:func:`watch_loop`) is shared with
``repro stats --watch N`` — render function in, ANSI clear-and-redraw
out. ``--once`` renders a single frame without clearing, which is what
the CI obs-smoke job archives as a build artifact.

Rendering is a pure function of the fetched snapshot
(:func:`render_dashboard`), so tests exercise the layout without a
server.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

__all__ = ["fetch_snapshot", "render_dashboard", "sparkline",
           "watch_loop", "run_top"]

_BLOCKS = "▁▂▃▄▅▆▇█"
#: The counter whose summed delta-rate is the dashboard's QPS series.
QPS_METRIC = "repro_http_requests_total"


def sparkline(values, width: int = 32) -> str:
    """Unicode block sparkline of the last ``width`` values."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _BLOCKS[0] * len(vals)
    span = hi - lo
    top = len(_BLOCKS) - 1
    return "".join(_BLOCKS[min(int((v - lo) / span * top + 0.5), top)]
                   for v in vals)


def _get_json(url: str, timeout: float) -> dict:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        # /health answers 503 while failing — the body is still the
        # status JSON and exactly what the dashboard needs to show.
        body = exc.read().decode()
        try:
            return json.loads(body)
        except json.JSONDecodeError:
            raise exc from None


def fetch_snapshot(base_url: str, timeout: float = 10.0) -> dict:
    """One dashboard frame's worth of data from a running server."""
    base = base_url.rstrip("/")
    snapshot = {"url": base, "time": time.time()}
    snapshot["stats"] = _get_json(base + "/stats", timeout)
    snapshot["health"] = _get_json(base + "/health", timeout)
    snapshot["alerts"] = _get_json(base + "/alerts", timeout)
    try:
        snapshot["timeline"] = _get_json(
            base + f"/timeline?metric={QPS_METRIC}", timeout)
    except Exception:   # timeline is an enhancement, not a requirement
        snapshot["timeline"] = {}
    return snapshot


def _qps_points(timeline_payload: dict) -> list[float]:
    """Sum per-label-set counter rates into one QPS series by tick."""
    by_ts: dict[float, float] = {}
    for series in timeline_payload.get("series", []):
        if series.get("kind") != "counter":
            continue
        for point in series.get("points", []):
            ts, rate = point[0], point[1]
            if rate is not None:
                by_ts[ts] = by_ts.get(ts, 0.0) + rate
    return [by_ts[ts] for ts in sorted(by_ts)]


def _fmt(value, pattern: str = "{:.2f}") -> str:
    return "-" if value is None else pattern.format(value)


def render_dashboard(snapshot: dict, width: int = 78) -> str:
    """Pure snapshot → screen text (testable without a server)."""
    stats = snapshot.get("stats", {})
    health = snapshot.get("health", {})
    alerts = snapshot.get("alerts", {})
    lines: list[str] = []

    stamp = time.strftime(
        "%Y-%m-%d %H:%M:%S",
        time.localtime(snapshot.get("time", time.time())))
    title = f"repro top — {snapshot.get('url', '')}"
    pad = max(width - len(stamp) - len(title), 1)
    lines.append(title + " " * pad + stamp)

    status = str(health.get("status", "unknown")).upper()
    active = alerts.get("active", [])
    monitoring = "on" if health.get("monitoring") else "off"
    lines.append(f"health: {status}   alerts: {len(active)} active   "
                 f"monitoring: {monitoring}")

    qps = _qps_points(snapshot.get("timeline", {}))
    if qps:
        lines.append(f"qps  {sparkline(qps):<32}  "
                     f"now {qps[-1]:,.1f} req/s")
    lines.append("")

    header = (f"{'scenario':<30} {'requests':>9} {'p50 ms':>8} "
              f"{'p99 ms':>8} {'hit %':>6}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, counters in sorted(stats.get("scenarios", {}).items()):
        latency = counters.get("latency_ms") or {}
        hits = counters.get("cache_hits", 0)
        misses = counters.get("cache_misses", 0)
        total = hits + misses
        hit_pct = 100.0 * hits / total if total else 0.0
        lines.append(f"{name:<30} {counters.get('requests', 0):>9} "
                     f"{_fmt(latency.get('p50')):>8} "
                     f"{_fmt(latency.get('p99')):>8} "
                     f"{hit_pct:>6.1f}")

    pool = stats.get("pool", {})
    if pool.get("mode") == "pool":
        per_worker = pool.get("per_worker", [])
        topology = ", ".join(
            f"pid {w.get('pid')}:"
            f"{'up' if w.get('alive') else 'DOWN'}"
            for w in per_worker)
        lines.append("")
        lines.append(f"pool: {pool.get('alive', 0)}/"
                     f"{pool.get('workers', 0)} workers alive   "
                     f"[{topology}]")
    else:
        lines.append("")
        lines.append("pool: in-process")

    stream = stats.get("stream")
    if isinstance(stream, dict) and "totals" in stream:
        totals = stream["totals"]
        staleness = totals.get("max_staleness_s")
        lines.append(f"stream: swaps {totals.get('swaps', 0)} "
                     f"({totals.get('swaps_rejected', 0)} rejected), "
                     f"events {totals.get('events_total', 0)}, "
                     f"max staleness {_fmt(staleness, '{:.1f}')} s")

    if active:
        lines.append("")
        lines.append("active alerts:")
        for alert in active:
            lines.append(f"  [{alert.get('severity')}] "
                         f"{alert.get('rule')}: {alert.get('cause')}")
    return "\n".join(lines)


def watch_loop(render, interval_s: float = 2.0, once: bool = False,
               out=None, iterations: int | None = None,
               clear: bool = True) -> int:
    """Refresh ``render()`` until interrupted (top / stats --watch)."""
    out = out if out is not None else sys.stdout
    count = 0
    try:
        while True:
            text = render()
            if clear and not once:
                out.write("\x1b[2J\x1b[H")
            out.write(text.rstrip("\n") + "\n")
            out.flush()
            count += 1
            if once or (iterations is not None and count >= iterations):
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:   # pragma: no cover - interactive only
        return 0


def run_top(url: str, interval_s: float = 2.0, once: bool = False,
            iterations: int | None = None, out=None) -> int:
    """Entry point behind ``repro top``."""
    return watch_loop(lambda: render_dashboard(fetch_snapshot(url)),
                      interval_s=interval_s, once=once,
                      iterations=iterations, out=out)
