"""Rule-based SLO health engine over the timeline.

The timeline remembers; this module judges. A :class:`HealthMonitor`
evaluates a declarative rule set against a
:class:`~repro.obs.timeline.Timeline` after every sample and folds the
results into a tri-state health model:

* ``ok`` — no rule is firing;
* ``degraded`` — at least one ``severity="degraded"`` rule fires
  (service answers, an operator should look);
* ``failing`` — at least one ``severity="failing"`` rule fires
  (``GET /health`` answers **503**, a load balancer should eject).

Rule kinds (see ``docs/observability.md`` for the operator runbook):

``threshold``
    newest gauge reading (max across label sets for ``op=">"``, min for
    ``op="<"``) compared against ``limit``.
``quantile``
    ``q``-quantile of a histogram's observations inside ``window_s``
    compared against ``limit`` (e.g. request-latency p99 ceilings).
``ratio``
    windowed counter increase of label-matched series divided by the
    ``denominator`` family's increase (error-rate burn); dormant until
    the denominator saw ``min_denominator`` events.
``increase``
    windowed counter increase compared against ``limit`` (worker
    deaths, retry burn).
``liveness``
    fires when the newest ``metric`` reading drops below ``limit``
    while ``guard_metric`` is positive (pool alive-vs-total).

A rule whose series are absent is **dormant** (treated as clean), so
one default rule set serves every deployment shape: the stream rules
stay dormant on a pure serving tier, the pool rules stay dormant
in-process.

Alerts have edge semantics: a rule must breach ``for_samples``
consecutive evaluations to fire (one by default — detection within one
sampling interval), then stays firing until it has been clean for
``cooldown_s`` past the last breach (no flapping). Both edges land in
a bounded history and on ``repro_health_alerts_{fired,resolved}_total``
counters.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass

from . import metrics
from .metrics import parse_label_string
from .timeline import Timeline

__all__ = ["Rule", "HealthMonitor", "default_rules", "monitor_service",
           "STATUS_LEVELS"]

STATUS_LEVELS = {"ok": 0, "degraded": 1, "failing": 2}

_KINDS = ("threshold", "quantile", "ratio", "increase", "liveness")


@dataclass
class Rule:
    """One declarative SLO rule (see module docstring for kinds)."""

    name: str
    kind: str
    metric: str
    severity: str = "degraded"
    limit: float = 0.0
    q: float = 0.99
    op: str = ">"
    window_s: float = 60.0
    denominator: str | None = None
    label_prefix: tuple[str, str] | None = None
    min_denominator: float = 1.0
    guard_metric: str | None = None
    for_samples: int = 1
    cooldown_s: float = 30.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.severity not in STATUS_LEVELS or self.severity == "ok":
            raise ValueError(f"invalid severity {self.severity!r}")
        if self.op not in (">", "<"):
            raise ValueError(f"invalid comparator {self.op!r}")
        if self.for_samples < 1:
            raise ValueError("for_samples must be >= 1")

    def to_json(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "metric": self.metric, "severity": self.severity,
                "limit": self.limit, "window_s": self.window_s,
                "for_samples": self.for_samples,
                "cooldown_s": self.cooldown_s,
                "description": self.description}


def default_rules(*, latency_ceiling_s: float = 0.5,
                  error_rate_limit: float = 0.1,
                  staleness_limit_s: float = 600.0,
                  rejection_streak_limit: int = 2,
                  retry_limit: float = 8.0,
                  window_s: float = 60.0,
                  cooldown_s: float = 30.0) -> list[Rule]:
    """The stock SLO rule set; every knob has a CLI flagging surface.

    Rules over absent series are dormant, so the same list is correct
    for in-process serving, the worker pool, and streaming deployments.
    """
    return [
        Rule("latency_p99", kind="quantile",
             metric="repro_serve_request_seconds", q=0.99,
             limit=latency_ceiling_s, window_s=window_s,
             severity="degraded", cooldown_s=cooldown_s,
             description="end-to-end p99 latency above the SLO ceiling"),
        Rule("http_error_rate", kind="ratio",
             metric="repro_http_requests_total",
             label_prefix=("status", "5"),
             denominator="repro_http_requests_total",
             limit=error_rate_limit, min_denominator=8.0,
             window_s=window_s, severity="failing", cooldown_s=cooldown_s,
             description="HTTP 5xx responses burning the error budget"),
        Rule("pool_worker_death", kind="increase",
             metric="repro_pool_worker_deaths_total", limit=0.0,
             window_s=window_s, severity="degraded", cooldown_s=cooldown_s,
             description="a pooled serving worker died recently "
                         "(requests rebalance onto survivors)"),
        Rule("pool_workers_dead", kind="liveness",
             metric="repro_pool_workers_alive",
             guard_metric="repro_pool_workers_total", limit=1.0,
             severity="failing", cooldown_s=0.0,
             description="no live worker remains in the serving pool"),
        Rule("pool_retry_burn", kind="increase",
             metric="repro_pool_retries_total", limit=retry_limit,
             window_s=window_s, severity="degraded", cooldown_s=cooldown_s,
             description="requests repeatedly retried across workers "
                         "(drop pressure from dying workers)"),
        Rule("stream_staleness", kind="threshold",
             metric="repro_stream_staleness_seconds",
             limit=staleness_limit_s, severity="degraded",
             cooldown_s=0.0,
             description="a streaming scenario has not published a swap "
                         "within the staleness budget"),
        Rule("swap_rejection_streak", kind="threshold",
             metric="repro_stream_rejection_streak",
             limit=float(rejection_streak_limit - 1),
             severity="degraded", cooldown_s=0.0,
             description="the eval gate rejected consecutive fine-tune "
                         "rounds (model drift or poisoned data)"),
    ]


class _AlertState:
    __slots__ = ("breaches", "firing", "since", "last_breach", "value",
                 "cause")

    def __init__(self) -> None:
        self.breaches = 0
        self.firing = False
        self.since: float | None = None
        self.last_breach: float | None = None
        self.value: float | None = None
        self.cause: str | None = None


class HealthMonitor:
    """Evaluate rules after every timeline sample; hold alert state."""

    def __init__(self, timeline: Timeline, rules: list[Rule] | None = None,
                 history: int = 64):
        self.timeline = timeline
        self.rules = list(rules) if rules is not None else default_rules()
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise ValueError("duplicate rule names")
        self._states = {rule.name: _AlertState() for rule in self.rules}
        self._history: deque = deque(maxlen=history)
        self._status = "ok"
        self._causes: list[dict] = []
        self._last_eval: float | None = None
        self._lock = threading.Lock()
        self._g_status = metrics.gauge(
            "repro_health_status",
            "tri-state health (0 ok, 1 degraded, 2 failing)")
        self._g_active = metrics.gauge(
            "repro_health_alerts_active", "alerts currently firing")
        timeline.add_listener(self.evaluate)

    # -- rule evaluation -----------------------------------------------------

    @staticmethod
    def _label_pred(rule: Rule):
        if rule.label_prefix is None:
            return None
        key, prefix = rule.label_prefix

        def pred(labels: str) -> bool:
            try:
                return parse_label_string(labels).get(key, "") \
                    .startswith(prefix)
            except ValueError:
                return False
        return pred

    def _evaluate_rule(self, rule: Rule):
        """Returns ``(value, breached)``; value None = dormant."""
        timeline = self.timeline
        if rule.kind == "threshold":
            values = [v for v in timeline.latest_values(rule.metric)
                      if not math.isnan(v)]
            if not values:
                return None, False
            value = max(values) if rule.op == ">" else min(values)
            breached = value > rule.limit if rule.op == ">" \
                else value < rule.limit
            return value, breached
        if rule.kind == "liveness":
            guard = [v for v in
                     timeline.latest_values(rule.guard_metric or "")
                     if not math.isnan(v)]
            if not guard or max(guard) <= 0:
                return None, False
            values = [v for v in timeline.latest_values(rule.metric)
                      if not math.isnan(v)]
            if not values:
                return None, False
            value = max(values)
            return value, value < rule.limit
        if rule.kind == "quantile":
            value = timeline.quantile(rule.metric, rule.q, rule.window_s)
            if value is None:
                return None, False
            return value, value > rule.limit
        if rule.kind == "increase":
            value = timeline.increase(rule.metric, rule.window_s,
                                      label_pred=self._label_pred(rule))
            if value is None:
                return None, False
            return value, value > rule.limit
        # ratio
        numerator = timeline.increase(rule.metric, rule.window_s,
                                      label_pred=self._label_pred(rule))
        denominator = timeline.increase(rule.denominator or rule.metric,
                                        rule.window_s)
        if denominator is None or denominator < rule.min_denominator:
            return None, False
        value = (numerator or 0.0) / denominator
        return value, value > rule.limit

    @staticmethod
    def _cause(rule: Rule, value: float) -> str:
        comparator = "<" if rule.kind == "liveness" else rule.op
        return (f"{rule.metric} = {value:.6g} {comparator} "
                f"{rule.limit:g} ({rule.description})")

    def evaluate(self, now: float | None = None) -> str:
        """One evaluation pass over every rule; returns the status."""
        now = time.time() if now is None else float(now)
        with self._lock:
            worst = "ok"
            causes: list[dict] = []
            for rule in self.rules:
                state = self._states[rule.name]
                try:
                    value, breached = self._evaluate_rule(rule)
                except Exception:   # a broken rule must not kill health
                    value, breached = None, False
                state.value = value
                if breached:
                    state.breaches += 1
                    state.last_breach = now
                    state.cause = self._cause(rule, value)
                    if not state.firing \
                            and state.breaches >= rule.for_samples:
                        state.firing = True
                        state.since = now
                        self._edge(rule, "fired", now, state.cause)
                else:
                    state.breaches = 0
                    if state.firing and (
                            state.last_breach is None
                            or now - state.last_breach >= rule.cooldown_s):
                        state.firing = False
                        self._edge(rule, "resolved", now, state.cause)
                if state.firing:
                    causes.append({"rule": rule.name,
                                   "severity": rule.severity,
                                   "cause": state.cause,
                                   "since": state.since,
                                   "value": state.value})
                    if STATUS_LEVELS[rule.severity] > STATUS_LEVELS[worst]:
                        worst = rule.severity
            self._status = worst
            self._causes = causes
            self._last_eval = now
        self._g_status.set(STATUS_LEVELS[worst])
        self._g_active.set(len(causes))
        return worst

    def _edge(self, rule: Rule, event: str, now: float,
              cause: str | None) -> None:
        self._history.append({"rule": rule.name, "event": event,
                              "severity": rule.severity, "time": now,
                              "cause": cause})
        metrics.counter(f"repro_health_alerts_{event}_total",
                        f"health alerts {event}",
                        labels={"rule": rule.name}).inc()

    # -- payloads ------------------------------------------------------------

    def status(self) -> dict:
        """The ``GET /health`` body (readiness + liveness with reasons)."""
        with self._lock:
            rules = {}
            for rule in self.rules:
                state = self._states[rule.name]
                rules[rule.name] = {
                    "state": ("firing" if state.firing
                              else "dormant" if state.value is None
                              else "ok"),
                    "severity": rule.severity,
                    "value": state.value,
                    "limit": rule.limit,
                    "description": rule.description}
            return {"status": self._status,
                    "monitoring": True,
                    "causes": list(self._causes),
                    "alerts_active": len(self._causes),
                    "rules": rules,
                    "samples": self.timeline.samples_taken,
                    "last_evaluated": self._last_eval}

    def alerts(self) -> dict:
        """The ``GET /alerts`` body: firing now + bounded edge history."""
        with self._lock:
            return {"monitoring": True,
                    "status": self._status,
                    "active": list(self._causes),
                    "history": list(self._history),
                    "rules": [rule.to_json() for rule in self.rules]}

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.timeline.stop()


def monitor_service(service, interval_s: float = 1.0,
                    window_s: float = 300.0,
                    rules: list[Rule] | None = None,
                    start: bool = True) -> HealthMonitor:
    """Attach a timeline + health monitor to a serving-tier service.

    Samples ``service.metrics_text()`` — the single already-merged
    exposition on both tiers — so pooled deployments get cross-worker
    health for free. ``start=False`` leaves sampling to the caller
    (deterministic tests drive ``monitor.timeline.sample()`` by hand).
    """
    timeline = Timeline(window_s=window_s, interval_s=interval_s,
                        source=service.metrics_text)
    monitor = HealthMonitor(timeline, rules=rules)
    if start:
        timeline.start()
    return monitor
