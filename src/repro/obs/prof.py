"""Opt-in kernel profiling: per-op wall time for the fused hot path.

``REPRO_PROF=1`` answers "which kernel dominates a fine-tune round?":
every fused composite node (whole transformer block, attention, LN,
FFN, losses), the engine-level ``backward`` pass, gradient clipping and
the optimizer step accumulate wall-time + call counts into the metrics
registry (``repro_prof_op_seconds_total{op=...}`` /
``repro_prof_op_calls_total{op=...}``), and ``repro prof`` prints the
table.

Off is the default and costs one attribute read + branch per call site
(ops are wrapped at definition time; the wrapper's first statement
bails). ``enable()`` / ``disable()`` flip the switch at runtime for
tests and the ``repro prof`` CLI; the ``REPRO_PROF`` environment
variable seeds the initial state so whole test-suite legs can run
profiled in CI (keeping the path from rotting).
"""

from __future__ import annotations

import functools
import os
import time
from contextlib import contextmanager, nullcontext

from .metrics import REGISTRY

__all__ = ["enabled", "enable", "disable", "record", "profiled",
           "section", "snapshot", "reset_baseline", "render_table"]

_ENV = "REPRO_PROF"


class _State:
    __slots__ = ("enabled",)

    def __init__(self):
        self.enabled = os.environ.get(_ENV, "0") == "1"


_STATE = _State()
# Totals at the last reset_baseline(); the table reports deltas so one
# process can profile several phases without tearing the registry down.
_BASELINE: dict[str, tuple[float, float]] = {}


def enabled() -> bool:
    return _STATE.enabled


def enable() -> None:
    _STATE.enabled = True


def disable() -> None:
    _STATE.enabled = False


def record(op: str, seconds: float, calls: int = 1) -> None:
    """Fold one timed call into the per-op accumulators."""
    REGISTRY.counter("repro_prof_op_seconds_total",
                     "accumulated wall time per profiled op",
                     labels={"op": op}).inc(seconds)
    REGISTRY.counter("repro_prof_op_calls_total",
                     "calls per profiled op",
                     labels={"op": op}).inc(calls)


def profiled(op: str):
    """Wrap a function so REPRO_PROF=1 accumulates its wall time.

    The wrapper's disabled cost is one global read and a branch — cheap
    against the chunky fused kernels it decorates (each is many numpy
    calls over whole batches).
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _STATE.enabled:
                return fn(*args, **kwargs)
            tick = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                record(op, time.perf_counter() - tick)
        return wrapper
    return decorate


@contextmanager
def _timed(op: str):
    tick = time.perf_counter()
    try:
        yield
    finally:
        record(op, time.perf_counter() - tick)


def section(op: str):
    """``with prof.section("optimizer_step"):`` — no-op when disabled."""
    if not _STATE.enabled:
        return nullcontext()
    return _timed(op)


# -- reporting -----------------------------------------------------------------


def snapshot() -> dict[str, dict]:
    """Per-op totals since the last :func:`reset_baseline`."""
    seconds: dict[str, float] = {}
    calls: dict[str, float] = {}
    for inst in REGISTRY.instruments():
        if inst.kind != "counter":
            continue
        op = inst.labels.get("op")
        if op is None:
            continue
        if inst.name == "repro_prof_op_seconds_total":
            seconds[op] = inst.value
        elif inst.name == "repro_prof_op_calls_total":
            calls[op] = inst.value
    out = {}
    for op, total in seconds.items():
        base_s, base_c = _BASELINE.get(op, (0.0, 0.0))
        n = calls.get(op, 0.0) - base_c
        t = total - base_s
        if n <= 0:
            continue
        out[op] = {"calls": int(n), "total_ms": t * 1e3,
                   "mean_us": (t / n) * 1e6}
    return out


def reset_baseline() -> None:
    """Start a fresh profiling window (counters stay monotonic)."""
    _BASELINE.clear()
    seconds: dict[str, float] = {}
    calls: dict[str, float] = {}
    for inst in REGISTRY.instruments():
        if inst.kind != "counter":
            continue
        op = inst.labels.get("op")
        if op is None:
            continue
        if inst.name == "repro_prof_op_seconds_total":
            seconds[op] = inst.value
        elif inst.name == "repro_prof_op_calls_total":
            calls[op] = inst.value
    for op in set(seconds) | set(calls):
        _BASELINE[op] = (seconds.get(op, 0.0), calls.get(op, 0.0))


def render_table(title: str = "kernel profile") -> str:
    """The ``repro prof`` table: per-op calls / total / mean / share."""
    stats = snapshot()
    lines = [title,
             f"{'op':<28} {'calls':>8} {'total ms':>10} "
             f"{'mean µs':>10} {'share':>7}"]
    if not stats:
        lines.append("(no profiled ops recorded — is REPRO_PROF=1 set?)")
        return "\n".join(lines)
    grand = sum(s["total_ms"] for s in stats.values())
    for op in sorted(stats, key=lambda o: -stats[o]["total_ms"]):
        s = stats[op]
        share = s["total_ms"] / grand if grand > 0 else 0.0
        lines.append(f"{op:<28} {s['calls']:>8} {s['total_ms']:>10.2f} "
                     f"{s['mean_us']:>10.1f} {share:>6.1%}")
    lines.append(f"{'total':<28} {'':>8} {grand:>10.2f}")
    return "\n".join(lines)
