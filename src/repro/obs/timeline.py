"""Fixed-memory ring-buffer time-series over the metrics registry.

The registry (:mod:`repro.obs.metrics`) answers "what is the value
now"; an operator also needs "what happened over the last five
minutes" without running an external Prometheus. :class:`Timeline`
closes that gap: a background sampler parses the service's own
``/metrics`` exposition on a fixed interval and appends one point per
instrument to a per-series ring buffer.

Design constraints, in order:

1. **O(1) memory forever.** Every series is a ``deque(maxlen=capacity)``
   with ``capacity = ceil(window / interval) + 1``; sampling for a year
   retains exactly the same number of points as sampling for an hour.
   Scalar points are ``(ts, value)``; histogram points keep the
   cumulative bucket vector ``(ts, cum_counts, count, sum)`` so any two
   points diff into a :class:`~repro.obs.metrics.HistogramSnapshot`
   covering exactly the observations between them.
2. **One code path for both serving tiers.** The source is the rendered
   exposition (``service.metrics_text()``), not the live instruments —
   the in-process tier samples the global registry's render, the pooled
   tier samples the already-merged multi-process exposition, so
   ``GET /timeline`` is merged across pool workers exactly like
   ``GET /metrics`` with zero extra plumbing.
3. **Counters derive rates, not levels.** Query APIs (:meth:`rate`,
   :meth:`increase`, :meth:`quantile`) operate on windowed deltas with
   per-pair reset clamping (a restarted worker's counter dropping to 0
   never produces a negative rate).

The health engine (:mod:`repro.obs.health`) registers an
:meth:`add_listener` callback and evaluates its SLO rules after every
sample, so detection latency is bounded by one sampling interval.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

from . import metrics
from .metrics import HistogramSnapshot, parse_label_string

__all__ = ["Timeline", "TimelineSeries", "collect_families"]


def collect_families(text: str) -> dict:
    """Parse one exposition into typed families.

    Returns ``{"kinds": {family: kind}, "scalars": {(family, labels):
    value}, "histograms": {(family, base_labels): {"buckets": {le:
    value}, "sum": s, "count": n}}}``. Histogram ``_bucket``/``_sum``/
    ``_count`` component series are folded back into one family entry
    keyed by the label set *without* ``le`` (re-rendered canonically so
    the key matches across samples).
    """
    kinds: dict[str, str] = {}
    scalars: dict[tuple[str, str], float] = {}
    hists: dict[tuple[str, str], dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        meta = metrics._META_RE.match(line)
        if meta is not None:
            keyword, name, rest = meta.groups()
            if keyword == "TYPE" and name not in kinds:
                kinds[name] = rest or "untyped"
            continue
        if line.startswith("#"):
            continue
        match = metrics._SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name, labels, value = match.groups()
        labels = labels or ""
        family = None
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if kinds.get(base) == "histogram":
                    family = base
                    break
        if family is None:
            scalars[(name, labels)] = float(value)
            continue
        decoded = parse_label_string(labels)
        le = decoded.pop("le", None)
        base_labels = metrics._render_labels(metrics._label_key(decoded))
        entry = hists.setdefault((family, base_labels),
                                 {"buckets": {}, "sum": 0.0, "count": 0.0})
        if name.endswith("_bucket"):
            if le is not None:
                entry["buckets"][le] = float(value)
        elif name.endswith("_sum"):
            entry["sum"] = float(value)
        else:
            entry["count"] = float(value)
    return {"kinds": kinds, "scalars": scalars, "histograms": hists}


class TimelineSeries:
    """One instrument's bounded ring of samples."""

    __slots__ = ("name", "labels", "kind", "points", "bounds", "le_keys")

    def __init__(self, name: str, labels: str, kind: str, capacity: int):
        self.name = name
        self.labels = labels
        self.kind = kind
        #: scalar point: ``(ts, value)``; histogram point:
        #: ``(ts, cum_counts_tuple, count, sum)``.
        self.points: deque = deque(maxlen=capacity)
        self.bounds: list[float] | None = None   # finite le uppers
        self.le_keys: list[str] | None = None    # exposition key order

    def window_points(self, now: float, window_s: float) -> list:
        """Points inside ``[now - window_s, now]`` plus one baseline.

        The newest point *older* than the window edge is prepended when
        available: a delta across the edge then covers exactly the
        in-window activity, and a rule evaluated right after the first
        in-window increment still sees it.
        """
        start = now - window_s
        selected = [p for p in self.points if p[0] >= start]
        older = [p for p in self.points if p[0] < start]
        if older:
            selected.insert(0, older[-1])
        return selected


def _increase(points: list) -> float:
    """Summed positive deltas between consecutive scalar points.

    Per-pair clamping makes counter resets (a worker restart dropping a
    merged counter) read as "no increase", never a negative one.
    """
    total = 0.0
    for (_, v0), (_, v1) in zip(points, points[1:]):
        delta = v1 - v0
        if delta > 0:
            total += delta
    return total


class Timeline:
    """Background sampler + bounded store + windowed query API."""

    def __init__(self, window_s: float = 300.0, interval_s: float = 1.0,
                 source=None):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if window_s < interval_s:
            raise ValueError("window_s must be >= interval_s")
        self.window_s = float(window_s)
        self.interval_s = float(interval_s)
        self.capacity = int(math.ceil(window_s / interval_s)) + 1
        self._source = source if source is not None \
            else metrics.render_prometheus
        self._series: dict[tuple[str, str], TimelineSeries] = {}
        self._listeners: list = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_taken = 0
        self.last_sample_ts: float | None = None
        self._m_samples = metrics.counter(
            "repro_timeline_samples_total", "timeline sampling ticks")
        self._m_errors = metrics.counter(
            "repro_timeline_sample_errors_total",
            "timeline ticks whose exposition scrape failed")

    # -- collection ----------------------------------------------------------

    def _get_series(self, name: str, labels: str,
                    kind: str) -> TimelineSeries:
        key = (name, labels)
        series = self._series.get(key)
        if series is None:
            series = TimelineSeries(name, labels, kind, self.capacity)
            self._series[key] = series
        return series

    def sample(self, now: float | None = None) -> float:
        """Take one sample of every instrument; returns the timestamp."""
        now = time.time() if now is None else float(now)
        try:
            families = collect_families(self._source())
        except Exception:   # a bad scrape must not kill the sampler
            self._m_errors.inc()
            return now
        with self._lock:
            kinds = families["kinds"]
            for (name, labels), value in families["scalars"].items():
                series = self._get_series(name, labels,
                                          kinds.get(name, "untyped"))
                series.points.append((now, value))
            for (name, labels), data in families["histograms"].items():
                series = self._get_series(name, labels, "histogram")
                if series.le_keys is None:
                    finite = [le for le in data["buckets"] if le != "+Inf"]
                    finite.sort(key=float)
                    series.le_keys = finite
                    series.bounds = [float(le) for le in finite]
                cum = tuple(data["buckets"].get(le, 0.0)
                            for le in series.le_keys)
                series.points.append((now, cum, data["count"],
                                      data["sum"]))
            self.samples_taken += 1
            self.last_sample_ts = now
        self._m_samples.inc()
        for listener in list(self._listeners):
            try:
                listener(now)
            except Exception:   # pragma: no cover - listener bug guard
                pass
        return now

    def add_listener(self, fn) -> None:
        """Call ``fn(ts)`` after every sample (health rule evaluation)."""
        self._listeners.append(fn)

    # -- background sampler --------------------------------------------------

    def start(self) -> threading.Thread:
        if self._thread is not None:
            return self._thread
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-timeline", daemon=True)
        self._thread.start()
        return self._thread

    def _loop(self) -> None:
        self.sample()
        while not self._stop.wait(self.interval_s):
            self.sample()

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    # -- queries -------------------------------------------------------------

    def _matching(self, metric: str, label_pred=None) -> list[TimelineSeries]:
        out = []
        for (name, labels), series in self._series.items():
            if name != metric:
                continue
            if label_pred is not None and not label_pred(labels):
                continue
            out.append(series)
        return out

    def metric_names(self) -> list[str]:
        with self._lock:
            return sorted({name for name, _ in self._series})

    def latest_values(self, metric: str, label_pred=None) -> list[float]:
        """Newest scalar reading per matching series (NaN included)."""
        with self._lock:
            out = []
            for series in self._matching(metric, label_pred):
                if series.kind == "histogram" or not series.points:
                    continue
                out.append(series.points[-1][1])
            return out

    def increase(self, metric: str, window_s: float | None = None,
                 label_pred=None, now: float | None = None) -> float | None:
        """Summed counter increase over the window; None = no data yet."""
        window_s = self.window_s if window_s is None else window_s
        with self._lock:
            now = self._now(now)
            total, seen = 0.0, False
            for series in self._matching(metric, label_pred):
                if series.kind == "histogram":
                    continue
                points = series.window_points(now, window_s)
                if len(points) >= 2:
                    seen = True
                    total += _increase(points)
            return total if seen else None

    def rate(self, metric: str, window_s: float | None = None,
             label_pred=None, now: float | None = None) -> float | None:
        """Increase per second over the window (delta-rate for counters)."""
        window_s = self.window_s if window_s is None else window_s
        with self._lock:
            now = self._now(now)
            total, span = 0.0, 0.0
            for series in self._matching(metric, label_pred):
                if series.kind == "histogram":
                    continue
                points = series.window_points(now, window_s)
                if len(points) >= 2:
                    total += _increase(points)
                    span = max(span, points[-1][0] - points[0][0])
            return total / span if span > 0 else None

    def histogram_window(self, metric: str,
                         window_s: float | None = None,
                         now: float | None = None
                         ) -> HistogramSnapshot | None:
        """Merged snapshot of observations made inside the window."""
        window_s = self.window_s if window_s is None else window_s
        with self._lock:
            now = self._now(now)
            merged: HistogramSnapshot | None = None
            for series in self._matching(metric):
                if series.kind != "histogram" or series.bounds is None:
                    continue
                points = series.window_points(now, window_s)
                if len(points) < 2:
                    continue
                snap = _delta_snapshot(points[0], points[-1],
                                       series.bounds)
                if merged is None:
                    merged = snap
                elif merged.bounds == snap.bounds:
                    merged = HistogramSnapshot(
                        [a + b for a, b in zip(merged.counts, snap.counts)],
                        merged.total + snap.total,
                        merged.sum + snap.sum, merged.bounds)
            return merged

    def quantile(self, metric: str, q: float,
                 window_s: float | None = None,
                 now: float | None = None) -> float | None:
        snap = self.histogram_window(metric, window_s, now=now)
        if snap is None or snap.total <= 0:
            return None
        return snap.quantile(q)

    def _now(self, now: float | None) -> float:
        if now is not None:
            return float(now)
        return self.last_sample_ts if self.last_sample_ts is not None \
            else time.time()

    # -- export (GET /timeline) ----------------------------------------------

    def export(self, metric: str | None = None,
               window_s: float | None = None) -> dict:
        """JSON-ready series for ``GET /timeline``.

        Without ``metric``: the list of sampled metric names. With one:
        per-label-set point arrays — ``[ts, rate]`` for counters
        (consecutive delta-rate), ``[ts, value]`` for gauges, and
        ``[ts, rate, p50, p99]`` for histograms (per-tick deltas).
        """
        if metric is None:
            return {"monitoring": True, "metrics": self.metric_names(),
                    "window_s": self.window_s,
                    "interval_s": self.interval_s,
                    "samples": self.samples_taken}
        window_s = self.window_s if window_s is None else float(window_s)
        with self._lock:
            now = self._now(None)
            out = {"monitoring": True, "metric": metric,
                   "window_s": window_s, "interval_s": self.interval_s,
                   "series": []}
            for series in self._matching(metric):
                points = series.window_points(now, window_s)
                entry = {"labels": series.labels, "kind": series.kind,
                         "points": _export_points(series, points)}
                out["series"].append(entry)
            return out


def _delta_snapshot(p0, p1, bounds: list[float]) -> HistogramSnapshot:
    """Diff two cumulative histogram points into a per-bucket snapshot."""
    _, cum0, count0, sum0 = p0
    _, cum1, count1, sum1 = p1
    per_bucket: list[int] = []
    prev0 = prev1 = 0.0
    for c0, c1 in zip(cum0, cum1):
        per_bucket.append(int(max((c1 - prev1) - (c0 - prev0), 0)))
        prev0, prev1 = c0, c1
    overflow = int(max((count1 - prev1) - (count0 - prev0), 0))
    per_bucket.append(overflow)
    total = int(max(count1 - count0, 0))
    return HistogramSnapshot(per_bucket, total, sum1 - sum0, bounds)


def _export_points(series: TimelineSeries, points: list) -> list:
    if series.kind == "histogram":
        out = []
        for p0, p1 in zip(points, points[1:]):
            dt = p1[0] - p0[0]
            if dt <= 0:
                continue
            snap = _delta_snapshot(p0, p1, series.bounds or [])
            if snap.total > 0:
                out.append([p1[0], snap.total / dt,
                            snap.quantile(0.50), snap.quantile(0.99)])
            else:
                out.append([p1[0], 0.0, None, None])
        return out
    if series.kind == "counter":
        out = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            dt = t1 - t0
            if dt <= 0:
                continue
            out.append([t1, max(v1 - v0, 0.0) / dt])
        return out
    return [[ts, None if math.isnan(value) else value]
            for ts, value in points]
