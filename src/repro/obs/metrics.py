"""Thread-sharded metrics: counters, gauges, log-bucketed histograms.

The serving and streaming subsystems each grew a hand-rolled ``/stats``
dict; this module replaces the ad-hoc accounting with one registry of
typed instruments that is cheap enough to sit on the request hot path:

* **Counters** and **histograms** keep one shard per writer thread
  (keyed by thread id). A thread only ever mutates its own shard, so
  increments take no lock — under the GIL the final ``shard[0] += v``
  store is atomic, and a concurrent reader merging shards can observe a
  slightly *stale* value but never a torn one. Monotonicity across
  successive reads follows for free.
* **Histograms** use a fixed 64-bucket geometric layout (default
  ``√2`` growth from 1 µs, covering ~1 µs…1 h for latencies and
  1…10^9 for sizes), so p50/p95/p99 are O(buckets) merges over bounded
  state — no unbounded latency lists, no percentile pass over a deque.
  Quantile estimates return the geometric midpoint of the target
  bucket: relative error is bounded by the quarter-power of the growth
  factor (≈ ±19 % at the default layout), which the test suite pins
  against ``numpy.percentile`` on known distributions.
* The registry renders the whole instrument set as Prometheus text
  exposition (``GET /metrics`` on the serving endpoint) and as a JSON
  snapshot (the ``/stats`` families and the bench-report stage
  breakdowns read this).

``REGISTRY`` is the process-global default — the serving/streaming/
profiling instrumentation all writes there, mirroring the design of
every Prometheus client library. ``MetricsRegistry.enabled`` is a
measurement kill-switch used by ``benchmarks/test_obs_perf.py`` to A/B
the instrumented hot path against the bare one.
"""

from __future__ import annotations

import math
import re
import threading
from threading import get_ident

__all__ = ["Counter", "Gauge", "Histogram", "HistogramSnapshot",
           "MetricsRegistry", "REGISTRY", "counter", "gauge", "histogram",
           "render_prometheus", "parse_prometheus", "parse_label_string",
           "merge_expositions",
           "DEFAULT_BUCKETS", "DEFAULT_START", "DEFAULT_FACTOR"]

#: Fixed histogram geometry: 64 buckets, √2 growth from 1e-6. Bucket i
#: (1 ≤ i ≤ 62) covers (start·f^(i-1), start·f^i]; bucket 0 is
#: (-inf, start] and bucket 63 the +Inf overflow. 64 buckets at √2
#: span a 2^31.5 ≈ 3·10^9 dynamic range — microseconds to ~50 minutes
#: for latencies recorded in seconds.
DEFAULT_BUCKETS = 64
DEFAULT_START = 1e-6
DEFAULT_FACTOR = math.sqrt(2.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(label_key: tuple, extra: tuple = ()) -> str:
    pairs = list(label_key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


class _Instrument:
    """Shared naming/label plumbing for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: dict | None = None, registry=None):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = labels or {}
        for key in labels:
            if not _LABEL_RE.match(str(key)):
                raise ValueError(f"invalid label name {key!r}")
        self.name = name
        self.help = help
        self.labels = dict(labels)
        self.label_key = _label_key(labels)
        self._reg = registry

    def _on(self) -> bool:
        reg = self._reg
        return reg is None or reg._enabled


class Counter(_Instrument):
    """A monotonically increasing value, sharded per writer thread.

    Each thread owns a one-element list box in ``_shards``; only the
    owner ever writes it, so :meth:`inc` is lock-free. A thread that
    exits leaves its box behind — its contribution to the running total
    must survive the thread (counters are cumulative).
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: dict | None = None, registry=None):
        super().__init__(name, help, labels, registry)
        self._shards: dict[int, list[float]] = {}

    def inc(self, value: float = 1.0) -> None:
        if not self._on():
            return
        shards = self._shards
        tid = get_ident()
        box = shards.get(tid)
        if box is None:
            # setdefault, not assignment: never clobber a box another
            # lookup of the same tid just created (paranoia — a tid is
            # only reused after its thread died).
            box = shards.setdefault(tid, [0.0])
        box[0] += value

    @property
    def value(self) -> float:
        return sum(box[0] for box in list(self._shards.values()))

    def samples(self) -> list[tuple[tuple, float]]:
        return [((), self.value)]


class Gauge(_Instrument):
    """A point-in-time value: set/add, or computed by a callback.

    ``set_function`` turns the gauge into a pull-mode instrument whose
    value is read at collection time — used for depths that already
    live somewhere authoritative (replay-buffer size, catalogue items)
    rather than being double-booked on every mutation.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: dict | None = None, registry=None):
        super().__init__(name, help, labels, registry)
        self._value = 0.0
        self._fn = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if self._on():
            self._value = float(value)

    def add(self, value: float = 1.0) -> None:
        if not self._on():
            return
        with self._lock:
            self._value += value

    def set_function(self, fn) -> None:
        """Read ``fn()`` at collection time instead of the stored value."""
        self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:           # a dead callback must not kill
                return float("nan")     # the whole exposition
        return self._value

    def samples(self) -> list[tuple[tuple, float]]:
        return [((), self.value)]


class HistogramSnapshot:
    """Immutable merged view of a histogram: bounded, diff-able, O(1) stats.

    ``minus`` subtracts an earlier snapshot, yielding the distribution
    of only the observations made in between — how the bench reports
    carve per-run stage breakdowns out of process-lifetime instruments.
    """

    __slots__ = ("counts", "total", "sum", "bounds")

    def __init__(self, counts: list[int], total: int, sum_: float,
                 bounds: list[float]):
        self.counts = counts
        self.total = total
        self.sum = sum_
        self.bounds = bounds

    def quantile(self, q: float) -> float:
        """Geometric-midpoint estimate of the q-quantile (0 ≤ q ≤ 1)."""
        if self.total <= 0:
            return float("nan")
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count > 0:
                if i == 0:
                    return self.bounds[0]
                lo = self.bounds[i - 1]
                hi = (self.bounds[i] if i < len(self.bounds)
                      else self.bounds[-1] * (self.bounds[-1]
                                              / self.bounds[-2]))
                return math.sqrt(lo * hi)
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else float("nan")

    def minus(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        counts = [a - b for a, b in zip(self.counts, other.counts)]
        return HistogramSnapshot(counts, self.total - other.total,
                                 self.sum - other.sum, self.bounds)

    def to_json(self, scale: float = 1.0) -> dict:
        """Summary dict; ``scale`` converts units (e.g. 1e3 → ms)."""
        if self.total <= 0:
            return {"count": 0, "sum": 0.0,
                    "p50": None, "p95": None, "p99": None, "mean": None}
        return {"count": int(self.total),
                "sum": float(self.sum * scale),
                "p50": float(self.quantile(0.50) * scale),
                "p95": float(self.quantile(0.95) * scale),
                "p99": float(self.quantile(0.99) * scale),
                "mean": float(self.mean * scale)}


class Histogram(_Instrument):
    """Log-bucketed histogram with one count array per writer thread.

    ``observe`` computes the bucket index in closed form (one ``log``)
    rather than a search, and touches only the calling thread's shard:
    ``[counts…, n, sum]`` as a flat list, owner-written, reader-merged.
    All percentile math happens on merged :class:`HistogramSnapshot`
    objects so the hot path stays allocation- and lock-free.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: dict | None = None, registry=None,
                 start: float = DEFAULT_START,
                 factor: float = DEFAULT_FACTOR,
                 buckets: int = DEFAULT_BUCKETS):
        super().__init__(name, help, labels, registry)
        if start <= 0 or factor <= 1.0 or buckets < 2:
            raise ValueError("need start > 0, factor > 1, buckets >= 2")
        self.start = start
        self.factor = factor
        self.buckets = buckets
        self._inv_log_factor = 1.0 / math.log(factor)
        self._log_start = math.log(start)
        # Upper bounds of buckets 0..buckets-2; the last bucket is +Inf.
        self.bounds = [start * factor ** i for i in range(buckets - 1)]
        self._shards: dict[int, list] = {}

    def _bucket(self, value: float) -> int:
        if value <= self.start:
            return 0
        index = int(math.ceil((math.log(value) - self._log_start)
                              * self._inv_log_factor - 1e-9))
        return index if index < self.buckets else self.buckets - 1

    def observe(self, value: float) -> None:
        if not self._on():
            return
        shards = self._shards
        tid = get_ident()
        shard = shards.get(tid)
        if shard is None:
            shard = shards.setdefault(tid, [0] * self.buckets + [0, 0.0])
        shard[self._bucket(value)] += 1
        shard[self.buckets] += 1       # n
        shard[self.buckets + 1] += value  # sum

    def snapshot(self) -> HistogramSnapshot:
        counts = [0] * self.buckets
        total, sum_ = 0, 0.0
        for shard in list(self._shards.values()):
            for i in range(self.buckets):
                counts[i] += shard[i]
            total += shard[self.buckets]
            sum_ += shard[self.buckets + 1]
        return HistogramSnapshot(counts, total, sum_, self.bounds)

    def quantile(self, q: float) -> float:
        return self.snapshot().quantile(q)

    @property
    def count(self) -> int:
        return self.snapshot().total

    def samples(self) -> list[tuple[tuple, float]]:
        snap = self.snapshot()
        out, cumulative = [], 0
        for i, bound in enumerate(self.bounds):
            cumulative += snap.counts[i]
            out.append(((("le", format(bound, ".6g")),), float(cumulative)))
        out.append(((("le", "+Inf"),), float(snap.total)))
        return out


class MetricsRegistry:
    """Get-or-create instrument store + Prometheus/JSON exposition."""

    def __init__(self):
        self._instruments: dict[tuple, _Instrument] = {}
        self._lock = threading.Lock()
        self._enabled = True

    # -- kill-switch (overhead measurement only) -----------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def disable(self) -> None:
        """Turn every write into a no-op (bench baseline; not for prod)."""
        self._enabled = False

    def enable(self) -> None:
        self._enabled = True

    # -- get-or-create -------------------------------------------------------

    def _get(self, cls, name: str, help: str, labels: dict | None,
             **kwargs) -> _Instrument:
        key = (name, _label_key(labels or {}))
        found = self._instruments.get(key)   # lock-free fast path
        if found is not None:
            return found
        with self._lock:
            found = self._instruments.get(key)
            if found is None:
                found = cls(name, help=help, labels=labels, registry=self,
                            **kwargs)
                self._instruments[key] = found
            return found

    def counter(self, name: str, help: str = "",
                labels: dict | None = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: dict | None = None) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: dict | None = None,
                  start: float = DEFAULT_START,
                  factor: float = DEFAULT_FACTOR,
                  buckets: int = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, labels,
                         start=start, factor=factor, buckets=buckets)

    # -- introspection -------------------------------------------------------

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def histograms(self, prefix: str = "") -> list[Histogram]:
        return [inst for inst in self.instruments()
                if inst.kind == "histogram"
                and inst.name.startswith(prefix)]

    def render(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        by_name: dict[str, list[_Instrument]] = {}
        for inst in self.instruments():
            by_name.setdefault(inst.name, []).append(inst)
        lines = []
        for name in sorted(by_name):
            group = by_name[name]
            help_text = next((g.help for g in group if g.help), "")
            if help_text:
                lines.append(f"# HELP {name} {_escape(help_text)}")
            lines.append(f"# TYPE {name} {group[0].kind}")
            for inst in sorted(group, key=lambda g: g.label_key):
                if inst.kind == "histogram":
                    for extra, value in inst.samples():
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels(inst.label_key, extra)} "
                            f"{value:g}")
                    snap = inst.snapshot()
                    tag = _render_labels(inst.label_key)
                    lines.append(f"{name}_sum{tag} {snap.sum:g}")
                    lines.append(f"{name}_count{tag} {snap.total:g}")
                else:
                    lines.append(f"{name}{_render_labels(inst.label_key)} "
                                 f"{inst.value:g}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-ready state: ``{name: {label_string: value|summary}}``."""
        out: dict[str, dict] = {}
        for inst in self.instruments():
            label = ",".join(f"{k}={v}" for k, v in inst.label_key) or ""
            entry = out.setdefault(inst.name, {})
            if inst.kind == "histogram":
                entry[label] = inst.snapshot().to_json()
            else:
                entry[label] = inst.value
        return out

    # -- fork support --------------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument's state without discarding instruments.

        A forked worker process (``repro.serve.pool``) inherits the
        parent's shards by copy-on-write; left alone, its ``/metrics``
        exposition would replay the parent's whole pre-fork history and
        the cross-process merge would double-count it. Instruments
        themselves are kept — module-level code holds direct references
        to them (e.g. the recommender's stage histograms), so clearing
        ``_instruments`` would silently orphan those writers from the
        exposition. Gauge callbacks are dropped too: they close over
        parent-side objects whose forked copies no longer track anything
        real. Locks are recreated because fork copies them in whatever
        state some unrelated parent thread held them.
        """
        self._lock = threading.Lock()
        for inst in self.instruments():
            if inst.kind in ("counter", "histogram"):
                inst._shards.clear()
            elif inst.kind == "gauge":
                inst._value = 0.0
                inst._fn = None
                inst._lock = threading.Lock()


#: The process-global registry all built-in instrumentation writes to.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "",
            labels: dict | None = None) -> Counter:
    return REGISTRY.counter(name, help=help, labels=labels)


def gauge(name: str, help: str = "", labels: dict | None = None) -> Gauge:
    return REGISTRY.gauge(name, help=help, labels=labels)


def histogram(name: str, help: str = "", labels: dict | None = None,
              start: float = DEFAULT_START, factor: float = DEFAULT_FACTOR,
              buckets: int = DEFAULT_BUCKETS) -> Histogram:
    return REGISTRY.histogram(name, help=help, labels=labels,
                              start=start, factor=factor, buckets=buckets)


def render_prometheus() -> str:
    return REGISTRY.render()


def parse_prometheus(text: str) -> dict[tuple[str, str], float]:
    """Parse a text exposition into ``{(name, label_string): value}``.

    A deliberately small parser for the CI smoke check ("the endpoint's
    output parses and the core series exist") and the ``repro stats``
    table — not a general Prometheus client. Raises ``ValueError`` on a
    malformed sample line.
    """
    samples: dict[tuple[str, str], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                         r"(\{.*\})?\s+(\S+)$", line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name, labels, value = match.groups()
        samples[(name, labels or "")] = float(value)
    return samples


_UNESCAPE = {"n": "\n", '"': '"', "\\": "\\"}


def parse_label_string(label_str: str) -> dict[str, str]:
    """Decode a rendered label string back into ``{name: value}``.

    The escape-aware inverse of the exposition's label rendering:
    quoted values may contain ``\\"``, ``\\\\`` and ``\\n`` (which is
    why a naive ``split(",")`` cannot parse them). Accepts ``""`` for
    an instrument with no labels. Raises ``ValueError`` on malformed
    input.
    """
    if not label_str or label_str == "{}":
        return {}
    if not (label_str.startswith("{") and label_str.endswith("}")):
        raise ValueError(f"malformed label string {label_str!r}")
    body = label_str[1:-1]
    out: dict[str, str] = {}
    i, n = 0, len(body)
    try:
        while i < n:
            eq = body.index("=", i)
            key = body[i:eq]
            if body[eq + 1] != '"':
                raise ValueError(f"unquoted label value in {label_str!r}")
            j = eq + 2
            chars: list[str] = []
            while True:
                char = body[j]
                if char == "\\":
                    chars.append(_UNESCAPE.get(body[j + 1],
                                               "\\" + body[j + 1]))
                    j += 2
                elif char == '"':
                    j += 1
                    break
                else:
                    chars.append(char)
                    j += 1
            out[key] = "".join(chars)
            if j < n and body[j] == ",":
                j += 1
            i = j
    except (IndexError, ValueError) as exc:
        raise ValueError(
            f"malformed label string {label_str!r}: {exc}") from exc
    return out


_META_RE = re.compile(r"^# (HELP|TYPE) (\S+)(?: (.*))?$")
_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")


def merge_expositions(texts: list[str]) -> str:
    """Merge Prometheus expositions from several processes into one.

    The pool parent calls this over its own render plus one exposition
    per worker process, so ``GET /metrics`` stays a single scrape
    target. **Counter and histogram** samples with identical name +
    label set are summed — valid because every process uses the same
    deterministic bucket geometry (``DEFAULT_START`` /
    ``DEFAULT_FACTOR``, or whatever geometry the instrument was created
    with, which is code- not state-derived), so ``_bucket``/``_sum``/
    ``_count`` series line up exactly. **Gauges aggregate by max**, not
    sum: a point-in-time reading (staleness seconds, rejection streak,
    worker count) summed across N processes is meaningless, while max
    reports the worst/authoritative reading — and since forked workers
    reset inherited gauges to 0, the parent's authoritative value wins.
    ``NaN`` gauge readings (dead callbacks) lose to any real value.
    Family order and first-seen HELP text are preserved.
    """
    helps: dict[str, str] = {}
    kinds: dict[str, str] = {}
    family_order: list[str] = []
    rows: dict[str, list[tuple[str, str]]] = {}
    values: dict[tuple[str, str], float] = {}
    for text in texts:
        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            meta = _META_RE.match(line)
            if meta is not None:
                keyword, name, rest = meta.groups()
                if keyword == "HELP":
                    helps.setdefault(name, rest or "")
                elif name not in kinds:
                    kinds[name] = rest or "untyped"
                    family_order.append(name)
                continue
            if line.startswith("#"):
                continue
            match = _SAMPLE_RE.match(line)
            if match is None:
                raise ValueError(f"unparseable exposition line: {raw!r}")
            name, labels, value = match.groups()
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[:-len(suffix)] in kinds:
                    family = name[:-len(suffix)]
                    break
            if family not in kinds:
                kinds[family] = "untyped"
                family_order.append(family)
            key = (name, labels or "")
            if key in values:
                fresh = float(value)
                if kinds.get(family) == "gauge":
                    old = values[key]
                    # Prefer any real reading over NaN; otherwise max.
                    if math.isnan(old):
                        values[key] = fresh
                    elif not math.isnan(fresh):
                        values[key] = max(old, fresh)
                else:
                    values[key] += fresh
            else:
                values[key] = float(value)
                rows.setdefault(family, []).append(key)
    lines = []
    for family in family_order:
        if helps.get(family):
            lines.append(f"# HELP {family} {helps[family]}")
        lines.append(f"# TYPE {family} {kinds[family]}")
        for name, labels in rows.get(family, []):
            lines.append(f"{name}{labels} {values[(name, labels)]:g}")
    return "\n".join(lines) + "\n"
