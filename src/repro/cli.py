"""Command-line interface for the PMMRec reproduction.

Eleven subcommands mirror the library's main workflows::

    repro datasets [--profile paper]            # Table II style statistics
    repro train --dataset kwai_food             # train one model
    repro transfer --sources bili,kwai --target hm_shoes --setting full
    repro experiment table4 [--profile paper]   # regenerate a paper table
    repro serve --scenarios kwai_food:sasrec,bili_food:pmmrec-text
    repro bench-serve --dataset kwai_food --model sasrec
    repro stream --scenarios kwai_food:pmmrec-text   # serve + learn online
    repro bench-stream --dataset hm --model pmmrec-text
    repro prof --dataset kwai_food --model pmmrec-text  # kernel profile
    repro stats --url http://127.0.0.1:8765 [--watch 2]  # tabulate /metrics
    repro top --url http://127.0.0.1:8765       # live health dashboard

Every subcommand is importable (``main(argv)``) for tests.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMMRec (ICDE'24) reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="print dataset statistics")
    datasets.add_argument("--profile", default=None,
                          help="scale profile (smoke/paper/full)")

    train = sub.add_parser("train", help="train a model on one dataset")
    train.add_argument("--dataset", required=True)
    train.add_argument("--model", default="pmmrec",
                       help="pmmrec, pmmrec-text, pmmrec-vision or a "
                            "baseline name (sasrec, morec++, ...)")
    train.add_argument("--profile", default=None)
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--batch-size", type=int, default=24)
    train.add_argument("--lr", type=float, default=2e-3)
    train.add_argument("--dtype", default=None, choices=["float32", "float64"],
                       help="run the whole train/eval cycle at this "
                            "precision (default float64)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", default=None,
                       help="write a checkpoint to this path (npz)")

    transfer = sub.add_parser("transfer",
                              help="pre-train on sources, fine-tune on a target")
    transfer.add_argument("--sources", required=True,
                          help="comma-separated source datasets")
    transfer.add_argument("--target", required=True)
    transfer.add_argument("--setting", default="full",
                          help="full / item_encoders / user_encoder / "
                               "text_only / vision_only")
    transfer.add_argument("--profile", default=None)
    transfer.add_argument("--pretrain-epochs", type=int, default=10)
    transfer.add_argument("--finetune-epochs", type=int, default=12)
    transfer.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("name",
                            help="table1..table8 or figure3 (or 'all')")
    experiment.add_argument("--profile", default=None)
    experiment.add_argument("--workers", type=int, default=None)

    serve = sub.add_parser("serve",
                           help="run the online recommendation service")
    serve.add_argument("--scenarios", required=True,
                       help="comma-separated dataset:model[:checkpoint] "
                            "specs, e.g. kwai_food:sasrec,bili_food:pmmrec")
    serve.add_argument("--profile", default=None)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--dtype", default="float32",
                       choices=["float32", "float64"],
                       help="serving precision for models and indices")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batch flush size")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batch flush timeout")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU entries per scenario (0 disables)")
    serve.add_argument("--no-exclude-seen", action="store_true",
                       help="allow recommending items already in a history")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes for the multi-process serving "
                            "tier (0 = in-process, the default)")
    serve.add_argument("--smoke", action="store_true",
                       help="start in-process, answer one request per "
                            "scenario over HTTP, then exit (CI)")
    _add_retrieval_args(serve)
    _add_obs_args(serve)

    stream = sub.add_parser("stream",
                            help="serve with online continual learning "
                                 "(event ingestion + background "
                                 "fine-tuning + hot swaps)")
    stream.add_argument("--scenarios", required=True,
                        help="comma-separated dataset:model[:checkpoint] "
                             "specs (models must support incremental "
                             "training to stream)")
    stream.add_argument("--profile", default=None)
    stream.add_argument("--host", default="127.0.0.1")
    stream.add_argument("--port", type=int, default=8765)
    stream.add_argument("--dtype", default="float32",
                        choices=["float32", "float64"])
    stream.add_argument("--max-batch", type=int, default=32)
    stream.add_argument("--max-wait-ms", type=float, default=2.0)
    stream.add_argument("--cache-size", type=int, default=1024)
    stream.add_argument("--no-exclude-seen", action="store_true")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--workers", type=int, default=0,
                        help="worker processes for the multi-process serving "
                             "tier (0 = in-process); hot swaps fence every "
                             "worker onto the new generation")
    stream.add_argument("--stream-batch-size", type=int, default=16,
                        help="replayed histories per fine-tune step")
    stream.add_argument("--stream-lr", type=float, default=5e-4,
                        help="incremental-step learning rate")
    stream.add_argument("--steps-per-swap", type=int, default=8,
                        help="fine-tune steps between hot swaps")
    stream.add_argument("--min-events", type=int, default=8,
                        help="events that wake the fine-tune worker")
    stream.add_argument("--buffer-size", type=int, default=2048,
                        help="replay-buffer capacity (histories)")
    stream.add_argument("--checkpoint-dir", default=None,
                        help="write a versioned checkpoint per full swap")
    stream.add_argument("--event-log", default=None,
                        help="append accepted events to this JSONL file")
    stream.add_argument("--no-eval-gate", action="store_true",
                        help="publish swaps ungated (PR-5 behavior)")
    stream.add_argument("--gate-tolerance", type=float, default=0.1,
                        help="allowed held-out HR@10/NDCG@10 drop before "
                             "a swap is rejected")
    stream.add_argument("--eval-set-size", type=int, default=64,
                        help="validation examples frozen for the gate "
                             "at startup")
    stream.add_argument("--eval-holdout-frac", type=float, default=0.1,
                        help="probability an ingested event is held out "
                             "of training for gate evaluation")
    stream.add_argument("--replay-bias", type=float, default=0.0,
                        help="priority exponent for replay sampling "
                             "(0 = uniform)")
    stream.add_argument("--shadow-mode", action="store_true",
                        help="never publish weight updates; log candidate "
                             "ranks to --shadow-log instead")
    stream.add_argument("--shadow-log", default=None,
                        help="JSONL file for shadow-mode rank diffs")
    stream.add_argument("--smoke", action="store_true",
                        help="in-process: ingest events over HTTP, "
                             "fine-tune, hot-swap, verify, exit (CI)")
    _add_retrieval_args(stream)
    _add_obs_args(stream)

    bench_stream = sub.add_parser(
        "bench-stream",
        help="benchmark the continual-learning loop under serving load")
    bench_stream.add_argument("--dataset", default="hm")
    bench_stream.add_argument("--model", default="pmmrec-text")
    bench_stream.add_argument("--profile", default=None)
    bench_stream.add_argument("--duration", type=float, default=8.0,
                              help="seconds of continuous client load")
    bench_stream.add_argument("--clients", type=int, default=4,
                              help="concurrent request threads")
    bench_stream.add_argument("--k", type=int, default=10)
    bench_stream.add_argument("--event-batch", type=int, default=16)
    bench_stream.add_argument("--event-waves", type=int, default=6)
    bench_stream.add_argument("--cold-items", type=int, default=6)
    bench_stream.add_argument("--steps-per-swap", type=int, default=4)
    bench_stream.add_argument("--stream-batch-size", type=int, default=8)
    bench_stream.add_argument("--stream-lr", type=float, default=5e-4)
    bench_stream.add_argument("--no-eval-gate", action="store_true",
                              help="benchmark ungated swaps (PR-5 "
                                   "behavior)")
    bench_stream.add_argument("--gate-tolerance", type=float, default=0.1)
    bench_stream.add_argument("--replay-bias", type=float, default=0.5)
    bench_stream.add_argument("--poison-events", type=int, default=0,
                              help="inject this many poisoned events "
                                   "mid-run to exercise the gate")
    bench_stream.add_argument("--workers", type=int, default=0,
                              help="serve through a worker pool of this "
                                   "size (0 = in-process)")
    bench_stream.add_argument("--seed", type=int, default=0)
    _add_retrieval_args(bench_stream)

    bench = sub.add_parser("bench-serve",
                           help="benchmark serving latency/throughput")
    bench.add_argument("--dataset", required=True)
    bench.add_argument("--model", default="sasrec")
    bench.add_argument("--checkpoint", default=None)
    bench.add_argument("--profile", default=None)
    bench.add_argument("--requests", type=int, default=256)
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument("--batch", type=int, default=32,
                       help="micro-batch width for the batched path")
    bench.add_argument("--dtype", default="float32",
                       choices=["float32", "float64"])
    bench.add_argument("--workers", type=int, default=0,
                       help="run the worker-count scaling sweep up to N "
                            "pool processes over HTTP (0 = the in-process "
                            "path comparison only)")
    bench.add_argument("--clients", type=int, default=8,
                       help="keep-alive client threads for the pool sweep")
    bench.add_argument("--seed", type=int, default=0)
    _add_retrieval_args(bench)

    prof = sub.add_parser("prof",
                          help="profile the fused training kernels "
                               "(REPRO_PROF) over a few train steps")
    prof.add_argument("--dataset", default="kwai_food")
    prof.add_argument("--model", default="pmmrec-text")
    prof.add_argument("--profile", default=None)
    prof.add_argument("--steps", type=int, default=8)
    prof.add_argument("--batch-size", type=int, default=16)
    prof.add_argument("--seed", type=int, default=0)

    stats = sub.add_parser("stats",
                           help="fetch and tabulate /metrics + /stats "
                                "from a running server")
    stats.add_argument("--url", default="http://127.0.0.1:8765",
                       help="base URL of a repro serve/stream process")
    stats.add_argument("--prefix", default="repro_",
                       help="only show metric families with this prefix")
    stats.add_argument("--watch", type=float, default=None, metavar="N",
                       help="refresh the table every N seconds "
                            "(Ctrl-C to stop)")

    top = sub.add_parser("top",
                         help="live terminal dashboard over /health, "
                              "/alerts, /stats and /timeline")
    top.add_argument("--url", default="http://127.0.0.1:8765",
                     help="base URL of a repro serve/stream process")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (for scripts/CI)")
    return parser


def _add_obs_args(sub) -> None:
    """Observability flags shared by ``serve`` and ``stream``."""
    sub.add_argument("--trace-sample-rate", type=float, default=0.0,
                     help="fraction of requests (and swaps) that record "
                          "a span trace (0 disables, 1 traces all)")
    sub.add_argument("--trace-log", default=None,
                     help="append finished traces to this JSONL file")
    sub.add_argument("--access-log", default=None,
                     help="append one JSONL line per HTTP request "
                          "(method, path, status, latency_ms, trace_id)")
    sub.add_argument("--no-monitor", action="store_true",
                     help="disable the self-monitoring timeline + SLO "
                          "health engine (on by default)")
    sub.add_argument("--monitor-interval", type=float, default=1.0,
                     help="seconds between timeline samples")
    sub.add_argument("--monitor-window", type=float, default=300.0,
                     help="seconds of time-series history kept in memory "
                          "(ring buffer; memory is fixed by window/interval)")
    sub.add_argument("--latency-slo-ms", type=float, default=500.0,
                     help="p99 request-latency ceiling for the "
                          "latency_p99 health rule")


def _add_retrieval_args(sub) -> None:
    """Retrieval-backend flags shared by ``serve`` and ``bench-serve``."""
    sub.add_argument("--retrieval", default="exact",
                     choices=["exact", "ivf", "lsh"],
                     help="top-k backend: exact full-catalogue scoring, "
                          "IVF (k-means cells) or random-hyperplane LSH")
    sub.add_argument("--nlist", type=int, default=None,
                     help="IVF cells (default 4*sqrt(num_items))")
    sub.add_argument("--nprobe", type=int, default=None,
                     help="IVF cells scanned per query (default nlist/32, "
                          "floor 4)")
    sub.add_argument("--lsh-bits", type=int, default=None,
                     help="LSH code width in bits (default 128)")
    sub.add_argument("--ann-min-items", type=int, default=None,
                     help="catalogue-size floor below which retrieval "
                          "falls back to exact scoring (default 1024)")


def _ann_params(args) -> dict | None:
    """Backend constructor kwargs from parsed CLI flags."""
    if args.retrieval == "ivf":
        return {"nlist": args.nlist, "nprobe": args.nprobe,
                "seed": args.seed}
    if args.retrieval == "lsh":
        return {"bits": args.lsh_bits, "seed": args.seed}
    return None


def _cmd_datasets(args) -> int:
    from .experiments import table2_datasets
    results = table2_datasets.run(profile=args.profile)
    print(table2_datasets.render(results))
    return 0


def _make_model(name: str, dataset, seed: int):
    from .serve.registry import build_model
    return build_model(name, dataset, seed=seed)


def _cmd_train(args) -> int:
    from .data import build_dataset
    from .eval import evaluate_model
    from .train import TrainConfig, Trainer
    dataset = build_dataset(args.dataset, profile=args.profile)
    model = _make_model(args.model, dataset, args.seed)
    config = TrainConfig(epochs=args.epochs, batch_size=args.batch_size,
                         lr=args.lr, dtype=args.dtype, seed=args.seed,
                         verbose=True)
    multitask = args.model.startswith("pmmrec")
    result = Trainer(model, dataset, config, pretraining=multitask).fit()
    metrics = evaluate_model(model, dataset, dataset.split.test,
                             ks=(10, 20, 50))
    print(f"best val {config.metric}: {result.best_metric:.4f} "
          f"(epoch {result.best_epoch}/{result.epochs_run})")
    print("test:", {k: round(v, 4) for k, v in metrics.items()})
    if args.save:
        from .nn.serialization import save_checkpoint
        save_checkpoint(model, args.save)
        print(f"checkpoint written to {args.save}")
    return 0


def _cmd_transfer(args) -> int:
    from .core import PMMRec, PMMRecConfig, transferred_model
    from .data import build_dataset, fuse_datasets
    from .eval import evaluate_model
    from .train import TrainConfig, Trainer
    names = [s.strip() for s in args.sources.split(",") if s.strip()]
    sources = [build_dataset(n, profile=args.profile) for n in names]
    corpus = fuse_datasets(sources) if len(sources) > 1 else sources[0]
    print(f"pre-training on {', '.join(names)} "
          f"({corpus.num_users} users / {corpus.num_items} items)")
    model = PMMRec(PMMRecConfig(seed=args.seed))
    Trainer(model, corpus,
            TrainConfig(epochs=args.pretrain_epochs, batch_size=32,
                        seed=args.seed, verbose=True),
            pretraining=True).fit()

    target = build_dataset(args.target, profile=args.profile)
    deployed = transferred_model(model, args.setting)
    result = Trainer(deployed, target,
                     TrainConfig(epochs=args.finetune_epochs, batch_size=24,
                                 seed=args.seed, verbose=True),
                     pretraining=False).fit()
    metrics = evaluate_model(deployed, target, target.split.test, ks=(10,))
    print(f"[{args.setting}] best val: {result.best_metric:.4f}; "
          f"test: {({k: round(v, 4) for k, v in metrics.items()})}")
    return 0


def _cmd_experiment(args) -> int:
    from .experiments import ALL_TABLES
    names = list(ALL_TABLES) if args.name == "all" else [args.name]
    for name in names:
        if name not in ALL_TABLES:
            print(f"unknown experiment {name!r}; "
                  f"choose from {sorted(ALL_TABLES)} or 'all'",
                  file=sys.stderr)
            return 2
    for name in names:
        module = ALL_TABLES[name]
        try:
            results = module.run(profile=args.profile, workers=args.workers)
        except TypeError:
            results = module.run(profile=args.profile)
        print(module.render(results))
    return 0


def _build_service(args):
    from .serve import ModelRegistry, RecommendationService
    registry = ModelRegistry(profile=args.profile, dtype=args.dtype,
                             exclude_seen=not args.no_exclude_seen,
                             retrieval=args.retrieval,
                             ann_params=_ann_params(args),
                             min_ann_items=args.ann_min_items)
    for spec in args.scenarios.split(","):
        if not spec.strip():
            continue
        scenario = registry.add(spec.strip(), seed=args.seed)
        info = scenario.describe()
        print(f"loaded {info['dataset']}:{info['model']} "
              f"({info['num_items']} items, index v{info['index_version']}, "
              f"{info['index_nbytes'] / 1024:.0f} KiB, "
              f"retrieval={info['retrieval']['retrieval']})")
    workers = getattr(args, "workers", 0) or 0
    if workers > 0:
        # Fork the pool before anything starts threads (HTTP server,
        # stream fine-tune workers): forked children must never inherit
        # a parent thread's locks mid-flight.
        from .serve.pool import PooledRecommendationService
        service = PooledRecommendationService(
            registry, workers=workers, max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms, cache_size=args.cache_size)
        print(f"worker pool: {workers} processes "
              f"(shared-memory catalogues, generation-fenced swaps)")
        return service
    return RecommendationService(registry, max_batch=args.max_batch,
                                 max_wait_ms=args.max_wait_ms,
                                 cache_size=args.cache_size)


def _configure_obs(args) -> None:
    """Apply the shared --trace-sample-rate/--trace-log flags."""
    from .obs import trace
    if args.trace_sample_rate or args.trace_log:
        trace.configure(sample_rate=args.trace_sample_rate,
                        path=args.trace_log)


def _enable_monitoring(service, args) -> None:
    """Attach the self-monitoring timeline + health engine (default on)."""
    if args.no_monitor:
        return
    from .obs.health import default_rules
    service.enable_monitoring(
        interval_s=args.monitor_interval, window_s=args.monitor_window,
        rules=default_rules(latency_ceiling_s=args.latency_slo_ms / 1e3))
    print(f"self-monitoring: sampling every {args.monitor_interval:g}s, "
          f"{args.monitor_window:g}s window, "
          f"p99 SLO {args.latency_slo_ms:g} ms "
          f"(/health /alerts /timeline, `repro top`)")


def _cmd_serve(args) -> int:
    from .serve import make_server, serve_forever
    service = _build_service(args)
    _configure_obs(args)
    _enable_monitoring(service, args)
    if not args.smoke:
        serve_forever(service, host=args.host, port=args.port,
                      access_log=args.access_log)
        return 0
    # Smoke mode: bind an ephemeral port, answer one real HTTP request per
    # scenario, verify it against direct top-k retrieval, and exit.
    import json as _json
    import urllib.request

    import numpy as np
    server = make_server(service, host=args.host, port=0,
                         access_log=args.access_log)
    server.start_background()
    failures = 0
    try:
        for scenario in service.registry:
            dataset = scenario.dataset
            history = [int(i) for i in dataset.split.test[0].history]
            body = _json.dumps({"dataset": scenario.spec.dataset,
                                "model": scenario.spec.model,
                                "history": history, "k": 10}).encode()
            request = urllib.request.Request(
                server.url + "/recommend", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = _json.load(response)
            # Capture routing counters before the out-of-band
            # verification call below inflates them: the printed
            # numbers describe the HTTP-served traffic only.
            routing = scenario.recommender.describe_retrieval()
            expected = scenario.recommender.recommend(history, k=10)
            ok = np.array_equal(payload["items"], expected.items)
            failures += 0 if ok else 1
            print(f"smoke {scenario.spec.dataset}:{scenario.spec.model} "
                  f"-> top-{len(payload['items'])} "
                  f"{'OK' if ok else 'MISMATCH'} "
                  f"({payload['latency_ms']:.1f} ms; "
                  f"retrieval={routing['retrieval']} "
                  f"ann_batches={routing['ann_batches']} "
                  f"fallbacks={routing['fallbacks']})")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    print("serve smoke:", "PASS" if failures == 0 else "FAIL")
    return 1 if failures else 0


def _stream_config(args):
    from .stream import StreamConfig
    return StreamConfig(batch_size=args.stream_batch_size,
                        lr=args.stream_lr,
                        steps_per_swap=args.steps_per_swap,
                        min_events_per_round=args.min_events,
                        buffer_capacity=args.buffer_size,
                        checkpoint_dir=args.checkpoint_dir,
                        log_path=args.event_log,
                        eval_gate=not args.no_eval_gate,
                        gate_tolerance=args.gate_tolerance,
                        eval_set_size=args.eval_set_size,
                        eval_holdout_frac=args.eval_holdout_frac,
                        replay_bias=args.replay_bias,
                        shadow_mode=args.shadow_mode,
                        shadow_log_path=args.shadow_log,
                        seed=args.seed)


def _cmd_stream(args) -> int:
    from .serve import make_server, serve_forever
    from .stream import StreamManager, run_stream_smoke
    service = _build_service(args)
    # Smoke mode drives the fine-tune worker synchronously so the
    # ingest → steps → swap → verify sequence is deterministic; the
    # live service runs the background worker threads.
    manager = StreamManager(service, _stream_config(args),
                            start=not args.smoke)
    service.attach_stream(manager)
    for (dataset, model), worker in manager.workers():
        print(f"streaming {dataset}:{model} "
              f"(cold items {'supported' if worker.supports_cold_items else 'unsupported (ID-based model)'}, "
              f"{args.steps_per_swap} steps/swap)")
    for key, reason in manager.stats().get("unstreamable", {}).items():
        print(f"serving only (no stream) {key}: {reason}")
    _configure_obs(args)
    _enable_monitoring(service, args)
    if not args.smoke:
        serve_forever(service, host=args.host, port=args.port,
                      access_log=args.access_log)
        return 0
    server = make_server(service, host=args.host, port=0,
                         access_log=args.access_log)
    server.start_background()
    try:
        return run_stream_smoke(service, manager, server.url,
                                seed=args.seed)
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _cmd_bench_stream(args) -> int:
    from .stream import bench_stream, render_stream_report
    report = bench_stream(
        args.dataset, args.model, profile=args.profile,
        duration_s=args.duration, client_threads=args.clients, k=args.k,
        event_batch=args.event_batch, event_waves=args.event_waves,
        cold_items=args.cold_items, retrieval=args.retrieval,
        ann_params=_ann_params(args),
        min_ann_items=(1 if args.ann_min_items is None
                       else args.ann_min_items),
        steps_per_swap=args.steps_per_swap,
        batch_size=args.stream_batch_size, lr=args.stream_lr,
        eval_gate=not args.no_eval_gate,
        gate_tolerance=args.gate_tolerance,
        replay_bias=args.replay_bias,
        poison_events=args.poison_events,
        workers=args.workers,
        seed=args.seed)
    print(render_stream_report(
        report, title=f"stream benchmark — {args.dataset}:{args.model} "
                      f"(profile={args.profile}, "
                      f"retrieval={args.retrieval})"))
    return 0 if report["requests_dropped"] == 0 else 1


def _cmd_bench_serve(args) -> int:
    from .serve import (ModelRegistry, compare_paths, render_comparison,
                        request_stream)
    from .serve.registry import ScenarioSpec
    if args.workers > 0:
        from .serve.bench import bench_pool_scaling, render_pool_report
        counts = sorted({c for c in (1, 2, 4, 8, 16, 32)
                         if c <= args.workers} | {args.workers})
        sweep = bench_pool_scaling(
            args.dataset, args.model, profile=args.profile,
            worker_counts=tuple(counts), requests=args.requests,
            client_threads=args.clients, k=args.k, dtype=args.dtype,
            max_batch=args.batch, checkpoint=args.checkpoint or None,
            seed=args.seed)
        print(render_pool_report(
            sweep,
            title=f"worker-pool scaling sweep — {args.dataset}:{args.model} "
                  f"({args.dtype}, k={args.k})"))
        return 0
    registry = ModelRegistry(profile=args.profile, dtype=args.dtype,
                             retrieval=args.retrieval,
                             ann_params=_ann_params(args),
                             min_ann_items=args.ann_min_items)
    scenario = registry.add(ScenarioSpec(dataset=args.dataset,
                                         model=args.model,
                                         checkpoint=args.checkpoint or None),
                            seed=args.seed)
    histories = request_stream(scenario.dataset, args.requests,
                               seed=args.seed)
    comparison = compare_paths(scenario.recommender, histories, k=args.k,
                               batch_size=args.batch)
    print(render_comparison(
        comparison,
        title=f"serve benchmark — {args.dataset}:{args.model} "
              f"({scenario.dataset.num_items} items, {args.dtype}, "
              f"k={args.k}, retrieval={args.retrieval})"))
    return 0


def _cmd_prof(args) -> int:
    """Run a few profiled train steps and print the per-kernel table."""
    from .data import build_dataset
    from .data.batching import batch_iterator
    from .obs import prof
    from .train import TrainConfig, Trainer
    import numpy as np
    dataset = build_dataset(args.dataset, profile=args.profile)
    model = _make_model(args.model, dataset, args.seed)
    trainer = Trainer(model, dataset,
                      TrainConfig(batch_size=args.batch_size,
                                  seed=args.seed),
                      pretraining=args.model.startswith("pmmrec"))
    rng = np.random.default_rng(args.seed)
    prof.enable()
    prof.reset_baseline()
    done = 0
    while done < args.steps:
        for batch in batch_iterator(dataset.split.train, args.batch_size,
                                    rng, max_len=trainer.config.max_seq_len):
            trainer.train_step(batch.item_ids, batch.mask)
            done += 1
            if done >= args.steps:
                break
    print(prof.render_table(
        title=f"kernel profile — {args.dataset}:{args.model} "
              f"({done} steps, batch {args.batch_size})"))
    return 0


def _render_stats(base: str, prefix: str) -> str:
    """One ``repro stats`` frame: /metrics table + /stats latency lines."""
    import json as _json
    import urllib.request
    from .obs.metrics import parse_prometheus
    with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
        exposition = response.read().decode()
    samples = parse_prometheus(exposition)
    shown = sorted((name, labels, value)
                   for (name, labels), value in samples.items()
                   if name.startswith(prefix)
                   and not name.endswith("_bucket"))
    width = max((len(f"{n}{l}") for n, l, _ in shown), default=20)
    lines = [f"{name + labels:<{width}}  {value:g}"
             for name, labels, value in shown]
    try:
        with urllib.request.urlopen(base + "/stats", timeout=10) as response:
            stats = _json.load(response)
    except Exception:
        return "\n".join(lines)
    for scenario, counters in stats.get("scenarios", {}).items():
        latency = counters.get("latency_ms")
        if latency:
            lines.append(f"{scenario}: p50 {latency['p50']:.2f} ms  "
                         f"p99 {latency['p99']:.2f} ms  "
                         f"({latency['count']} requests)")
    return "\n".join(lines)


def _cmd_stats(args) -> int:
    """Tabulate a running server's /metrics (+ /stats summary)."""
    base = args.url.rstrip("/")
    if args.watch is None:
        print(_render_stats(base, args.prefix))
        return 0
    # --watch N reuses the `repro top` refresh loop (clear + redraw).
    from .obs.top import watch_loop
    return watch_loop(lambda: _render_stats(base, args.prefix),
                      interval_s=args.watch)


def _cmd_top(args) -> int:
    """Live terminal dashboard: health, alerts, QPS sparkline, topology."""
    from .obs.top import run_top
    return run_top(args.url.rstrip("/"), interval_s=args.interval,
                   once=args.once)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"datasets": _cmd_datasets, "train": _cmd_train,
                "transfer": _cmd_transfer, "experiment": _cmd_experiment,
                "serve": _cmd_serve, "bench-serve": _cmd_bench_serve,
                "stream": _cmd_stream, "bench-stream": _cmd_bench_stream,
                "prof": _cmd_prof, "stats": _cmd_stats, "top": _cmd_top}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
