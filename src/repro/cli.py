"""Command-line interface for the PMMRec reproduction.

Four subcommands mirror the library's main workflows::

    repro datasets [--profile paper]            # Table II style statistics
    repro train --dataset kwai_food             # train one model
    repro transfer --sources bili,kwai --target hm_shoes --setting full
    repro experiment table4 [--profile paper]   # regenerate a paper table

Every subcommand is importable (``main(argv)``) for tests.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMMRec (ICDE'24) reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="print dataset statistics")
    datasets.add_argument("--profile", default=None,
                          help="scale profile (smoke/paper/full)")

    train = sub.add_parser("train", help="train a model on one dataset")
    train.add_argument("--dataset", required=True)
    train.add_argument("--model", default="pmmrec",
                       help="pmmrec, pmmrec-text, pmmrec-vision or a "
                            "baseline name (sasrec, morec++, ...)")
    train.add_argument("--profile", default=None)
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--batch-size", type=int, default=24)
    train.add_argument("--lr", type=float, default=2e-3)
    train.add_argument("--dtype", default=None, choices=["float32", "float64"],
                       help="run the whole train/eval cycle at this "
                            "precision (default float64)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", default=None,
                       help="write a checkpoint to this path (npz)")

    transfer = sub.add_parser("transfer",
                              help="pre-train on sources, fine-tune on a target")
    transfer.add_argument("--sources", required=True,
                          help="comma-separated source datasets")
    transfer.add_argument("--target", required=True)
    transfer.add_argument("--setting", default="full",
                          help="full / item_encoders / user_encoder / "
                               "text_only / vision_only")
    transfer.add_argument("--profile", default=None)
    transfer.add_argument("--pretrain-epochs", type=int, default=10)
    transfer.add_argument("--finetune-epochs", type=int, default=12)
    transfer.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("name",
                            help="table1..table8 or figure3 (or 'all')")
    experiment.add_argument("--profile", default=None)
    experiment.add_argument("--workers", type=int, default=None)
    return parser


def _cmd_datasets(args) -> int:
    from .experiments import table2_datasets
    results = table2_datasets.run(profile=args.profile)
    print(table2_datasets.render(results))
    return 0


def _make_model(name: str, dataset, seed: int):
    if name.startswith("pmmrec"):
        from .core import PMMRec, PMMRecConfig
        modality = {"pmmrec": "multi", "pmmrec-text": "text",
                    "pmmrec-vision": "vision"}[name]
        return PMMRec(PMMRecConfig(modality=modality, seed=seed))
    from .baselines import make_baseline
    return make_baseline(name, dataset, seed=seed)


def _cmd_train(args) -> int:
    from .data import build_dataset
    from .eval import evaluate_model
    from .train import TrainConfig, Trainer
    dataset = build_dataset(args.dataset, profile=args.profile)
    model = _make_model(args.model, dataset, args.seed)
    config = TrainConfig(epochs=args.epochs, batch_size=args.batch_size,
                         lr=args.lr, dtype=args.dtype, seed=args.seed,
                         verbose=True)
    multitask = args.model.startswith("pmmrec")
    result = Trainer(model, dataset, config, pretraining=multitask).fit()
    metrics = evaluate_model(model, dataset, dataset.split.test,
                             ks=(10, 20, 50))
    print(f"best val {config.metric}: {result.best_metric:.4f} "
          f"(epoch {result.best_epoch}/{result.epochs_run})")
    print("test:", {k: round(v, 4) for k, v in metrics.items()})
    if args.save:
        from .nn.serialization import save_checkpoint
        save_checkpoint(model, args.save)
        print(f"checkpoint written to {args.save}")
    return 0


def _cmd_transfer(args) -> int:
    from .core import PMMRec, PMMRecConfig, transferred_model
    from .data import build_dataset, fuse_datasets
    from .eval import evaluate_model
    from .train import TrainConfig, Trainer
    names = [s.strip() for s in args.sources.split(",") if s.strip()]
    sources = [build_dataset(n, profile=args.profile) for n in names]
    corpus = fuse_datasets(sources) if len(sources) > 1 else sources[0]
    print(f"pre-training on {', '.join(names)} "
          f"({corpus.num_users} users / {corpus.num_items} items)")
    model = PMMRec(PMMRecConfig(seed=args.seed))
    Trainer(model, corpus,
            TrainConfig(epochs=args.pretrain_epochs, batch_size=32,
                        seed=args.seed, verbose=True),
            pretraining=True).fit()

    target = build_dataset(args.target, profile=args.profile)
    deployed = transferred_model(model, args.setting)
    result = Trainer(deployed, target,
                     TrainConfig(epochs=args.finetune_epochs, batch_size=24,
                                 seed=args.seed, verbose=True),
                     pretraining=False).fit()
    metrics = evaluate_model(deployed, target, target.split.test, ks=(10,))
    print(f"[{args.setting}] best val: {result.best_metric:.4f}; "
          f"test: {({k: round(v, 4) for k, v in metrics.items()})}")
    return 0


def _cmd_experiment(args) -> int:
    from .experiments import ALL_TABLES
    names = list(ALL_TABLES) if args.name == "all" else [args.name]
    for name in names:
        if name not in ALL_TABLES:
            print(f"unknown experiment {name!r}; "
                  f"choose from {sorted(ALL_TABLES)} or 'all'",
                  file=sys.stderr)
            return 2
    for name in names:
        module = ALL_TABLES[name]
        try:
            results = module.run(profile=args.profile, workers=args.workers)
        except TypeError:
            results = module.run(profile=args.profile)
        print(module.render(results))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"datasets": _cmd_datasets, "train": _cmd_train,
                "transfer": _cmd_transfer, "experiment": _cmd_experiment}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
