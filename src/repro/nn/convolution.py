"""Dilated causal 1-D convolutions used by the NextItNet baseline.

NextItNet (Yuan et al., WSDM'19) stacks residual blocks of dilated causal
convolutions so the receptive field grows exponentially with depth while
never peeking at future items.
"""

from __future__ import annotations

import numpy as np

from . import init
from .modules import LayerNorm, Module
from .tensor import Parameter, Tensor, concat

__all__ = ["CausalConv1d", "NextItNetResidualBlock"]


class CausalConv1d(Module):
    """Causal 1-D convolution over ``(batch, length, channels)`` input.

    Output position ``t`` sees inputs ``t, t-d, t-2d, ...`` only (``d`` the
    dilation), implemented with explicit left zero-padding so the layer is
    shape-preserving along the time axis.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int = 3, dilation: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = init.default_rng(rng)
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.in_channels = in_channels
        self.out_channels = out_channels
        # One weight matrix per tap; applied as shifted matmuls.
        self.weight = Parameter(
            init.xavier_uniform((kernel_size, in_channels, out_channels), rng))
        self.bias = Parameter(np.zeros(out_channels))

    def forward(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        pad_len = (self.kernel_size - 1) * self.dilation
        pad = Tensor._wrap(np.zeros((batch, pad_len, self.in_channels),
                                    dtype=x.data.dtype))
        padded = concat([pad, x], axis=1)
        out = None
        for tap in range(self.kernel_size):
            start = tap * self.dilation
            window = padded[:, start:start + length, :]
            term = window @ self.weight[tap]
            out = term if out is None else out + term
        return out + self.bias


class NextItNetResidualBlock(Module):
    """NextItNet residual block: two dilated causal convs with layer norm."""

    def __init__(self, channels: int, kernel_size: int = 3, dilation: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.conv1 = CausalConv1d(channels, channels, kernel_size,
                                  dilation=dilation, rng=rng)
        self.conv2 = CausalConv1d(channels, channels, kernel_size,
                                  dilation=2 * dilation, rng=rng)
        self.norm1 = LayerNorm(channels)
        self.norm2 = LayerNorm(channels)

    def forward(self, x: Tensor) -> Tensor:
        h = self.conv1(self.norm1(x)).relu()
        h = self.conv2(self.norm2(h)).relu()
        return x + h
