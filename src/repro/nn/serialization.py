"""Checkpoint (de)serialization for modules.

Checkpoints are plain ``.npz`` archives of the flat ``state_dict`` mapping,
so transferring a pre-trained component (e.g. only the item encoders, per
Sec. III-E of the paper) is just loading a filtered sub-dictionary.
Dtypes round-trip: a float32 module saves float32 arrays and
``load_checkpoint`` hands them back exactly as stored (the loading
module's ``load_state_dict`` casts to its own parameter dtype).
"""

from __future__ import annotations

import os

import numpy as np

from .modules import Module

__all__ = ["save_checkpoint", "load_checkpoint", "filter_state", "strip_prefix"]


def save_checkpoint(module: Module, path: str) -> None:
    """Write ``module.state_dict()`` to ``path`` as an npz archive."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_checkpoint(path: str) -> dict[str, np.ndarray]:
    """Read a state dict saved by :func:`save_checkpoint`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def filter_state(state: dict[str, np.ndarray],
                 prefixes: tuple[str, ...]) -> dict[str, np.ndarray]:
    """Keep only entries whose dotted name starts with one of ``prefixes``."""
    return {name: value for name, value in state.items()
            if name.startswith(prefixes)}


def strip_prefix(state: dict[str, np.ndarray], prefix: str) -> dict[str, np.ndarray]:
    """Remove ``prefix`` from every key (for loading into a sub-module)."""
    out = {}
    for name, value in state.items():
        if name.startswith(prefix):
            out[name[len(prefix):]] = value
    return out
