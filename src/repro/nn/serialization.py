"""Checkpoint (de)serialization for modules.

Checkpoints are plain ``.npz`` archives of the flat ``state_dict`` mapping,
so transferring a pre-trained component (e.g. only the item encoders, per
Sec. III-E of the paper) is just loading a filtered sub-dictionary.
Dtypes round-trip: a float32 module saves float32 arrays and
``load_checkpoint`` hands them back exactly as stored (the loading
module's ``load_state_dict`` casts to its own parameter dtype).

Every checkpoint also carries a metadata record (under a reserved key
that can never collide with a dotted parameter name): the archive format
version, the saving module's class/dtype/parameter count, and any extra
caller-supplied fields. The streaming subsystem uses the extra fields to
version its hot-swap checkpoints (``repro.stream``); loaders use the
counts for fail-fast validation before any parameter is touched.
"""

from __future__ import annotations

import json
import os

import numpy as np

from .modules import Module

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_meta",
           "filter_state", "strip_prefix", "CHECKPOINT_FORMAT", "META_KEY"]

#: Bumped when the archive layout changes incompatibly.
CHECKPOINT_FORMAT = 1

#: Reserved archive entry holding the JSON metadata record. Parameter
#: names are dotted attribute paths, so they can never equal this.
META_KEY = "__repro_checkpoint__"


def save_checkpoint(module: Module, path: str,
                    meta: dict | None = None) -> None:
    """Write ``module.state_dict()`` to ``path`` as an npz archive.

    ``meta`` entries (JSON-serializable) are stored alongside the
    built-in record — e.g. the streaming worker records the swap version
    and fine-tune step count of each published checkpoint.
    """
    state = module.state_dict()
    record = {"format": CHECKPOINT_FORMAT,
              "module": type(module).__name__,
              "dtype": str(module.param_dtype),
              "params": len(state)}
    if meta:
        overlap = set(meta) & set(record)
        if overlap:
            raise ValueError(f"meta keys {sorted(overlap)} collide with "
                             "built-in checkpoint metadata")
        record.update(meta)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state,
             **{META_KEY: np.array(json.dumps(record))})


def load_checkpoint(path: str,
                    with_meta: bool = False) -> dict[str, np.ndarray] | tuple:
    """Read a state dict saved by :func:`save_checkpoint`.

    Returns the state mapping, or ``(state, meta)`` with
    ``with_meta=True``. Checkpoints written before metadata existed load
    fine (``meta`` is then an empty dict); a checkpoint written by a
    *newer* archive format than this code understands is refused rather
    than half-loaded.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    meta: dict = {}
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files
                 if name != META_KEY}
        if META_KEY in archive.files:
            meta = json.loads(str(archive[META_KEY]))
    fmt = meta.get("format", CHECKPOINT_FORMAT)
    if fmt > CHECKPOINT_FORMAT:
        raise ValueError(
            f"checkpoint {path!r} uses archive format {fmt}, newer than "
            f"the supported format {CHECKPOINT_FORMAT}")
    declared = meta.get("params")
    if declared is not None and declared != len(state):
        raise ValueError(
            f"checkpoint {path!r} is corrupt: metadata declares {declared} "
            f"parameters but the archive holds {len(state)}")
    return (state, meta) if with_meta else state


def checkpoint_meta(path: str) -> dict:
    """The metadata record of a checkpoint (empty for pre-metadata files).

    Reads only the metadata entry — npz members decompress lazily, so
    inspecting a directory of versioned hot-swap checkpoints never pays
    for the parameter arrays.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        if META_KEY not in archive.files:
            return {}
        return json.loads(str(archive[META_KEY]))


def filter_state(state: dict[str, np.ndarray],
                 prefixes: tuple[str, ...]) -> dict[str, np.ndarray]:
    """Keep only entries whose dotted name starts with one of ``prefixes``."""
    return {name: value for name, value in state.items()
            if name.startswith(prefixes)}


def strip_prefix(state: dict[str, np.ndarray], prefix: str) -> dict[str, np.ndarray]:
    """Remove ``prefix`` from every key (for loading into a sub-module)."""
    out = {}
    for name, value in state.items():
        if name.startswith(prefix):
            out[name[len(prefix):]] = value
    return out
